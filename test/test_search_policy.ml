(* Tests for the search-based scheduling policy wrapper and the
   local-search extension. *)

open Core

let r_star (j : Workload.Job.t) = j.runtime

let context ?(now = 0.0) ?(capacity = 16) ~waiting () =
  let machine = Cluster.Machine.v ~nodes:capacity in
  let running = Cluster.Running_set.create ~machine in
  { Sched.Policy.now; waiting; running; r_star }

let test_names () =
  Alcotest.(check string) "headline policy name" "DDS/lxf/dynB(L=1K)"
    (Search_policy.name (Search_policy.dds_lxf_dynb ~budget:1000));
  let lds =
    Search_policy.v ~algorithm:Search.Lds ~heuristic:Branching.Fcfs
      ~bound:(Bound.fixed_hours 50.0) ~budget:2000 ()
  in
  Alcotest.(check string) "lds fixed-bound name" "LDS/fcfs/w=50h(L=2K)"
    (Search_policy.name lds);
  let pruned = { (Search_policy.dds_lxf_dynb ~budget:500) with
                 Search_policy.prune = true }
  in
  Alcotest.(check string) "bnb suffix" "DDS/lxf/dynB(L=500)+bnb"
    (Search_policy.name pruned);
  let wait_goal =
    { (Search_policy.dds_lxf_dynb ~budget:1000) with
      Search_policy.goal = Objective.Avg_wait }
  in
  Alcotest.(check string) "goal suffix" "DDS/lxf/dynB(L=1K)@goal=avgW"
    (Search_policy.name wait_goal)

let test_invalid_budget () =
  Alcotest.check_raises "budget >= 1"
    (Invalid_argument "Search_policy.v: budget must be >= 1") (fun () ->
      ignore
        (Search_policy.v ~algorithm:Search.Dds ~heuristic:Branching.Lxf
           ~bound:Bound.dynamic ~budget:0 ()))

let test_empty_queue () =
  let policy, stats = Search_policy.policy (Search_policy.dds_lxf_dynb ~budget:100) in
  let started = policy.Sched.Policy.decide (context ~waiting:[] ()) in
  Alcotest.(check int) "nothing to start" 0 (List.length started);
  Alcotest.(check int) "no decision recorded" 0 (stats ()).Search_policy.decisions

let test_starts_fitting_jobs () =
  let waiting =
    [ Helpers.job ~id:0 ~nodes:8 (); Helpers.job ~id:1 ~submit:1.0 ~nodes:8 () ]
  in
  let policy, stats =
    Search_policy.policy (Search_policy.dds_lxf_dynb ~budget:100)
  in
  let started = policy.Sched.Policy.decide (context ~waiting ()) in
  Alcotest.(check int) "both fit and start" 2 (List.length started);
  let s = stats () in
  Alcotest.(check int) "one decision" 1 s.Search_policy.decisions;
  Alcotest.(check bool) "nodes counted" true (s.Search_policy.total_nodes >= 2);
  Alcotest.(check int) "queue length recorded" 2 s.Search_policy.max_queue

let test_decide_detailed () =
  let waiting = [ Helpers.job ~id:0 ~nodes:4 () ] in
  match
    Search_policy.decide_detailed
      (Search_policy.dds_lxf_dynb ~budget:100)
      (context ~waiting ())
  with
  | None -> Alcotest.fail "expected a result"
  | Some result ->
      Alcotest.(check bool) "single-job tree exhausted" true
        result.Search.exhausted;
      Alcotest.(check int) "one leaf" 1 result.Search.leaves_evaluated

let test_decide_detailed_empty () =
  Alcotest.(check bool) "no result on empty queue" true
    (Search_policy.decide_detailed
       (Search_policy.dds_lxf_dynb ~budget:100)
       (context ~waiting:[] ())
    = None)

(* Local search must never worsen the incumbent and must leave the
   state clean. *)
let prop_local_search_never_worse =
  QCheck.Test.make ~name:"local search never worsens the schedule" ~count:60
    QCheck.small_int
    (fun seed ->
      let rng = Simcore.Rng.create ~seed in
      let n = 3 + Simcore.Rng.int rng 5 in
      let jobs =
        List.init n (fun id ->
            Helpers.job ~id
              ~submit:(Simcore.Rng.float rng 500.0)
              ~nodes:(1 + Simcore.Rng.int rng 8)
              ~runtime:(60.0 +. Simcore.Rng.float rng 5000.0)
              ())
      in
      let profile = Cluster.Profile.create ~now:600.0 ~capacity:8 in
      let ordered =
        Branching.order Branching.Lxf ~now:600.0 ~r_star jobs
      in
      let durations = Array.map r_star ordered in
      let thresholds =
        Bound.thresholds (Bound.fixed_hours 0.1) ~now:600.0 ~r_star ordered
      in
      let state =
        Search_state.create ~now:600.0 ~profile ~jobs:ordered ~durations
          ~thresholds ()
      in
      let base = Search.run Search.Dds ~budget:(2 * n) state in
      let improved = Local_search.improve ~budget:1000 state base in
      Objective.compare improved.Search.best base.Search.best <= 0
      && Array.length improved.Search.best_order = n
      && not (List.exists (fun i -> Search_state.used state i)
                (List.init n Fun.id)))

let test_local_search_finds_swap () =
  (* heuristic order deliberately bad: big job first starves the rest;
     swapping improves the first-level objective *)
  let jobs =
    [ Helpers.job ~id:0 ~submit:0.0 ~nodes:8 ~runtime:10000.0 ();
      Helpers.job ~id:1 ~submit:1.0 ~nodes:1 ~runtime:60.0 () ]
  in
  let profile = Cluster.Profile.create ~now:10.0 ~capacity:8 in
  let ordered = Branching.order Branching.Fcfs ~now:10.0 ~r_star jobs in
  let durations = Array.map r_star ordered in
  let thresholds = Bound.thresholds (Bound.Fixed 0.0) ~now:10.0 ~r_star ordered in
  let state =
    Search_state.create ~now:10.0 ~profile ~jobs:ordered ~durations ~thresholds
      ()
  in
  (* budget 2 = only the heuristic path gets evaluated *)
  let base = Search.run Search.Dds ~budget:2 state in
  let improved = Local_search.improve ~budget:100 state base in
  Alcotest.(check bool) "swap improves excess" true
    (improved.Search.best.Objective.excess < base.Search.best.Objective.excess)

let suite =
  [
    Alcotest.test_case "policy names" `Quick test_names;
    Alcotest.test_case "invalid budget" `Quick test_invalid_budget;
    Alcotest.test_case "empty queue" `Quick test_empty_queue;
    Alcotest.test_case "starts fitting jobs" `Quick test_starts_fitting_jobs;
    Alcotest.test_case "decide_detailed" `Quick test_decide_detailed;
    Alcotest.test_case "decide_detailed empty" `Quick test_decide_detailed_empty;
    QCheck_alcotest.to_alcotest prop_local_search_never_worse;
    Alcotest.test_case "local search finds a swap" `Quick
      test_local_search_finds_swap;
  ]
