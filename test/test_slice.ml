(* Tests for trace slicing/merging, plus the all-months calibration
   regression sweep. *)

open Workload

let sample () =
  Trace.v
    [
      Helpers.job ~id:0 ~submit:10.0 ~nodes:1 ();
      Helpers.job ~id:1 ~submit:20.0 ~nodes:2 ();
      Helpers.job ~id:2 ~submit:30.0 ~nodes:16 ();
      Helpers.job ~id:3 ~submit:40.0 ~nodes:64 ();
    ]
    ~measure_start:0.0 ~measure_end:100.0

let ids t = Array.to_list (Trace.jobs t) |> List.map (fun (j : Job.t) -> j.id)

let test_by_time () =
  let s = Slice.by_time (sample ()) ~from_:15.0 ~upto:35.0 in
  Alcotest.(check int) "two jobs" 2 (Trace.length s);
  Alcotest.(check (list int)) "renumbered" [ 0; 1 ] (ids s);
  Alcotest.(check (float 1e-9)) "times shifted" 5.0
    (Trace.jobs s).(0).Job.submit;
  Alcotest.(check (float 1e-9)) "window = slice" 20.0 (Trace.measure_end s)

let test_filter_and_class () =
  let narrow = Slice.by_size_class (sample ()) ~node_class:0 in
  Alcotest.(check int) "one one-node job" 1 (Trace.length narrow);
  let wide = Slice.by_size_class (sample ()) ~node_class:4 in
  Alcotest.(check int) "one wide job" 1 (Trace.length wide);
  Alcotest.(check int) "wide job is 64 nodes" 64
    (Trace.jobs wide).(0).Job.nodes;
  Alcotest.check_raises "invalid class"
    (Invalid_argument "Slice.by_size_class: class must be in 0..4") (fun () ->
      ignore (Slice.by_size_class (sample ()) ~node_class:7))

let test_merge () =
  let a = sample () in
  let b =
    Trace.v [ Helpers.job ~id:0 ~submit:25.0 ~nodes:4 () ] ~measure_start:0.0
      ~measure_end:50.0
  in
  let m = Slice.merge a b in
  Alcotest.(check int) "five jobs" 5 (Trace.length m);
  Alcotest.(check (list int)) "dense ids in submit order" [ 0; 1; 2; 3; 4 ]
    (ids m);
  Alcotest.(check int) "interleaved by submit" 4 (Trace.jobs m).(2).Job.nodes;
  Alcotest.(check (float 1e-9)) "window union" 100.0 (Trace.measure_end m)

let test_head () =
  let h = Slice.head (sample ()) ~n:2 in
  Alcotest.(check int) "two" 2 (Trace.length h);
  Alcotest.(check int) "first kept" 1 (Trace.jobs h).(0).Job.nodes

let test_slices_simulate () =
  (* sliced traces must remain valid engine inputs *)
  let base = Helpers.mini_trace ~seed:77 ~n:40 () in
  let slice = Slice.by_time base ~from_:100.0 ~upto:5000.0 in
  let run =
    Sim.Run.simulate
      ~machine:(Cluster.Machine.v ~nodes:16)
      ~r_star:Sim.Engine.Actual ~policy:Sched.Backfill.fcfs slice
  in
  Alcotest.(check int) "all sliced jobs ran" (Trace.length slice)
    (List.length run.Sim.Run.measured)

(* --- calibration regression across every month --- *)

let test_all_months_calibrated () =
  Array.iter
    (fun profile ->
      let config = { Generator.default_config with scale = 0.3; seed = 99 } in
      let trace = Generator.month ~config profile in
      let mix = Mix_report.of_trace ~capacity:Month_profile.capacity trace in
      let label = profile.Month_profile.label in
      Alcotest.(check bool)
        (Printf.sprintf "%s load %.2f ~ %.2f" label mix.Mix_report.load
           profile.Month_profile.load)
        true
        (Float.abs (mix.Mix_report.load -. profile.Month_profile.load) < 0.03);
      let norm arr =
        let s = Array.fold_left ( +. ) 0.0 arr in
        Array.map (fun v -> 100.0 *. v /. s) arr
      in
      let jobs_diff =
        Mix_report.max_abs_diff mix.Mix_report.jobs8
          (norm profile.Month_profile.jobs8)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s job mix off by %.1f pts" label jobs_diff)
        true (jobs_diff < 6.0);
      let short_diff =
        Mix_report.max_abs_diff mix.Mix_report.short5
          profile.Month_profile.short5
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s short shares off by %.1f pts" label short_diff)
        true (short_diff < 6.0))
    Month_profile.all

let suite =
  [
    Alcotest.test_case "by_time" `Quick test_by_time;
    Alcotest.test_case "filter / size class" `Quick test_filter_and_class;
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "head" `Quick test_head;
    Alcotest.test_case "slices simulate" `Quick test_slices_simulate;
    Alcotest.test_case "all months calibrated" `Slow
      test_all_months_calibrated;
  ]
