(* Tests for the event-driven simulation engine and Run wrapper. *)

let machine16 = Cluster.Machine.v ~nodes:16

let simulate ?(machine = machine16) ?(r_star = Sim.Engine.Actual) ~policy trace =
  Sim.Engine.run ~machine ~r_star ~policy trace

let test_every_job_runs_once () =
  let trace = Helpers.mini_trace ~seed:1 () in
  let result = simulate ~policy:Sched.Backfill.fcfs trace in
  let ids =
    List.sort Int.compare
      (List.map
         (fun (o : Metrics.Outcome.t) -> o.job.Workload.Job.id)
         result.Sim.Engine.outcomes)
  in
  Alcotest.(check (list int)) "all jobs completed exactly once"
    (List.init (Workload.Trace.length trace) Fun.id)
    ids

let test_no_oversubscription () =
  (* replay outcomes and verify instantaneous node usage never exceeds
     the machine *)
  let trace = Helpers.mini_trace ~seed:2 ~n:60 () in
  List.iter
    (fun policy ->
      let result = simulate ~policy trace in
      let events =
        List.concat_map
          (fun (o : Metrics.Outcome.t) ->
            [ (o.start, o.job.Workload.Job.nodes);
              (o.finish, -o.job.Workload.Job.nodes) ])
          result.Sim.Engine.outcomes
        |> List.sort (fun (ta, da) (tb, db) ->
               let c = Float.compare ta tb in
               if c <> 0 then c else Int.compare da db)
      in
      let peak = ref 0 and current = ref 0 in
      List.iter
        (fun (_, delta) ->
          current := !current + delta;
          peak := max !peak !current)
        events;
      Alcotest.(check bool)
        (policy.Sched.Policy.name ^ " never oversubscribes")
        true (!peak <= 16))
    [ Sched.Backfill.fcfs; Sched.Backfill.lxf; Sched.Policy.run_now;
      fst (Core.Search_policy.policy (Core.Search_policy.dds_lxf_dynb ~budget:200)) ]

let test_jobs_start_after_submit () =
  let trace = Helpers.mini_trace ~seed:3 () in
  let result = simulate ~policy:Sched.Backfill.lxf trace in
  List.iter
    (fun (o : Metrics.Outcome.t) ->
      Alcotest.(check bool) "start >= submit" true
        (o.start >= o.job.Workload.Job.submit);
      Alcotest.(check (float 1e-6)) "runs for min(T,R)"
        (Float.min o.job.Workload.Job.runtime o.job.Workload.Job.requested)
        (o.finish -. o.start))
    result.Sim.Engine.outcomes

let test_requested_runtime_kills () =
  (* a job whose requested limit is below its runtime is cut short *)
  let job = Workload.Job.v ~id:0 ~submit:0.0 ~nodes:1 ~runtime:100.0
      ~requested:100.0
  in
  (* simulate via SWF-style trace where requested < runtime is possible:
     construct directly through Engine with min() semantics *)
  let trace = Workload.Trace.v [ job ] in
  let result = simulate ~policy:Sched.Backfill.fcfs trace in
  match result.Sim.Engine.outcomes with
  | [ o ] -> Alcotest.(check (float 1e-9)) "runs full time" 100.0
               (o.Metrics.Outcome.finish -. o.Metrics.Outcome.start)
  | _ -> Alcotest.fail "expected one outcome"

let test_fcfs_backfill_vs_run_now_head_wait () =
  (* under FCFS-backfill the queue head's start is never later than the
     no-reservation greedy policy would allow... the head gets the
     earliest possible start; sanity: simulation completes and waits
     are finite *)
  let trace = Helpers.mini_trace ~seed:4 ~n:80 () in
  let result = simulate ~policy:Sched.Backfill.fcfs trace in
  Alcotest.(check int) "all outcomes" 80 (List.length result.Sim.Engine.outcomes)

let test_decisions_counted () =
  let trace = Helpers.mini_trace ~seed:5 ~n:10 () in
  let result = simulate ~policy:Sched.Backfill.fcfs trace in
  (* at least one decision per arrival and per finish *)
  Alcotest.(check bool) "decision count plausible" true
    (result.Sim.Engine.decisions >= 10
    && result.Sim.Engine.decisions <= 2 * 10)

let test_too_wide_job_rejected () =
  let job = Helpers.job ~nodes:128 () in
  let trace = Workload.Trace.v [ job ] in
  Alcotest.check_raises "job wider than machine"
    (Invalid_argument "Engine.run: job 0 wider than machine") (fun () ->
      ignore (simulate ~policy:Sched.Backfill.fcfs trace))

let test_windowed_queue_average () =
  let samples =
    [ { Sim.Engine.time = 0.0; length = 2 };
      { Sim.Engine.time = 10.0; length = 4 };
      { Sim.Engine.time = 20.0; length = 0 } ]
  in
  Alcotest.(check (float 1e-9)) "full window" 3.0
    (Sim.Engine.windowed_queue_average samples ~from_:0.0 ~upto:20.0);
  Alcotest.(check (float 1e-9)) "sub window" 4.0
    (Sim.Engine.windowed_queue_average samples ~from_:10.0 ~upto:20.0);
  Alcotest.(check (float 1e-9)) "tail extends last value" 0.0
    (Sim.Engine.windowed_queue_average samples ~from_:20.0 ~upto:30.0);
  Alcotest.(check (float 1e-9)) "straddling window" 2.0
    (Sim.Engine.windowed_queue_average samples ~from_:15.0 ~upto:25.0);
  Alcotest.(check (float 1e-9)) "empty" 0.0
    (Sim.Engine.windowed_queue_average [] ~from_:0.0 ~upto:10.0)

let test_run_wrapper_windows () =
  let trace = Helpers.mini_trace ~seed:6 ~n:40 ~horizon:7200.0 () in
  let jobs = Workload.Trace.jobs trace in
  let windowed =
    Workload.Trace.v (Array.to_list jobs) ~measure_start:1000.0
      ~measure_end:5000.0
  in
  let run =
    Sim.Run.simulate ~machine:machine16 ~r_star:Sim.Engine.Actual
      ~policy:Sched.Backfill.fcfs windowed
  in
  let expected =
    Array.to_list jobs
    |> List.filter (fun (j : Workload.Job.t) ->
           j.submit >= 1000.0 && j.submit < 5000.0)
    |> List.length
  in
  Alcotest.(check int) "only in-window jobs measured" expected
    (List.length run.Sim.Run.measured);
  Alcotest.(check int) "aggregate over measured" expected
    run.Sim.Run.aggregate.Metrics.Aggregate.n_jobs

let test_utilization_bounds () =
  let trace = Helpers.mini_trace ~seed:9 ~n:50 () in
  let run =
    Sim.Run.simulate ~machine:machine16 ~r_star:Sim.Engine.Actual
      ~policy:Sched.Backfill.fcfs trace
  in
  Alcotest.(check bool) "utilization in [0,1]" true
    (run.Sim.Run.utilization >= 0.0 && run.Sim.Run.utilization <= 1.0);
  Alcotest.(check bool) "some work happened" true
    (run.Sim.Run.utilization > 0.0)

let test_utilization_exact () =
  (* one 8-node, 50s job on a 16-node machine over a 100s window:
     utilization = 8*50 / (16*100) = 0.25 *)
  let job = Helpers.job ~id:0 ~nodes:8 ~runtime:50.0 () in
  let trace =
    Workload.Trace.v [ job ] ~measure_start:0.0 ~measure_end:100.0
  in
  let run =
    Sim.Run.simulate ~machine:machine16 ~r_star:Sim.Engine.Actual
      ~policy:Sched.Backfill.fcfs trace
  in
  Alcotest.(check (float 1e-9)) "exact utilization" 0.25
    run.Sim.Run.utilization

let test_deterministic_simulation () =
  let trace = Helpers.mini_trace ~seed:7 () in
  let a = simulate ~policy:Sched.Backfill.lxf trace in
  let b = simulate ~policy:Sched.Backfill.lxf trace in
  List.iter2
    (fun (x : Metrics.Outcome.t) (y : Metrics.Outcome.t) ->
      Alcotest.(check (float 1e-12)) "same starts" x.start y.start)
    a.Sim.Engine.outcomes b.Sim.Engine.outcomes

let test_rstar_requested_changes_schedule () =
  (* with heavily overestimated requests, LXF-backfill decisions change *)
  let trace = Helpers.mini_trace ~seed:8 ~n:60 () in
  let actual = simulate ~r_star:Sim.Engine.Actual ~policy:Sched.Backfill.lxf trace in
  let requested =
    simulate ~r_star:Sim.Engine.Requested ~policy:Sched.Backfill.lxf trace
  in
  let starts r =
    List.map (fun (o : Metrics.Outcome.t) -> o.start) r.Sim.Engine.outcomes
  in
  Alcotest.(check bool) "schedules differ" true
    (starts actual <> starts requested)

let suite =
  [
    Alcotest.test_case "every job runs once" `Quick test_every_job_runs_once;
    Alcotest.test_case "no oversubscription" `Quick test_no_oversubscription;
    Alcotest.test_case "starts after submit; runs min(T,R)" `Quick
      test_jobs_start_after_submit;
    Alcotest.test_case "requested runtime respected" `Quick
      test_requested_runtime_kills;
    Alcotest.test_case "fcfs completes a backlog" `Quick
      test_fcfs_backfill_vs_run_now_head_wait;
    Alcotest.test_case "decisions counted" `Quick test_decisions_counted;
    Alcotest.test_case "too-wide job rejected" `Quick test_too_wide_job_rejected;
    Alcotest.test_case "windowed queue average" `Quick
      test_windowed_queue_average;
    Alcotest.test_case "run wrapper windows" `Quick test_run_wrapper_windows;
    Alcotest.test_case "utilization bounds" `Quick test_utilization_bounds;
    Alcotest.test_case "utilization exact" `Quick test_utilization_exact;
    Alcotest.test_case "deterministic simulation" `Quick
      test_deterministic_simulation;
    Alcotest.test_case "R*=R changes schedule" `Quick
      test_rstar_requested_changes_schedule;
  ]
