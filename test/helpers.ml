(* Shared helpers for the test suite. *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else scan (i + 1)
  in
  nn = 0 || scan 0

let job ?(id = 0) ?(submit = 0.0) ?(nodes = 1) ?(runtime = 3600.0) ?requested
    () =
  Workload.Job.v ~id ~submit ~nodes ~runtime
    ~requested:(Option.value requested ~default:runtime)

(* Deterministic mini-workload: [n] jobs with pseudo-random sizes and
   runtimes, arriving over [horizon] seconds. *)
let mini_trace ?(n = 40) ?(capacity = 16) ?(horizon = 7200.0) ~seed () =
  let rng = Simcore.Rng.create ~seed in
  let jobs =
    List.init n (fun id ->
        let nodes = 1 + Simcore.Rng.int rng capacity in
        let runtime = 60.0 +. Simcore.Rng.float rng 3600.0 in
        let submit = Simcore.Rng.float rng horizon in
        let requested = runtime *. (1.0 +. Simcore.Rng.float rng 3.0) in
        Workload.Job.v ~id ~submit ~nodes ~runtime ~requested)
  in
  Workload.Trace.v jobs
