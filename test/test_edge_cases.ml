(* Edge-case tests across modules: boundary conditions the main suites
   do not exercise. *)

open Cluster

(* --- Profile boundaries --- *)

let test_profile_release_exactly_now () =
  (* a release at exactly [now] is already free *)
  let p = Profile.of_running ~now:100.0 ~capacity:8 [ (100.0, 4) ] in
  Alcotest.(check int) "released" 8 (Profile.free_at p 100.0)

let test_profile_reserve_at_boundary_merges () =
  let p = Profile.create ~now:0.0 ~capacity:8 in
  Profile.reserve p ~at:0.0 ~nodes:4 ~duration:10.0;
  Profile.reserve p ~at:10.0 ~nodes:4 ~duration:10.0;
  (* same free count in both intervals: segments must merge *)
  Alcotest.(check bool) "invariant (merged)" true (Profile.invariant p);
  Alcotest.(check int) "two segments" 2 (Profile.segment_count p);
  Alcotest.(check int) "free during" 4 (Profile.free_at p 5.0);
  Alcotest.(check int) "free after" 8 (Profile.free_at p 20.0)

let test_profile_locate_before_start () =
  let p = Profile.create ~now:100.0 ~capacity:8 in
  Alcotest.check_raises "before start"
    (Invalid_argument "Profile.locate: time before profile start") (fun () ->
      ignore (Profile.free_at p 50.0))

let test_profile_full_machine_reservation () =
  let p = Profile.create ~now:0.0 ~capacity:8 in
  Profile.reserve p ~at:0.0 ~nodes:8 ~duration:100.0;
  Alcotest.(check int) "zero free" 0 (Profile.free_at p 50.0);
  Alcotest.(check (float 1e-9)) "next start after release" 100.0
    (Profile.earliest_start p ~nodes:1 ~duration:10.0)

let test_profile_adjacent_holes () =
  (* free: 8 in [0,10), 2 in [10,20), 8 in [20,30), 2 in [30,40), 8 after.
     A 4-node job of duration 10 fits first at t=20?  No: [20,30) only.
     duration 15 -> must wait until 40. *)
  let p = Profile.create ~now:0.0 ~capacity:8 in
  Profile.reserve p ~at:10.0 ~nodes:6 ~duration:10.0;
  Profile.reserve p ~at:30.0 ~nodes:6 ~duration:10.0;
  Alcotest.(check (float 1e-9)) "short fits in first window" 0.0
    (Profile.earliest_start p ~nodes:4 ~duration:10.0);
  Alcotest.(check (float 1e-9)) "long must pass both holes" 40.0
    (Profile.earliest_start p ~nodes:4 ~duration:15.0);
  Alcotest.(check (float 1e-9)) "narrow job threads through the holes" 0.0
    (Profile.earliest_start p ~nodes:2 ~duration:15.0)

(* --- Trace --- *)

let test_empty_trace () =
  let t = Workload.Trace.v [] in
  Alcotest.(check int) "length" 0 (Workload.Trace.length t);
  Alcotest.(check (float 1e-9)) "no demand" 0.0 (Workload.Trace.total_demand t);
  Alcotest.(check (float 1e-9)) "no load" 0.0
    (Workload.Trace.offered_load t ~capacity:8)

let test_empty_trace_simulation () =
  let t = Workload.Trace.v [] in
  let result =
    Sim.Engine.run ~machine:(Machine.v ~nodes:8) ~r_star:Sim.Engine.Actual
      ~policy:Sched.Backfill.fcfs t
  in
  Alcotest.(check int) "no outcomes" 0 (List.length result.Sim.Engine.outcomes);
  Alcotest.(check int) "no decisions" 0 result.Sim.Engine.decisions

let test_scale_load_invalid () =
  let t = Workload.Trace.v [] in
  Alcotest.check_raises "no load" (Invalid_argument "Trace.scale_load: trace has no load")
    (fun () -> ignore (Workload.Trace.scale_load t ~capacity:8 ~target:0.9))

(* --- single-job and same-instant scenarios --- *)

let test_single_job_whole_machine () =
  let job = Helpers.job ~id:0 ~nodes:8 ~runtime:100.0 () in
  let t = Workload.Trace.v [ job ] in
  List.iter
    (fun policy ->
      let result =
        Sim.Engine.run ~machine:(Machine.v ~nodes:8) ~r_star:Sim.Engine.Actual
          ~policy t
      in
      match result.Sim.Engine.outcomes with
      | [ o ] ->
          Alcotest.(check (float 1e-9))
            (policy.Sched.Policy.name ^ " starts immediately")
            0.0 (Metrics.Outcome.wait o)
      | _ -> Alcotest.fail "expected one outcome")
    [ Sched.Backfill.fcfs; Sched.Backfill.lxf; Sched.Policy.run_now;
      Sched.Lookahead.policy ();
      fst (Core.Search_policy.policy (Core.Search_policy.dds_lxf_dynb ~budget:10)) ]

let test_simultaneous_arrivals () =
  (* several jobs submitted at the same instant: one decision point *)
  let jobs = List.init 4 (fun id -> Helpers.job ~id ~nodes:2 ~submit:5.0 ()) in
  let t = Workload.Trace.v jobs in
  let result =
    Sim.Engine.run ~machine:(Machine.v ~nodes:8) ~r_star:Sim.Engine.Actual
      ~policy:Sched.Backfill.fcfs t
  in
  List.iter
    (fun (o : Metrics.Outcome.t) ->
      Alcotest.(check (float 1e-9)) "all start together" 5.0 o.start)
    result.Sim.Engine.outcomes;
  (* the four arrivals drain into a single decision; the four identical
     finishes batch into one more *)
  Alcotest.(check int) "decisions batched" 2 result.Sim.Engine.decisions

(* --- Estimate grid --- *)

let test_estimate_grid_is_ascending_and_capped () =
  let limit = Simcore.Units.hours 12.0 in
  let g = Workload.Estimate.grid ~limit in
  Array.iteri
    (fun i v ->
      Alcotest.(check bool) "within limit" true (v <= limit);
      if i > 0 then Alcotest.(check bool) "ascending" true (v > g.(i - 1)))
    g;
  Alcotest.(check (float 1e-9)) "last = limit" limit g.(Array.length g - 1)

(* --- Mix_report / Panels formatting --- *)

let test_mix_report_pp_smoke () =
  let t =
    Workload.Trace.v
      [ Helpers.job ~id:0 (); Helpers.job ~id:1 ~submit:1.0 ~nodes:64 () ]
  in
  let mix = Workload.Mix_report.of_trace ~capacity:128 t in
  let s3 =
    Format.asprintf "%a" (fun f -> Workload.Mix_report.pp_table3_row f ~label:"t") mix
  in
  let s4 =
    Format.asprintf "%a" (fun f -> Workload.Mix_report.pp_table4_row f ~label:"t") mix
  in
  Alcotest.(check bool) "table3 mentions #jobs" true (Helpers.contains s3 "#jobs");
  Alcotest.(check bool) "table4 mentions T<=1h" true (Helpers.contains s4 "T<=1h")

(* --- Objective tolerance at scale --- *)

let test_objective_large_scale_tiebreak () =
  (* two schedules with hours of identical excess: slowdown decides *)
  let base = { Core.Objective.excess = 3.6e6; secondary_sum = 0.0; jobs = 0 } in
  let a = { base with Core.Objective.secondary_sum = 100.0; jobs = 10 } in
  let b = { base with Core.Objective.secondary_sum = 101.0; jobs = 10 } in
  Alcotest.(check bool) "tie broken by slowdown" true
    (Core.Objective.is_better ~candidate:a ~incumbent:b)

let suite =
  [
    Alcotest.test_case "release at now" `Quick test_profile_release_exactly_now;
    Alcotest.test_case "boundary reserves merge" `Quick
      test_profile_reserve_at_boundary_merges;
    Alcotest.test_case "locate before start" `Quick
      test_profile_locate_before_start;
    Alcotest.test_case "full-machine reservation" `Quick
      test_profile_full_machine_reservation;
    Alcotest.test_case "window gaps" `Quick test_profile_adjacent_holes;
    Alcotest.test_case "empty trace" `Quick test_empty_trace;
    Alcotest.test_case "empty trace simulation" `Quick
      test_empty_trace_simulation;
    Alcotest.test_case "scale_load invalid" `Quick test_scale_load_invalid;
    Alcotest.test_case "single job whole machine" `Quick
      test_single_job_whole_machine;
    Alcotest.test_case "simultaneous arrivals" `Quick test_simultaneous_arrivals;
    Alcotest.test_case "estimate grid" `Quick
      test_estimate_grid_is_ascending_and_capped;
    Alcotest.test_case "mix report pp" `Quick test_mix_report_pp_smoke;
    Alcotest.test_case "objective tie-break at scale" `Quick
      test_objective_large_scale_tiebreak;
  ]
