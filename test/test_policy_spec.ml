(* Tests for the textual policy-spec parser and experiment plumbing. *)

let parse spec = Experiments.Policy_spec.parse ~budget:500 spec

let name_of spec =
  match parse spec with
  | Ok p -> p.Sched.Policy.name
  | Error e -> Alcotest.failf "expected %s to parse, got: %s" spec e

let test_backfill_specs () =
  Alcotest.(check string) "fcfs-bf" "FCFS-backfill" (name_of "fcfs-bf");
  Alcotest.(check string) "lxf-bf" "LXF-backfill" (name_of "lxf-bf");
  Alcotest.(check string) "sjf-bf" "SJF-backfill" (name_of "sjf-bf");
  Alcotest.(check bool) "case insensitive" true
    (name_of "FCFS-BF" = "FCFS-backfill")

let test_variant_specs () =
  Alcotest.(check string) "lookahead" "lookahead-backfill" (name_of "lookahead");
  Alcotest.(check bool) "relaxed" true
    (Helpers.contains (name_of "relaxed") "relaxed-backfill");
  Alcotest.(check bool) "selective" true
    (Helpers.contains (name_of "selective") "selective-backfill");
  Alcotest.(check bool) "conservative" true
    (Helpers.contains (name_of "conservative") "conservative");
  Alcotest.(check string) "run-now" "run-now" (name_of "run-now")

let test_search_specs () =
  Alcotest.(check string) "headline" "DDS/lxf/dynB(L=500)"
    (name_of "dds/lxf/dynb");
  Alcotest.(check string) "lds fixed" "LDS/fcfs/w=50h(L=500)"
    (name_of "lds/fcfs/w=50");
  Alcotest.(check string) "runtime bound" "DDS/lxf/rtB(1h+2T)(L=500)"
    (name_of "dds/lxf/rt=1:2");
  Alcotest.(check string) "options" "DDS/lxf/dynB(L=500)+bnb+ls"
    (name_of "dds/lxf/dynb+bnb+ls");
  Alcotest.(check string) "fairshare option" "DDS/lxf/dynB(L=500)+fair(2)"
    (name_of "dds/lxf/dynb+fair")

let test_bad_specs () =
  List.iter
    (fun spec ->
      match parse spec with
      | Ok _ -> Alcotest.failf "expected %S to be rejected" spec
      | Error _ -> ())
    [ "nonsense"; "dds/lxf"; "dds/nope/dynb"; "nope/lxf/dynb";
      "dds/lxf/w=abc"; "dds/lxf/rt=1"; "dds/lxf/w=-5" ]

let test_known_all_parse () =
  List.iter
    (fun spec ->
      match parse spec with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "known spec %S failed: %s" spec e)
    Experiments.Policy_spec.known

let test_chart_rendering () =
  let buffer = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buffer in
  Experiments.Chart.grouped_bars fmt ~title:"demo" ~groups:[ "a"; "b" ]
    ~series:[ ("p1", [ 1.0; 2.0 ]); ("p2", [ 0.0; 4.0 ]) ];
  Format.pp_print_flush fmt ();
  let out = Buffer.contents buffer in
  Alcotest.(check bool) "title shown" true (Helpers.contains out "demo");
  Alcotest.(check bool) "group label shown" true (Helpers.contains out "a");
  Alcotest.(check bool) "bars drawn" true (Helpers.contains out "####");
  Alcotest.check_raises "length mismatch"
    (Invalid_argument
       "Chart.grouped_bars: series \"p1\" has 1 values for 2 groups")
    (fun () ->
      Experiments.Chart.grouped_bars fmt ~title:"x" ~groups:[ "a"; "b" ]
        ~series:[ ("p1", [ 1.0 ]) ])

let test_chart_enabled_env () =
  let with_env value f =
    let old = Sys.getenv_opt "REPRO_BARS" in
    Unix.putenv "REPRO_BARS" value;
    Fun.protect
      ~finally:(fun () -> Unix.putenv "REPRO_BARS" (Option.value old ~default:""))
      f
  in
  with_env "1" (fun () ->
      Alcotest.(check bool) "1 enables" true (Experiments.Chart.enabled ()));
  with_env "yes" (fun () ->
      Alcotest.(check bool) "yes enables" true (Experiments.Chart.enabled ()));
  with_env "0" (fun () ->
      Alcotest.(check bool) "0 disables" false (Experiments.Chart.enabled ()));
  with_env "" (fun () ->
      Alcotest.(check bool) "empty disables" false (Experiments.Chart.enabled ()))

let test_chart_all_zero () =
  let buffer = Buffer.create 64 in
  let fmt = Format.formatter_of_buffer buffer in
  Experiments.Chart.grouped_bars fmt ~title:"zeros" ~groups:[ "a" ]
    ~series:[ ("p", [ 0.0 ]) ];
  Format.pp_print_flush fmt ();
  Alcotest.(check bool) "degenerate message" true
    (Helpers.contains (Buffer.contents buffer) "all values zero")

let test_common_load_labels () =
  Alcotest.(check string) "original" "original"
    (Experiments.Common.load_label Experiments.Common.Original);
  Alcotest.(check string) "rho" "rho=0.90"
    (Experiments.Common.load_label (Experiments.Common.Rho 0.9))

let test_common_months_default () =
  (* no REPRO_MONTHS in the test environment: all ten months *)
  match Sys.getenv_opt "REPRO_MONTHS" with
  | Some _ -> ()
  | None ->
      Alcotest.(check int) "ten months" 10
        (List.length (Experiments.Common.months ()))

let test_common_memoization () =
  let m = Workload.Month_profile.find "8/03" in
  (* same physical trace returned on repeated calls *)
  let a = Experiments.Common.trace m Experiments.Common.Original in
  let b = Experiments.Common.trace m Experiments.Common.Original in
  Alcotest.(check bool) "trace memoized" true (a == b);
  let calls = ref 0 in
  let policy () =
    incr calls;
    Sched.Policy.run_now
  in
  let run1 =
    Experiments.Common.simulate ~policy_key:"memo-test" ~policy
      ~r_star:Sim.Engine.Actual m Experiments.Common.Original
  in
  let run2 =
    Experiments.Common.simulate ~policy_key:"memo-test" ~policy
      ~r_star:Sim.Engine.Actual m Experiments.Common.Original
  in
  Alcotest.(check bool) "run memoized" true (run1 == run2);
  Alcotest.(check int) "policy constructed once" 1 !calls

let suite =
  [
    Alcotest.test_case "backfill specs" `Quick test_backfill_specs;
    Alcotest.test_case "variant specs" `Quick test_variant_specs;
    Alcotest.test_case "search specs" `Quick test_search_specs;
    Alcotest.test_case "bad specs rejected" `Quick test_bad_specs;
    Alcotest.test_case "all known specs parse" `Quick test_known_all_parse;
    Alcotest.test_case "chart rendering" `Quick test_chart_rendering;
    Alcotest.test_case "chart enabled env" `Quick test_chart_enabled_env;
    Alcotest.test_case "chart all zero" `Quick test_chart_all_zero;
    Alcotest.test_case "load labels" `Quick test_common_load_labels;
    Alcotest.test_case "months default" `Quick test_common_months_default;
    Alcotest.test_case "memoization" `Slow test_common_memoization;
  ]
