(* Tests for the ASCII schedule visualisation. *)

let outcome ?(id = 0) ?(submit = 0.0) ?(nodes = 4) ~start ~finish () =
  Metrics.Outcome.v
    ~job:(Helpers.job ~id ~submit ~nodes ~runtime:(finish -. start) ())
    ~start ~finish

let render f outcomes =
  let buffer = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buffer in
  f fmt outcomes;
  Format.pp_print_flush fmt ();
  Buffer.contents buffer

let test_jobs_chart_shapes () =
  let outcomes =
    [
      outcome ~id:0 ~start:0.0 ~finish:50.0 ();
      outcome ~id:1 ~submit:0.0 ~start:50.0 ~finish:100.0 ();
    ]
  in
  let out = render (Sim.Gantt.jobs_chart ~columns:20 ~max_jobs:40) outcomes in
  Alcotest.(check bool) "mentions legend" true
    (Helpers.contains out "'#'=running");
  Alcotest.(check bool) "has waiting dots" true (Helpers.contains out ".");
  Alcotest.(check bool) "has running hashes" true (Helpers.contains out "#");
  (* job 1 waits for the first half: its row must contain dots before
     hashes *)
  let lines = String.split_on_char '\n' out in
  let row1 = List.find (fun l -> Helpers.contains l "   1 ") lines in
  let dot = String.index row1 '.' in
  let hash = String.index row1 '#' in
  Alcotest.(check bool) "dots precede hashes" true (dot < hash)

let test_jobs_chart_elision () =
  let outcomes =
    List.init 10 (fun id ->
        outcome ~id ~start:(float_of_int id) ~finish:(float_of_int id +. 1.0) ())
  in
  let out = render (Sim.Gantt.jobs_chart ~columns:20 ~max_jobs:3) outcomes in
  Alcotest.(check bool) "elision note" true
    (Helpers.contains out "7 more jobs not shown")

let test_jobs_chart_empty () =
  Alcotest.(check bool) "empty message" true
    (Helpers.contains (render (Sim.Gantt.jobs_chart ~columns:20) []) "(no jobs)")

let test_utilization_chart () =
  (* one 8-node job busy the whole window on a 16-node machine: every
     bucket should read ~50% = digit 5 *)
  let outcomes = [ outcome ~nodes:8 ~start:0.0 ~finish:100.0 () ] in
  let out =
    render (Sim.Gantt.utilization_chart ~columns:10 ~capacity:16) outcomes
  in
  Alcotest.(check bool) "has a bar line" true (Helpers.contains out "|");
  Alcotest.(check bool) "reads 5 everywhere" true
    (Helpers.contains out "5555555555")

let suite =
  [
    Alcotest.test_case "jobs chart shapes" `Quick test_jobs_chart_shapes;
    Alcotest.test_case "jobs chart elision" `Quick test_jobs_chart_elision;
    Alcotest.test_case "jobs chart empty" `Quick test_jobs_chart_empty;
    Alcotest.test_case "utilization chart" `Quick test_utilization_chart;
  ]
