(* Tests for the fairshare extension: per-user usage accounting,
   per-user metrics, user attribution in the generator and SWF. *)

let test_job_with_user () =
  let j = Workload.Job.with_user 7 (Helpers.job ()) in
  Alcotest.(check int) "user attached" 7 j.Workload.Job.user;
  Alcotest.(check int) "default user" 0 (Helpers.job ()).Workload.Job.user;
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Job.with_user: negative user") (fun () ->
      ignore (Workload.Job.with_user (-1) (Helpers.job ())))

(* --- Fairshare accounting --- *)

let test_usage_accumulates () =
  let t = Core.Fairshare.create () in
  Core.Fairshare.record_start t ~now:0.0 ~nodes:4 ~duration:100.0 ~user:1;
  Core.Fairshare.record_start t ~now:0.0 ~nodes:2 ~duration:50.0 ~user:1;
  Alcotest.(check (float 1e-6)) "sum of areas" 500.0
    (Core.Fairshare.usage t ~now:0.0 1);
  Alcotest.(check (float 1e-6)) "unknown user" 0.0
    (Core.Fairshare.usage t ~now:0.0 99)

let test_usage_decays () =
  let t = Core.Fairshare.create ~half_life:100.0 () in
  Core.Fairshare.record_start t ~now:0.0 ~nodes:1 ~duration:1000.0 ~user:1;
  Alcotest.(check (float 1e-6)) "full at t=0" 1000.0
    (Core.Fairshare.usage t ~now:0.0 1);
  Alcotest.(check (float 1e-3)) "halved after one half-life" 500.0
    (Core.Fairshare.usage t ~now:100.0 1);
  Alcotest.(check (float 1e-3)) "quartered after two" 250.0
    (Core.Fairshare.usage t ~now:200.0 1)

let test_share_and_factor () =
  let t = Core.Fairshare.create () in
  Core.Fairshare.record_start t ~now:0.0 ~nodes:3 ~duration:100.0 ~user:1;
  Core.Fairshare.record_start t ~now:0.0 ~nodes:1 ~duration:100.0 ~user:2;
  Alcotest.(check (float 1e-6)) "share heavy" 0.75
    (Core.Fairshare.share t ~now:0.0 1);
  Alcotest.(check (float 1e-6)) "share light" 0.25
    (Core.Fairshare.share t ~now:0.0 2);
  Alcotest.(check (float 1e-6)) "factor" 2.5
    (Core.Fairshare.threshold_factor t ~now:0.0 ~penalty:2.0 1);
  Alcotest.(check (float 1e-6)) "empty tracker share" 0.0
    (Core.Fairshare.share (Core.Fairshare.create ()) ~now:0.0 1)

let test_untracked_users_ignored () =
  let t = Core.Fairshare.create () in
  Core.Fairshare.record_start t ~now:0.0 ~nodes:4 ~duration:100.0 ~user:0;
  Alcotest.(check (float 1e-6)) "user 0 untracked" 0.0
    (Core.Fairshare.usage t ~now:0.0 0)

(* --- User_stats --- *)

let outcome ~user ~wait ~nodes ~runtime id =
  let job =
    Workload.Job.with_user user (Helpers.job ~id ~nodes ~runtime ())
  in
  Metrics.Outcome.v ~job ~start:wait ~finish:(wait +. runtime)

let test_user_stats () =
  let outcomes =
    [
      outcome ~user:1 ~wait:3600.0 ~nodes:10 ~runtime:3600.0 0;
      outcome ~user:1 ~wait:7200.0 ~nodes:10 ~runtime:3600.0 1;
      outcome ~user:2 ~wait:0.0 ~nodes:1 ~runtime:3600.0 2;
    ]
  in
  let stats = Metrics.User_stats.compute outcomes in
  Alcotest.(check int) "two users" 2 (Metrics.User_stats.user_count stats);
  Alcotest.(check (list int)) "ordered by demand" [ 1; 2 ]
    (Metrics.User_stats.users stats);
  Alcotest.(check int) "job count" 2
    (Metrics.User_stats.job_count stats ~user:1);
  Alcotest.(check (float 1e-6)) "demand share" (72000.0 /. 75600.0)
    (Metrics.User_stats.demand_share stats ~user:1);
  Alcotest.(check (float 1e-6)) "avg wait" 5400.0
    (Metrics.User_stats.avg_wait stats ~user:1);
  Alcotest.(check (float 1e-6)) "avg slowdown user 2" 1.0
    (Metrics.User_stats.avg_bounded_slowdown stats ~user:2);
  let jain = Metrics.User_stats.jain_index stats in
  Alcotest.(check bool) "jain in (0, 1]" true (jain > 0.0 && jain <= 1.0)

let test_user_stats_ignores_anonymous () =
  let outcomes = [ outcome ~user:0 ~wait:0.0 ~nodes:1 ~runtime:60.0 0 ] in
  Alcotest.(check int) "anonymous dropped" 0
    (Metrics.User_stats.user_count (Metrics.User_stats.compute outcomes))

let test_jain_extremes () =
  let even =
    [ outcome ~user:1 ~wait:3600.0 ~nodes:1 ~runtime:3600.0 0;
      outcome ~user:2 ~wait:3600.0 ~nodes:1 ~runtime:3600.0 1 ]
  in
  Alcotest.(check (float 1e-9)) "identical users -> 1.0" 1.0
    (Metrics.User_stats.jain_index (Metrics.User_stats.compute even));
  Alcotest.(check (float 1e-9)) "no users -> 0" 0.0
    (Metrics.User_stats.jain_index (Metrics.User_stats.compute []))

(* --- generator & SWF carry users --- *)

let test_generator_assigns_users () =
  let profile = Workload.Month_profile.find "9/03" in
  let config =
    { Workload.Generator.default_config with scale = 0.1; users = 10 }
  in
  let trace = Workload.Generator.month ~config profile in
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun (j : Workload.Job.t) ->
      Alcotest.(check bool) "user in range" true (j.user >= 1 && j.user <= 10);
      Hashtbl.replace seen j.user ())
    (Workload.Trace.jobs trace);
  Alcotest.(check bool) "several users used" true (Hashtbl.length seen >= 5)

let test_swf_roundtrips_user () =
  let job = Workload.Job.with_user 17 (Helpers.job ~nodes:4 ()) in
  let trace = Workload.Trace.v [ job ] in
  let path = Filename.temp_file "swf_user" ".swf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Workload.Swf.to_file path trace;
      match Workload.Swf.of_file path with
      | Error e -> Alcotest.fail e
      | Ok r ->
          let j = (Workload.Trace.jobs r.Workload.Swf.trace).(0) in
          Alcotest.(check int) "user preserved" 17 j.Workload.Job.user)

(* --- policy integration --- *)

let test_fairshare_policy_name () =
  let config =
    { (Core.Search_policy.dds_lxf_dynb ~budget:1000) with
      Core.Search_policy.fairshare = Some 2.0 }
  in
  Alcotest.(check string) "name suffix" "DDS/lxf/dynB(L=1K)+fair(2)"
    (Core.Search_policy.name config)

let test_fairshare_flips_a_decision () =
  (* Two 8-node jobs on an 8-node machine, identical waits and
     runtimes: without fairshare their orders tie on both objective
     levels and the heuristic order (job id) wins; with fairshare the
     heavy user's inflated threshold absorbs the excess, so serving the
     light user first strictly wins. *)
  let machine = Cluster.Machine.v ~nodes:8 in
  let config =
    Core.Search_policy.v ~fairshare:2.0 ~algorithm:Core.Search.Dds
      ~heuristic:Core.Branching.Lxf
      ~bound:(Core.Bound.fixed_hours 1.0) ~budget:100 ()
  in
  let plain =
    Core.Search_policy.v ~algorithm:Core.Search.Dds
      ~heuristic:Core.Branching.Lxf
      ~bound:(Core.Bound.fixed_hours 1.0) ~budget:100 ()
  in
  let first_started policy_config =
    let policy = fst (Core.Search_policy.policy policy_config) in
    (* decision 1: establish user 1 as the heavy user *)
    let warm =
      Workload.Job.with_user 1
        (Helpers.job ~id:9 ~submit:0.0 ~nodes:8 ~runtime:3600.0 ())
    in
    let ctx1 =
      { Sched.Policy.now = 0.0; waiting = [ warm ];
        running = Cluster.Running_set.create ~machine;
        r_star = (fun j -> j.Workload.Job.runtime) }
    in
    let (_ : Workload.Job.t list) = policy.Sched.Policy.decide ctx1 in
    (* decision 2: heavy (id 0) vs light (id 1), identical otherwise *)
    let now = 10800.0 in
    let heavy =
      Workload.Job.with_user 1
        (Helpers.job ~id:0 ~submit:(now -. 7200.0) ~nodes:8 ~runtime:1800.0 ())
    in
    let light =
      Workload.Job.with_user 2
        (Helpers.job ~id:1 ~submit:(now -. 7200.0) ~nodes:8 ~runtime:1800.0 ())
    in
    let ctx2 =
      { Sched.Policy.now; waiting = [ heavy; light ];
        running = Cluster.Running_set.create ~machine;
        r_star = (fun j -> j.Workload.Job.runtime) }
    in
    match policy.Sched.Policy.decide ctx2 with
    | j :: _ -> j.Workload.Job.id
    | [] -> Alcotest.fail "expected a started job"
  in
  Alcotest.(check int) "plain policy keeps heuristic order" 0
    (first_started plain);
  Alcotest.(check int) "fairshare serves the light user first" 1
    (first_started config)

let test_fairshare_policy_completes_workload () =
  let trace = Helpers.mini_trace ~seed:33 ~n:40 () in
  (* attach users round-robin *)
  let trace =
    Workload.Trace.map_jobs trace (fun j ->
        Workload.Job.with_user (1 + (j.Workload.Job.id mod 4)) j)
  in
  let config =
    { (Core.Search_policy.dds_lxf_dynb ~budget:300) with
      Core.Search_policy.fairshare = Some 2.0 }
  in
  let policy = fst (Core.Search_policy.policy config) in
  let result =
    Sim.Engine.run ~machine:(Cluster.Machine.v ~nodes:16)
      ~r_star:Sim.Engine.Actual ~policy trace
  in
  Alcotest.(check int) "all jobs complete" 40
    (List.length result.Sim.Engine.outcomes)

let suite =
  [
    Alcotest.test_case "job with_user" `Quick test_job_with_user;
    Alcotest.test_case "usage accumulates" `Quick test_usage_accumulates;
    Alcotest.test_case "usage decays" `Quick test_usage_decays;
    Alcotest.test_case "share and factor" `Quick test_share_and_factor;
    Alcotest.test_case "anonymous untracked" `Quick
      test_untracked_users_ignored;
    Alcotest.test_case "user stats" `Quick test_user_stats;
    Alcotest.test_case "user stats ignores anonymous" `Quick
      test_user_stats_ignores_anonymous;
    Alcotest.test_case "jain extremes" `Quick test_jain_extremes;
    Alcotest.test_case "generator assigns users" `Quick
      test_generator_assigns_users;
    Alcotest.test_case "swf roundtrips user" `Quick test_swf_roundtrips_user;
    Alcotest.test_case "fairshare policy name" `Quick
      test_fairshare_policy_name;
    Alcotest.test_case "fairshare flips a decision" `Quick
      test_fairshare_flips_a_decision;
    Alcotest.test_case "fairshare policy completes" `Quick
      test_fairshare_policy_completes_workload;
  ]
