(* Unit and property tests for the availability profile. *)

open Cluster

let test_create () =
  let p = Profile.create ~now:10.0 ~capacity:128 in
  Alcotest.(check int) "one segment" 1 (Profile.segment_count p);
  Alcotest.(check int) "all free" 128 (Profile.free_at p 10.0);
  Alcotest.(check (float 1e-9)) "start" 10.0 (Profile.start_time p);
  Alcotest.(check bool) "invariant" true (Profile.invariant p)

let test_of_running () =
  (* capacity 10, jobs releasing 4 nodes at t=100 and 2 at t=50 *)
  let p = Profile.of_running ~now:0.0 ~capacity:10 [ (100.0, 4); (50.0, 2) ] in
  Alcotest.(check int) "free now" 4 (Profile.free_at p 0.0);
  Alcotest.(check int) "free after first release" 6 (Profile.free_at p 50.0);
  Alcotest.(check int) "free after both" 10 (Profile.free_at p 100.0);
  Alcotest.(check bool) "invariant" true (Profile.invariant p)

let test_of_running_merges_equal_times () =
  let p = Profile.of_running ~now:0.0 ~capacity:10 [ (50.0, 2); (50.0, 3) ] in
  Alcotest.(check int) "two segments" 2 (Profile.segment_count p);
  Alcotest.(check int) "free after merge" 10 (Profile.free_at p 50.0)

let test_of_running_past_release_ignored () =
  let p = Profile.of_running ~now:100.0 ~capacity:8 [ (50.0, 4) ] in
  Alcotest.(check int) "released already" 8 (Profile.free_at p 100.0)

let test_of_running_oversubscribed () =
  Alcotest.check_raises "oversubscription rejected"
    (Invalid_argument "Profile.of_running: running jobs exceed capacity")
    (fun () ->
      ignore (Profile.of_running ~now:0.0 ~capacity:4 [ (10.0, 3); (10.0, 2) ]))

let test_earliest_start_immediate () =
  let p = Profile.of_running ~now:0.0 ~capacity:10 [ (100.0, 4) ] in
  Alcotest.(check (float 1e-9)) "fits now" 0.0
    (Profile.earliest_start p ~nodes:6 ~duration:1000.0)

let test_earliest_start_waits_for_release () =
  let p = Profile.of_running ~now:0.0 ~capacity:10 [ (100.0, 4) ] in
  Alcotest.(check (float 1e-9)) "must wait" 100.0
    (Profile.earliest_start p ~nodes:8 ~duration:1000.0)

let test_earliest_start_hole_too_short () =
  (* 6 nodes free until t=50 (then 4 until t=100): a 6-node 60s job
     cannot use the [0,50) hole *)
  let p = Profile.create ~now:0.0 ~capacity:10 in
  Profile.reserve p ~at:50.0 ~nodes:6 ~duration:50.0;
  Alcotest.(check (float 1e-9)) "skips short hole" 100.0
    (Profile.earliest_start p ~nodes:6 ~duration:60.0);
  Alcotest.(check (float 1e-9)) "short job uses hole" 0.0
    (Profile.earliest_start p ~nodes:6 ~duration:50.0)

let test_reserve_splits_segments () =
  let p = Profile.create ~now:0.0 ~capacity:10 in
  Profile.reserve p ~at:10.0 ~nodes:4 ~duration:20.0;
  Alcotest.(check int) "free before" 10 (Profile.free_at p 5.0);
  Alcotest.(check int) "free during" 6 (Profile.free_at p 15.0);
  Alcotest.(check int) "free after" 10 (Profile.free_at p 30.0);
  Alcotest.(check bool) "invariant" true (Profile.invariant p)

let test_reserve_insufficient () =
  let p = Profile.of_running ~now:0.0 ~capacity:10 [ (100.0, 6) ] in
  Alcotest.check_raises "cannot oversubscribe"
    (Invalid_argument "Profile.reserve: insufficient free nodes") (fun () ->
      Profile.reserve p ~at:0.0 ~nodes:6 ~duration:10.0)

let test_fits_at () =
  let p = Profile.of_running ~now:0.0 ~capacity:10 [ (100.0, 4) ] in
  Alcotest.(check bool) "fits" true
    (Profile.fits_at p ~at:0.0 ~nodes:6 ~duration:1e6);
  Alcotest.(check bool) "does not fit" false
    (Profile.fits_at p ~at:0.0 ~nodes:7 ~duration:200.0);
  Alcotest.(check bool) "fits if short enough window later" true
    (Profile.fits_at p ~at:100.0 ~nodes:10 ~duration:50.0)

let test_copy_independent () =
  let p = Profile.create ~now:0.0 ~capacity:10 in
  let q = Profile.copy p in
  Profile.reserve p ~at:0.0 ~nodes:5 ~duration:100.0;
  Alcotest.(check int) "copy untouched" 10 (Profile.free_at q 0.0);
  Profile.copy_into ~src:p ~dst:q;
  Alcotest.(check int) "copy_into restores" 5 (Profile.free_at q 0.0)

let test_copy_into_capacity_mismatch () =
  let p = Profile.create ~now:0.0 ~capacity:10 in
  let q = Profile.create ~now:0.0 ~capacity:16 in
  Alcotest.check_raises "capacity mismatch"
    (Invalid_argument "Profile.copy_into: capacity mismatch") (fun () ->
      Profile.copy_into ~src:p ~dst:q)

(* --- properties --- *)

(* Random placement plan: list of (nodes, duration). *)
let plan_gen =
  QCheck.Gen.(
    list_size (1 -- 25)
      (pair (1 -- 16) (map (fun d -> float_of_int (d + 1)) (0 -- 5000))))

let plan_arbitrary = QCheck.make plan_gen

let prop_invariant_under_reserves =
  QCheck.Test.make ~name:"profile invariant under random placements"
    ~count:300 plan_arbitrary (fun plan ->
      let p = Profile.create ~now:0.0 ~capacity:16 in
      List.iter
        (fun (nodes, duration) ->
          let s = Profile.earliest_start p ~nodes ~duration in
          Profile.reserve p ~at:s ~nodes ~duration)
        plan;
      Profile.invariant p)

let prop_earliest_start_is_feasible =
  QCheck.Test.make ~name:"earliest_start fits at its own answer" ~count:300
    plan_arbitrary (fun plan ->
      let p = Profile.create ~now:0.0 ~capacity:16 in
      List.for_all
        (fun (nodes, duration) ->
          let s = Profile.earliest_start p ~nodes ~duration in
          let ok = Profile.fits_at p ~at:s ~nodes ~duration in
          Profile.reserve p ~at:s ~nodes ~duration;
          ok)
        plan)

let prop_earliest_start_is_minimal =
  (* No segment boundary strictly before the reported start admits the
     job: the start really is earliest among candidate times. *)
  QCheck.Test.make ~name:"earliest_start minimal over boundaries" ~count:200
    plan_arbitrary (fun plan ->
      let p = Profile.create ~now:0.0 ~capacity:16 in
      List.for_all
        (fun (nodes, duration) ->
          let s = Profile.earliest_start p ~nodes ~duration in
          let earlier_fits =
            List.exists
              (fun (b, _) -> b < s && Profile.fits_at p ~at:b ~nodes ~duration)
              (Profile.segments p)
          in
          Profile.reserve p ~at:s ~nodes ~duration;
          not earlier_fits)
        plan)

let prop_free_never_negative =
  QCheck.Test.make ~name:"free counts within [0, capacity]" ~count:300
    plan_arbitrary (fun plan ->
      let p = Profile.create ~now:0.0 ~capacity:16 in
      List.iter
        (fun (nodes, duration) ->
          let s = Profile.earliest_start p ~nodes ~duration in
          Profile.reserve p ~at:s ~nodes ~duration)
        plan;
      List.for_all (fun (_, free) -> free >= 0 && free <= 16)
        (Profile.segments p))

let suite =
  [
    Alcotest.test_case "create" `Quick test_create;
    Alcotest.test_case "of_running" `Quick test_of_running;
    Alcotest.test_case "of_running merges" `Quick
      test_of_running_merges_equal_times;
    Alcotest.test_case "past releases ignored" `Quick
      test_of_running_past_release_ignored;
    Alcotest.test_case "oversubscription rejected" `Quick
      test_of_running_oversubscribed;
    Alcotest.test_case "earliest_start immediate" `Quick
      test_earliest_start_immediate;
    Alcotest.test_case "earliest_start waits" `Quick
      test_earliest_start_waits_for_release;
    Alcotest.test_case "earliest_start skips short hole" `Quick
      test_earliest_start_hole_too_short;
    Alcotest.test_case "reserve splits" `Quick test_reserve_splits_segments;
    Alcotest.test_case "reserve validates" `Quick test_reserve_insufficient;
    Alcotest.test_case "fits_at" `Quick test_fits_at;
    Alcotest.test_case "copy independence" `Quick test_copy_independent;
    Alcotest.test_case "copy_into mismatch" `Quick
      test_copy_into_capacity_mismatch;
    QCheck_alcotest.to_alcotest prop_invariant_under_reserves;
    QCheck_alcotest.to_alcotest prop_earliest_start_is_feasible;
    QCheck_alcotest.to_alcotest prop_earliest_start_is_minimal;
    QCheck_alcotest.to_alcotest prop_free_never_negative;
  ]
