(* Unit and property tests for the availability profile. *)

open Cluster

let test_create () =
  let p = Profile.create ~now:10.0 ~capacity:128 in
  Alcotest.(check int) "one segment" 1 (Profile.segment_count p);
  Alcotest.(check int) "all free" 128 (Profile.free_at p 10.0);
  Alcotest.(check (float 1e-9)) "start" 10.0 (Profile.start_time p);
  Alcotest.(check bool) "invariant" true (Profile.invariant p)

let test_of_running () =
  (* capacity 10, jobs releasing 4 nodes at t=100 and 2 at t=50 *)
  let p = Profile.of_running ~now:0.0 ~capacity:10 [ (100.0, 4); (50.0, 2) ] in
  Alcotest.(check int) "free now" 4 (Profile.free_at p 0.0);
  Alcotest.(check int) "free after first release" 6 (Profile.free_at p 50.0);
  Alcotest.(check int) "free after both" 10 (Profile.free_at p 100.0);
  Alcotest.(check bool) "invariant" true (Profile.invariant p)

let test_of_running_merges_equal_times () =
  let p = Profile.of_running ~now:0.0 ~capacity:10 [ (50.0, 2); (50.0, 3) ] in
  Alcotest.(check int) "two segments" 2 (Profile.segment_count p);
  Alcotest.(check int) "free after merge" 10 (Profile.free_at p 50.0)

let test_of_running_past_release_ignored () =
  let p = Profile.of_running ~now:100.0 ~capacity:8 [ (50.0, 4) ] in
  Alcotest.(check int) "released already" 8 (Profile.free_at p 100.0)

let test_of_running_oversubscribed () =
  Alcotest.check_raises "oversubscription rejected"
    (Invalid_argument "Profile.of_running: running jobs exceed capacity")
    (fun () ->
      ignore (Profile.of_running ~now:0.0 ~capacity:4 [ (10.0, 3); (10.0, 2) ]))

let test_earliest_start_immediate () =
  let p = Profile.of_running ~now:0.0 ~capacity:10 [ (100.0, 4) ] in
  Alcotest.(check (float 1e-9)) "fits now" 0.0
    (Profile.earliest_start p ~nodes:6 ~duration:1000.0)

let test_earliest_start_waits_for_release () =
  let p = Profile.of_running ~now:0.0 ~capacity:10 [ (100.0, 4) ] in
  Alcotest.(check (float 1e-9)) "must wait" 100.0
    (Profile.earliest_start p ~nodes:8 ~duration:1000.0)

let test_earliest_start_hole_too_short () =
  (* 6 nodes free until t=50 (then 4 until t=100): a 6-node 60s job
     cannot use the [0,50) hole *)
  let p = Profile.create ~now:0.0 ~capacity:10 in
  Profile.reserve p ~at:50.0 ~nodes:6 ~duration:50.0;
  Alcotest.(check (float 1e-9)) "skips short hole" 100.0
    (Profile.earliest_start p ~nodes:6 ~duration:60.0);
  Alcotest.(check (float 1e-9)) "short job uses hole" 0.0
    (Profile.earliest_start p ~nodes:6 ~duration:50.0)

let test_reserve_splits_segments () =
  let p = Profile.create ~now:0.0 ~capacity:10 in
  Profile.reserve p ~at:10.0 ~nodes:4 ~duration:20.0;
  Alcotest.(check int) "free before" 10 (Profile.free_at p 5.0);
  Alcotest.(check int) "free during" 6 (Profile.free_at p 15.0);
  Alcotest.(check int) "free after" 10 (Profile.free_at p 30.0);
  Alcotest.(check bool) "invariant" true (Profile.invariant p)

let test_reserve_insufficient () =
  let p = Profile.of_running ~now:0.0 ~capacity:10 [ (100.0, 6) ] in
  Alcotest.check_raises "cannot oversubscribe"
    (Invalid_argument "Profile.reserve: insufficient free nodes") (fun () ->
      Profile.reserve p ~at:0.0 ~nodes:6 ~duration:10.0)

let test_fits_at () =
  let p = Profile.of_running ~now:0.0 ~capacity:10 [ (100.0, 4) ] in
  Alcotest.(check bool) "fits" true
    (Profile.fits_at p ~at:0.0 ~nodes:6 ~duration:1e6);
  Alcotest.(check bool) "does not fit" false
    (Profile.fits_at p ~at:0.0 ~nodes:7 ~duration:200.0);
  Alcotest.(check bool) "fits if short enough window later" true
    (Profile.fits_at p ~at:100.0 ~nodes:10 ~duration:50.0)

let test_copy_independent () =
  let p = Profile.create ~now:0.0 ~capacity:10 in
  let q = Profile.copy p in
  Profile.reserve p ~at:0.0 ~nodes:5 ~duration:100.0;
  Alcotest.(check int) "copy untouched" 10 (Profile.free_at q 0.0);
  Profile.copy_into ~src:p ~dst:q;
  Alcotest.(check int) "copy_into restores" 5 (Profile.free_at q 0.0)

let test_copy_into_capacity_mismatch () =
  let p = Profile.create ~now:0.0 ~capacity:10 in
  let q = Profile.create ~now:0.0 ~capacity:16 in
  Alcotest.check_raises "capacity mismatch"
    (Invalid_argument "Profile.copy_into: capacity mismatch") (fun () ->
      Profile.copy_into ~src:p ~dst:q)

(* --- trail-based backtracking --- *)

let check_segments msg expected p =
  Alcotest.(check (list (pair (float 1e-12) int))) msg expected
    (Profile.segments p)

let test_trail_undo_restores () =
  let p = Profile.of_running ~now:0.0 ~capacity:10 [ (100.0, 4) ] in
  let before = Profile.segments p in
  let m = Profile.mark p in
  Profile.reserve p ~at:0.0 ~nodes:3 ~duration:50.0;
  Alcotest.(check bool) "changed" false (Profile.segments p = before);
  Profile.undo_to p m;
  check_segments "restored exactly" before p;
  Alcotest.(check int) "trail rewound" 0 (Profile.trail_length p);
  Alcotest.(check bool) "invariant" true (Profile.invariant p)

let test_trail_finish_past_last_boundary () =
  (* reservation window extends beyond the last segment boundary: the
     final infinite segment is split at the finish time *)
  let p = Profile.create ~now:0.0 ~capacity:10 in
  Profile.reserve p ~at:0.0 ~nodes:3 ~duration:10.0;
  let before = Profile.segments p in
  let m = Profile.mark p in
  Profile.reserve p ~at:20.0 ~nodes:2 ~duration:1000.0;
  check_segments "split at finish"
    [ (0.0, 7); (10.0, 10); (20.0, 8); (1020.0, 10) ]
    p;
  Profile.undo_to p m;
  check_segments "restored exactly" before p

let test_trail_split_at_at () =
  (* reservation starting strictly inside a segment: split at [at] *)
  let p = Profile.create ~now:0.0 ~capacity:10 in
  let m = Profile.mark p in
  Profile.reserve p ~at:5.0 ~nodes:4 ~duration:10.0;
  check_segments "split at at" [ (0.0, 10); (5.0, 6); (15.0, 10) ] p;
  Profile.undo_to p m;
  check_segments "restored exactly" [ (0.0, 10) ] p

let test_trail_merge_both_ends () =
  (* the carved run ends up equal to both neighbours: two local merges
     recorded on the trail, both undone *)
  let p = Profile.create ~now:0.0 ~capacity:10 in
  Profile.reserve p ~at:0.0 ~nodes:4 ~duration:10.0;
  Profile.reserve p ~at:20.0 ~nodes:4 ~duration:10.0;
  let before = Profile.segments p in
  Alcotest.(check int) "four segments" 4 (List.length before);
  let m = Profile.mark p in
  Profile.reserve p ~at:10.0 ~nodes:4 ~duration:10.0;
  check_segments "merged with both neighbours" [ (0.0, 6); (30.0, 10) ] p;
  Profile.undo_to p m;
  check_segments "restored exactly" before p

let test_trail_nested_marks () =
  let p = Profile.create ~now:0.0 ~capacity:10 in
  let m0 = Profile.mark p in
  Profile.reserve p ~at:0.0 ~nodes:2 ~duration:10.0;
  let mid = Profile.segments p in
  let m1 = Profile.mark p in
  Profile.reserve p ~at:5.0 ~nodes:3 ~duration:10.0;
  Profile.undo_to p m1;
  check_segments "inner undone" mid p;
  Profile.undo_to p m0;
  check_segments "outer undone" [ (0.0, 10) ] p

let test_trail_invalid_mark () =
  let p = Profile.create ~now:0.0 ~capacity:10 in
  let m0 = Profile.mark p in
  Profile.reserve p ~at:0.0 ~nodes:2 ~duration:10.0;
  let m1 = Profile.mark p in
  Profile.undo_to p m0;
  Alcotest.check_raises "mark already undone past"
    (Invalid_argument "Profile.undo_to: mark not on the current trail")
    (fun () -> Profile.undo_to p m1)

let test_copy_into_clears_trail () =
  let p = Profile.create ~now:0.0 ~capacity:10 in
  let q = Profile.create ~now:0.0 ~capacity:10 in
  let _m0 = Profile.mark p in
  Profile.reserve p ~at:0.0 ~nodes:2 ~duration:10.0;
  let m1 = Profile.mark p in
  Profile.copy_into ~src:q ~dst:p;
  Alcotest.(check int) "trail cleared" 0 (Profile.trail_length p);
  Alcotest.check_raises "stale mark rejected"
    (Invalid_argument "Profile.undo_to: mark not on the current trail")
    (fun () -> Profile.undo_to p m1)

let test_place_earliest_matches_two_step () =
  let p = Profile.of_running ~now:0.0 ~capacity:10 [ (100.0, 4); (50.0, 2) ] in
  let q = Profile.copy p in
  let s = Profile.place_earliest p ~nodes:6 ~duration:75.0 in
  let s' = Profile.earliest_start q ~nodes:6 ~duration:75.0 in
  Profile.reserve q ~at:s' ~nodes:6 ~duration:75.0;
  Alcotest.(check (float 1e-9)) "same start" s' s;
  check_segments "same segments" (Profile.segments q) p

(* --- properties --- *)

(* Random placement plan: list of (nodes, duration). *)
let plan_gen =
  QCheck.Gen.(
    list_size (1 -- 25)
      (pair (1 -- 16) (map (fun d -> float_of_int (d + 1)) (0 -- 5000))))

let plan_arbitrary = QCheck.make plan_gen

let prop_invariant_under_reserves =
  QCheck.Test.make ~name:"profile invariant under random placements"
    ~count:300 plan_arbitrary (fun plan ->
      let p = Profile.create ~now:0.0 ~capacity:16 in
      List.iter
        (fun (nodes, duration) ->
          let s = Profile.earliest_start p ~nodes ~duration in
          Profile.reserve p ~at:s ~nodes ~duration)
        plan;
      Profile.invariant p)

let prop_earliest_start_is_feasible =
  QCheck.Test.make ~name:"earliest_start fits at its own answer" ~count:300
    plan_arbitrary (fun plan ->
      let p = Profile.create ~now:0.0 ~capacity:16 in
      List.for_all
        (fun (nodes, duration) ->
          let s = Profile.earliest_start p ~nodes ~duration in
          let ok = Profile.fits_at p ~at:s ~nodes ~duration in
          Profile.reserve p ~at:s ~nodes ~duration;
          ok)
        plan)

let prop_earliest_start_is_minimal =
  (* No segment boundary strictly before the reported start admits the
     job: the start really is earliest among candidate times. *)
  QCheck.Test.make ~name:"earliest_start minimal over boundaries" ~count:200
    plan_arbitrary (fun plan ->
      let p = Profile.create ~now:0.0 ~capacity:16 in
      List.for_all
        (fun (nodes, duration) ->
          let s = Profile.earliest_start p ~nodes ~duration in
          let earlier_fits =
            List.exists
              (fun (b, _) -> b < s && Profile.fits_at p ~at:b ~nodes ~duration)
              (Profile.segments p)
          in
          Profile.reserve p ~at:s ~nodes ~duration;
          not earlier_fits)
        plan)

let prop_free_never_negative =
  QCheck.Test.make ~name:"free counts within [0, capacity]" ~count:300
    plan_arbitrary (fun plan ->
      let p = Profile.create ~now:0.0 ~capacity:16 in
      List.iter
        (fun (nodes, duration) ->
          let s = Profile.earliest_start p ~nodes ~duration in
          Profile.reserve p ~at:s ~nodes ~duration)
        plan;
      List.for_all (fun (_, free) -> free >= 0 && free <= 16)
        (Profile.segments p))

(* Oracle property for the trail: a random LIFO pattern of
   reservations and undos, each checked bit-for-bit against a
   [Profile.copy] snapshot taken at the mark.  [push] reserves at the
   earliest start of a random job (durations long enough to reach past
   the last boundary, starts falling both on and between boundaries),
   [pop] undoes; the trailing pops verify the whole stack unwinds. *)
let trail_op_gen =
  QCheck.Gen.(
    list_size (1 -- 40)
      (frequency
         [ (3, map2 (fun n d -> `Push (n, float_of_int (d + 1)))
                (1 -- 16) (0 -- 5000));
           (2, return `Pop) ]))

let trail_ops_arbitrary =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | `Push (n, d) -> Printf.sprintf "push(%d,%g)" n d
             | `Pop -> "pop")
           ops))
    trail_op_gen

let prop_trail_matches_copy_oracle =
  QCheck.Test.make ~name:"undo_to restores bit-for-bit (vs copy oracle)"
    ~count:300 trail_ops_arbitrary (fun ops ->
      let p = Profile.create ~now:0.0 ~capacity:16 in
      let stack = ref [] in
      let ok = ref true in
      let pop () =
        match !stack with
        | [] -> ()
        | (m, oracle) :: rest ->
            stack := rest;
            Profile.undo_to p m;
            ok :=
              !ok
              && Profile.segments p = Profile.segments oracle
              && Profile.invariant p
      in
      List.iter
        (function
          | `Push (nodes, duration) ->
              let oracle = Profile.copy p in
              let m = Profile.mark p in
              let s = Profile.earliest_start p ~nodes ~duration in
              Profile.reserve p ~at:s ~nodes ~duration;
              stack := (m, oracle) :: !stack
          | `Pop -> pop ())
        ops;
      while !stack <> [] do pop () done;
      !ok)

let prop_place_earliest_equals_two_step =
  QCheck.Test.make ~name:"place_earliest = earliest_start; reserve"
    ~count:300 plan_arbitrary (fun plan ->
      let p = Profile.create ~now:0.0 ~capacity:16 in
      let q = Profile.create ~now:0.0 ~capacity:16 in
      List.for_all
        (fun (nodes, duration) ->
          let s = Profile.place_earliest p ~nodes ~duration in
          let s' = Profile.earliest_start q ~nodes ~duration in
          Profile.reserve q ~at:s' ~nodes ~duration;
          s = s' && Profile.segments p = Profile.segments q)
        plan)

let suite =
  [
    Alcotest.test_case "create" `Quick test_create;
    Alcotest.test_case "of_running" `Quick test_of_running;
    Alcotest.test_case "of_running merges" `Quick
      test_of_running_merges_equal_times;
    Alcotest.test_case "past releases ignored" `Quick
      test_of_running_past_release_ignored;
    Alcotest.test_case "oversubscription rejected" `Quick
      test_of_running_oversubscribed;
    Alcotest.test_case "earliest_start immediate" `Quick
      test_earliest_start_immediate;
    Alcotest.test_case "earliest_start waits" `Quick
      test_earliest_start_waits_for_release;
    Alcotest.test_case "earliest_start skips short hole" `Quick
      test_earliest_start_hole_too_short;
    Alcotest.test_case "reserve splits" `Quick test_reserve_splits_segments;
    Alcotest.test_case "reserve validates" `Quick test_reserve_insufficient;
    Alcotest.test_case "fits_at" `Quick test_fits_at;
    Alcotest.test_case "copy independence" `Quick test_copy_independent;
    Alcotest.test_case "copy_into mismatch" `Quick
      test_copy_into_capacity_mismatch;
    Alcotest.test_case "trail undo restores" `Quick test_trail_undo_restores;
    Alcotest.test_case "trail finish past last boundary" `Quick
      test_trail_finish_past_last_boundary;
    Alcotest.test_case "trail split at at" `Quick test_trail_split_at_at;
    Alcotest.test_case "trail merges both ends" `Quick
      test_trail_merge_both_ends;
    Alcotest.test_case "trail nested marks" `Quick test_trail_nested_marks;
    Alcotest.test_case "trail invalid mark" `Quick test_trail_invalid_mark;
    Alcotest.test_case "copy_into clears trail" `Quick
      test_copy_into_clears_trail;
    Alcotest.test_case "place_earliest = two-step" `Quick
      test_place_earliest_matches_two_step;
    QCheck_alcotest.to_alcotest prop_invariant_under_reserves;
    QCheck_alcotest.to_alcotest prop_earliest_start_is_feasible;
    QCheck_alcotest.to_alcotest prop_earliest_start_is_minimal;
    QCheck_alcotest.to_alcotest prop_free_never_negative;
    QCheck_alcotest.to_alcotest prop_trail_matches_copy_oracle;
    QCheck_alcotest.to_alcotest prop_place_earliest_equals_two_step;
  ]
