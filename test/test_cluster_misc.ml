(* Tests for Cluster.Machine and Cluster.Running_set. *)

open Cluster

let entry ?(id = 0) ?(nodes = 4) ?(start = 0.0) ?(runtime = 100.0) () =
  let job = Helpers.job ~id ~nodes ~runtime () in
  {
    Running_set.job;
    start;
    finish = start +. runtime;
    est_finish = start +. runtime;
  }

let test_machine () =
  Alcotest.(check int) "titan nodes" 128 Machine.titan.Machine.nodes;
  Alcotest.check_raises "at least one node"
    (Invalid_argument "Machine.v: nodes must be >= 1") (fun () ->
      ignore (Machine.v ~nodes:0));
  let m = Machine.v ~nodes:8 in
  Alcotest.(check bool) "fits" true (Machine.fits m (Helpers.job ~nodes:8 ()));
  Alcotest.(check bool) "too wide" false
    (Machine.fits m (Helpers.job ~nodes:9 ()))

let test_running_set_accounting () =
  let rs = Running_set.create ~machine:(Machine.v ~nodes:16) in
  Alcotest.(check bool) "starts empty" true (Running_set.is_empty rs);
  Running_set.add rs (entry ~id:0 ~nodes:4 ());
  Running_set.add rs (entry ~id:1 ~nodes:8 ());
  Alcotest.(check int) "busy" 12 (Running_set.busy_nodes rs);
  Alcotest.(check int) "free" 4 (Running_set.free_nodes rs);
  Alcotest.(check int) "count" 2 (Running_set.count rs);
  let e = Running_set.remove rs ~id:0 in
  Alcotest.(check int) "removed job id" 0 e.Running_set.job.Workload.Job.id;
  Alcotest.(check int) "free after remove" 8 (Running_set.free_nodes rs)

let test_running_set_rejects () =
  let rs = Running_set.create ~machine:(Machine.v ~nodes:8) in
  Running_set.add rs (entry ~id:0 ~nodes:8 ());
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "Running_set.add: job 0 already running") (fun () ->
      Running_set.add rs (entry ~id:0 ~nodes:1 ()));
  Alcotest.check_raises "oversubscription"
    (Invalid_argument "Running_set.add: job 1 oversubscribes machine")
    (fun () -> Running_set.add rs (entry ~id:1 ~nodes:1 ()));
  Alcotest.check_raises "remove missing" Not_found (fun () ->
      ignore (Running_set.remove rs ~id:99))

let test_releases_and_next_finish () =
  let rs = Running_set.create ~machine:(Machine.v ~nodes:16) in
  Running_set.add rs (entry ~id:0 ~nodes:4 ~start:0.0 ~runtime:100.0 ());
  Running_set.add rs (entry ~id:1 ~nodes:2 ~start:0.0 ~runtime:50.0 ());
  Alcotest.(check (option (float 1e-9))) "next finish" (Some 50.0)
    (Running_set.next_finish rs);
  let releases = List.sort compare (Running_set.releases rs ~now:10.0) in
  Alcotest.(check int) "two releases" 2 (List.length releases);
  Alcotest.(check (float 1e-9)) "first release" 50.0 (fst (List.hd releases))

let test_releases_clamp_past_estimates () =
  let rs = Running_set.create ~machine:(Machine.v ~nodes:16) in
  let e = { (entry ~id:0 ~nodes:4 ~start:0.0 ~runtime:100.0 ()) with
            Running_set.est_finish = 5.0 }
  in
  Running_set.add rs e;
  (* at now = 10 the estimate has expired but the job still runs *)
  match Running_set.releases rs ~now:10.0 with
  | [ (t, nodes) ] ->
      Alcotest.(check int) "nodes" 4 nodes;
      Alcotest.(check bool) "release strictly after now" true (t > 10.0)
  | other ->
      Alcotest.failf "expected one release, got %d" (List.length other)

let suite =
  [
    Alcotest.test_case "machine" `Quick test_machine;
    Alcotest.test_case "running set accounting" `Quick
      test_running_set_accounting;
    Alcotest.test_case "running set rejects" `Quick test_running_set_rejects;
    Alcotest.test_case "releases / next_finish" `Quick
      test_releases_and_next_finish;
    Alcotest.test_case "releases clamp past estimates" `Quick
      test_releases_clamp_past_estimates;
  ]
