(* Unit and property tests for Simcore.Heap. *)

let int_heap xs = Simcore.Heap.of_list ~cmp:Int.compare xs

let test_empty () =
  let h = Simcore.Heap.create ~cmp:Int.compare in
  Alcotest.(check bool) "is_empty" true (Simcore.Heap.is_empty h);
  Alcotest.(check int) "length" 0 (Simcore.Heap.length h);
  Alcotest.(check (option int)) "peek" None (Simcore.Heap.peek h);
  Alcotest.(check (option int)) "pop" None (Simcore.Heap.pop h)

let test_exn_on_empty () =
  let h = Simcore.Heap.create ~cmp:Int.compare in
  Alcotest.check_raises "peek_exn" (Invalid_argument "Heap.peek_exn: empty heap")
    (fun () -> ignore (Simcore.Heap.peek_exn h));
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Simcore.Heap.pop_exn h))

let test_ordering () =
  let h = int_heap [ 5; 1; 4; 1; 3; 9; 2 ] in
  Alcotest.(check (list int)) "drain ascending" [ 1; 1; 2; 3; 4; 5; 9 ]
    (Simcore.Heap.drain h);
  Alcotest.(check bool) "empty after drain" true (Simcore.Heap.is_empty h)

let test_peek_stability () =
  let h = int_heap [ 3; 1; 2 ] in
  Alcotest.(check int) "peek min" 1 (Simcore.Heap.peek_exn h);
  Alcotest.(check int) "still there" 3 (Simcore.Heap.length h)

let test_interleaved () =
  let h = Simcore.Heap.create ~cmp:Int.compare in
  Simcore.Heap.push h 10;
  Simcore.Heap.push h 5;
  Alcotest.(check int) "pop 5" 5 (Simcore.Heap.pop_exn h);
  Simcore.Heap.push h 1;
  Simcore.Heap.push h 7;
  Alcotest.(check int) "pop 1" 1 (Simcore.Heap.pop_exn h);
  Alcotest.(check int) "pop 7" 7 (Simcore.Heap.pop_exn h);
  Alcotest.(check int) "pop 10" 10 (Simcore.Heap.pop_exn h)

let test_clear () =
  let h = int_heap [ 1; 2; 3 ] in
  Simcore.Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Simcore.Heap.length h);
  Simcore.Heap.push h 42;
  Alcotest.(check int) "usable after clear" 42 (Simcore.Heap.pop_exn h)

let test_to_list_snapshot () =
  let h = int_heap [ 4; 2; 6 ] in
  let snapshot = List.sort Int.compare (Simcore.Heap.to_list h) in
  Alcotest.(check (list int)) "contents" [ 2; 4; 6 ] snapshot;
  Alcotest.(check int) "heap untouched" 3 (Simcore.Heap.length h)

let prop_drain_sorts =
  QCheck.Test.make ~name:"heap drain = List.sort" ~count:300
    QCheck.(list int)
    (fun xs -> Simcore.Heap.drain (int_heap xs) = List.sort Int.compare xs)

let prop_length =
  QCheck.Test.make ~name:"heap length = list length" ~count:300
    QCheck.(list int)
    (fun xs -> Simcore.Heap.length (int_heap xs) = List.length xs)

let prop_min_at_top =
  QCheck.Test.make ~name:"heap peek = list min" ~count:300
    QCheck.(list_of_size Gen.(1 -- 50) int)
    (fun xs ->
      Simcore.Heap.peek_exn (int_heap xs)
      = List.fold_left min (List.hd xs) xs)

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "exceptions on empty" `Quick test_exn_on_empty;
    Alcotest.test_case "drain is ascending" `Quick test_ordering;
    Alcotest.test_case "peek does not remove" `Quick test_peek_stability;
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "to_list snapshot" `Quick test_to_list_snapshot;
    QCheck_alcotest.to_alcotest prop_drain_sorts;
    QCheck_alcotest.to_alcotest prop_length;
    QCheck_alcotest.to_alcotest prop_min_at_top;
  ]
