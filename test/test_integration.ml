(* End-to-end integration tests: run the full pipeline (generator ->
   engine -> metrics) on a scaled-down month and check the paper's
   qualitative claims hold. *)

let month label =
  let profile = Workload.Month_profile.find label in
  let config = { Workload.Generator.default_config with scale = 0.12; seed = 9 } in
  Workload.Generator.month ~config profile

let simulate policy trace =
  Sim.Run.simulate ~r_star:Sim.Engine.Actual ~policy trace

let dds budget =
  fst (Core.Search_policy.policy (Core.Search_policy.dds_lxf_dynb ~budget))

let test_backfill_tradeoff () =
  (* Section 3.2's key prior result: LXF-backfill improves average
     measures over FCFS-backfill but typically degrades the max wait
     under load. *)
  let trace =
    Workload.Trace.scale_load (month "7/03") ~capacity:128 ~target:0.95
  in
  let fcfs = simulate Sched.Backfill.fcfs trace in
  let lxf = simulate Sched.Backfill.lxf trace in
  Alcotest.(check bool) "LXF improves avg slowdown" true
    (lxf.Sim.Run.aggregate.Metrics.Aggregate.avg_bounded_slowdown
    < fcfs.Sim.Run.aggregate.Metrics.Aggregate.avg_bounded_slowdown);
  Alcotest.(check bool) "FCFS has no worse max wait" true
    (fcfs.Sim.Run.aggregate.Metrics.Aggregate.max_wait
    <= lxf.Sim.Run.aggregate.Metrics.Aggregate.max_wait +. 1.0)

let test_fcfs_zero_excess_by_construction () =
  let trace = month "10/03" in
  let fcfs = simulate Sched.Backfill.fcfs trace in
  let threshold = fcfs.Sim.Run.aggregate.Metrics.Aggregate.max_wait in
  let excess = Sim.Run.excess fcfs ~threshold in
  Alcotest.(check (float 1e-6)) "total excess vs own max" 0.0
    excess.Metrics.Excess.total;
  Alcotest.(check int) "no unfortunate jobs" 0 excess.Metrics.Excess.count

let test_dds_balances_both_goals () =
  (* The headline claim on a scaled month: DDS/lxf/dynB's max wait is
     close to FCFS-backfill's (not LXF's blow-up) while its average
     slowdown is much closer to LXF-backfill's than FCFS's. *)
  let trace =
    Workload.Trace.scale_load (month "7/03") ~capacity:128 ~target:0.95
  in
  let fcfs = simulate Sched.Backfill.fcfs trace in
  let lxf = simulate Sched.Backfill.lxf trace in
  let search = simulate (dds 1000) trace in
  let max_wait r = r.Sim.Run.aggregate.Metrics.Aggregate.max_wait in
  let slowdown r = r.Sim.Run.aggregate.Metrics.Aggregate.avg_bounded_slowdown in
  Alcotest.(check bool)
    (Printf.sprintf "max wait %.1fh within 1.3x of FCFS %.1fh"
       (max_wait search /. 3600.) (max_wait fcfs /. 3600.))
    true
    (max_wait search <= 1.3 *. max_wait fcfs);
  Alcotest.(check bool)
    (Printf.sprintf "avg slowdown %.1f beats FCFS %.1f" (slowdown search)
       (slowdown fcfs))
    true
    (slowdown search < slowdown fcfs);
  ignore lxf

let test_dds_excess_below_lxf () =
  let trace =
    Workload.Trace.scale_load (month "9/03") ~capacity:128 ~target:0.95
  in
  let fcfs = simulate Sched.Backfill.fcfs trace in
  let lxf = simulate Sched.Backfill.lxf trace in
  let search = simulate (dds 1000) trace in
  let threshold = fcfs.Sim.Run.aggregate.Metrics.Aggregate.max_wait in
  let total r = (Sim.Run.excess r ~threshold).Metrics.Excess.total in
  Alcotest.(check bool) "DDS total excess <= LXF total excess" true
    (total search <= total lxf +. 1.0)

let test_sjf_starves () =
  (* SJF-backfill's known pathology: a clearly worse maximum wait than
     FCFS-backfill under load. *)
  let trace =
    Workload.Trace.scale_load (month "10/03") ~capacity:128 ~target:0.95
  in
  let fcfs = simulate Sched.Backfill.fcfs trace in
  let sjf = simulate Sched.Backfill.sjf trace in
  Alcotest.(check bool) "SJF max wait worse" true
    (sjf.Sim.Run.aggregate.Metrics.Aggregate.max_wait
    > fcfs.Sim.Run.aggregate.Metrics.Aggregate.max_wait)

let test_budget_improves_objective_monotonically_enough () =
  (* a larger node budget cannot hurt the *per-decision* objective;
     end-to-end it should keep total excess no worse within noise.
     We check the weaker, robust property: the L=2K run's total excess
     w.r.t. the FCFS max is within 25% + 2h of the L=200 run's. *)
  let trace =
    Workload.Trace.scale_load (month "1/04") ~capacity:128 ~target:0.95
  in
  let fcfs = simulate Sched.Backfill.fcfs trace in
  let threshold = fcfs.Sim.Run.aggregate.Metrics.Aggregate.max_wait in
  let small = simulate (dds 200) trace in
  let large = simulate (dds 2000) trace in
  let total r = (Sim.Run.excess r ~threshold).Metrics.Excess.total in
  Alcotest.(check bool)
    (Printf.sprintf "L=2K excess %.1fh vs L=200 %.1fh"
       (total large /. 3600.) (total small /. 3600.))
    true
    (total large <= (1.25 *. total small) +. 7200.0)

let test_overhead_state_builder () =
  let state = Experiments.Overhead.synthetic_state ~seed:1 () in
  Alcotest.(check int) "30 waiting jobs" 30 (Core.Search_state.job_count state);
  let result = Core.Search.run Core.Search.Dds ~budget:1000 state in
  Alcotest.(check bool) "search runs within budget" true
    (result.Core.Search.nodes_visited <= 1000)

let test_registry_complete () =
  let ids = List.map (fun e -> e.Experiments.Registry.id) Experiments.Registry.paper in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " present") true
        (List.mem expected ids))
    [ "fig1"; "fig2"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8";
      "table3+4"; "overhead" ];
  Alcotest.(check bool) "find works" true
    (Experiments.Registry.find "fig4" <> None);
  Alcotest.(check bool) "unknown id" true
    (Experiments.Registry.find "nope" = None)

let test_fig1_runs () =
  (* fig1 is pure combinatorics: run it into a buffer and check shape *)
  let buffer = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buffer in
  (match Experiments.Registry.find "fig1" with
  | Some e -> e.Experiments.Registry.run fmt
  | None -> Alcotest.fail "fig1 missing");
  Format.pp_print_flush fmt ();
  let out = Buffer.contents buffer in
  Alcotest.(check bool) "mentions LDS iteration 1" true
    (Helpers.contains out "LDS iteration 1 (6 paths)");
  Alcotest.(check bool) "mentions DDS iteration 2" true
    (Helpers.contains out "DDS iteration 2 (8 paths)");
  Alcotest.(check bool) "prints the 4-job path count" true
    (Helpers.contains out "24")

let suite =
  [
    Alcotest.test_case "backfill trade-off (Sec 3.2)" `Slow
      test_backfill_tradeoff;
    Alcotest.test_case "FCFS zero excess by construction" `Slow
      test_fcfs_zero_excess_by_construction;
    Alcotest.test_case "DDS balances both goals" `Slow
      test_dds_balances_both_goals;
    Alcotest.test_case "DDS excess <= LXF" `Slow test_dds_excess_below_lxf;
    Alcotest.test_case "SJF starves long jobs" `Slow test_sjf_starves;
    Alcotest.test_case "budget scaling sane" `Slow
      test_budget_improves_objective_monotonically_enough;
    Alcotest.test_case "overhead state builder" `Quick
      test_overhead_state_builder;
    Alcotest.test_case "experiment registry" `Quick test_registry_complete;
    Alcotest.test_case "fig1 output shape" `Quick test_fig1_runs;
  ]
