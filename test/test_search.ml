(* Tests for Search_state and the LDS/DDS/DFS search algorithms. *)

open Core

let r_star (j : Workload.Job.t) = j.runtime

(* Build a search state over an empty or partially busy machine. *)
let make_state ?(now = 0.0) ?(capacity = 8) ?(releases = [])
    ?(bound = Bound.fixed_hours 1e6) ?backtrack ?on_place ~heuristic jobs =
  let profile = Cluster.Profile.of_running ~now ~capacity releases in
  let ordered = Branching.order heuristic ~now ~r_star jobs in
  let durations = Array.map r_star ordered in
  let thresholds = Bound.thresholds bound ~now ~r_star ordered in
  Search_state.create ?backtrack ?on_place ~now ~profile ~jobs:ordered
    ~durations ~thresholds ()

(* Brute force: evaluate every permutation with a fresh state. *)
let brute_force_best state =
  let n = Search_state.job_count state in
  let best = ref None in
  List.iter
    (fun path ->
      Search_state.reset state;
      List.iteri
        (fun depth job ->
          Search_state.place state ~depth ~job)
        path;
      let obj = Search_state.leaf_objective state in
      (match !best with
      | None -> best := Some obj
      | Some incumbent ->
          if Objective.is_better ~candidate:obj ~incumbent then
            best := Some obj);
      Search_state.reset state)
    (Tree_enum.all_paths Search.Dfs ~n);
  Option.get !best

(* --- Search_state unit tests --- *)

let test_place_semantics () =
  (* two 8-node jobs on an 8-node machine: second starts after first *)
  let jobs =
    [ Helpers.job ~id:0 ~nodes:8 ~runtime:100.0 ();
      Helpers.job ~id:1 ~submit:1.0 ~nodes:8 ~runtime:50.0 () ]
  in
  let state = make_state ~heuristic:Branching.Fcfs jobs in
  Search_state.place state ~depth:0 ~job:0;
  let s0 = Search_state.start_at state ~depth:0 in
  Search_state.place state ~depth:1 ~job:1;
  let s1 = Search_state.start_at state ~depth:1 in
  Alcotest.(check (float 1e-9)) "first starts now" 0.0 s0;
  Alcotest.(check (float 1e-9)) "second queued behind" 100.0 s1;
  Alcotest.(check int) "two nodes visited" 2 (Search_state.nodes_visited state);
  let leaf = Search_state.leaf_objective state in
  Alcotest.(check int) "objective counts both" 2 leaf.Objective.jobs

let test_place_order_changes_starts () =
  let jobs =
    [ Helpers.job ~id:0 ~nodes:8 ~runtime:100.0 ();
      Helpers.job ~id:1 ~submit:1.0 ~nodes:8 ~runtime:50.0 () ]
  in
  let state = make_state ~heuristic:Branching.Fcfs jobs in
  Search_state.place state ~depth:0 ~job:1;
  let s1 = Search_state.start_at state ~depth:0 in
  Search_state.place state ~depth:1 ~job:0;
  let s0 = Search_state.start_at state ~depth:1 in
  Alcotest.(check (float 1e-9)) "reversed: short first" 0.0 s1;
  Alcotest.(check (float 1e-9)) "long waits 50s" 50.0 s0

let test_backfill_within_path () =
  (* A later job on the path can still start now if it fits around the
     earlier placements (the paper's "order of consideration is not the
     order of starting"). *)
  let jobs =
    [ Helpers.job ~id:0 ~nodes:8 ~runtime:100.0 ();
      Helpers.job ~id:1 ~submit:1.0 ~nodes:8 ~runtime:50.0 ();
      Helpers.job ~id:2 ~submit:2.0 ~nodes:8 ~runtime:10.0 () ]
  in
  let state =
    make_state ~capacity:16 ~heuristic:Branching.Fcfs jobs
  in
  Search_state.place state ~depth:0 ~job:0;
  Search_state.place state ~depth:1 ~job:1;
  Search_state.place state ~depth:2 ~job:2;
  let s2 = Search_state.start_at state ~depth:2 in
  (* jobs 0 and 1 fill 16 nodes in [0,50); job 2 must wait for the
     first release at t=50 *)
  Alcotest.(check (float 1e-9)) "third waits for hole" 50.0 s2

let test_unplace_restores () =
  let jobs =
    [ Helpers.job ~id:0 ~nodes:4 (); Helpers.job ~id:1 ~submit:1.0 ~nodes:4 () ]
  in
  let state = make_state ~heuristic:Branching.Fcfs jobs in
  Search_state.place state ~depth:0 ~job:0;
  Search_state.place state ~depth:1 ~job:1;
  Search_state.unplace state ~depth:1;
  Alcotest.(check bool) "job 1 free again" false (Search_state.used state 1);
  Search_state.place state ~depth:1 ~job:1;
  let s1 = Search_state.start_at state ~depth:1 in
  Alcotest.(check (float 1e-9)) "same start on re-place" 0.0 s1

let test_nth_unused () =
  let jobs =
    List.init 3 (fun id -> Helpers.job ~id ~submit:(float_of_int id) ())
  in
  let state = make_state ~heuristic:Branching.Fcfs jobs in
  Search_state.place state ~depth:0 ~job:1;
  Alcotest.(check (option int)) "rank 0" (Some 0) (Search_state.nth_unused state 0);
  Alcotest.(check (option int)) "rank 1" (Some 2) (Search_state.nth_unused state 1);
  Alcotest.(check (option int)) "rank 2 exhausted" None
    (Search_state.nth_unused state 2)

let test_start_now_set () =
  let jobs =
    [ Helpers.job ~id:0 ~nodes:8 ~runtime:100.0 ();
      Helpers.job ~id:1 ~submit:1.0 ~nodes:8 ~runtime:50.0 () ]
  in
  let state = make_state ~heuristic:Branching.Fcfs jobs in
  let result = Search.run Search.Dfs ~budget:max_int state in
  let started =
    Search_state.start_now_set state ~order:result.Search.best_order
      ~starts:result.Search.best_starts
  in
  Alcotest.(check int) "exactly one starts now" 1 (List.length started)

(* --- Search algorithm tests --- *)

let random_jobs rng n =
  List.init n (fun id ->
      Helpers.job ~id
        ~submit:(Simcore.Rng.float rng 1000.0)
        ~nodes:(1 + Simcore.Rng.int rng 8)
        ~runtime:(60.0 +. Simcore.Rng.float rng 10000.0)
        ())

let random_releases rng =
  List.init (Simcore.Rng.int rng 3) (fun _ ->
      (1200.0 +. Simcore.Rng.float rng 5000.0, 1 + Simcore.Rng.int rng 3))

let exhaustive_equals_bruteforce algo seed =
  let rng = Simcore.Rng.create ~seed in
  let n = 2 + Simcore.Rng.int rng 4 in
  let jobs = random_jobs rng n in
  let releases = random_releases rng in
  let make () =
    make_state ~now:1100.0 ~releases ~bound:(Bound.fixed_hours 0.5)
      ~heuristic:Branching.Lxf jobs
  in
  let result = Search.run algo ~budget:max_int (make ()) in
  let brute = brute_force_best (make ()) in
  Objective.compare result.Search.best brute = 0 && result.Search.exhausted

let prop_dfs_optimal =
  QCheck.Test.make ~name:"exhaustive DFS = brute force" ~count:60
    QCheck.small_int
    (exhaustive_equals_bruteforce Search.Dfs)

let prop_lds_optimal =
  QCheck.Test.make ~name:"exhaustive LDS = brute force" ~count:60
    QCheck.small_int
    (exhaustive_equals_bruteforce Search.Lds)

let prop_dds_optimal =
  QCheck.Test.make ~name:"exhaustive DDS = brute force" ~count:60
    QCheck.small_int
    (exhaustive_equals_bruteforce Search.Dds)

let prop_lds_original_optimal =
  QCheck.Test.make ~name:"exhaustive original LDS = brute force" ~count:40
    QCheck.small_int
    (exhaustive_equals_bruteforce Search.Lds_original)

let prop_prune_preserves_best =
  QCheck.Test.make ~name:"branch-and-bound preserves the optimum" ~count:60
    QCheck.small_int
    (fun seed ->
      let rng = Simcore.Rng.create ~seed in
      let n = 2 + Simcore.Rng.int rng 4 in
      let jobs = random_jobs rng n in
      let make () =
        make_state ~now:1100.0 ~bound:(Bound.fixed_hours 0.5)
          ~heuristic:Branching.Lxf jobs
      in
      let plain = Search.run Search.Dds ~budget:max_int (make ()) in
      let pruned =
        Search.run ~prune:true Search.Dds ~budget:max_int (make ())
      in
      Objective.compare plain.Search.best pruned.Search.best = 0
      && pruned.Search.nodes_visited <= plain.Search.nodes_visited)

(* --- trail vs snapshot equivalence --- *)

(* Both backtracking strategies must be observationally identical: the
   same node sequence (depth, job, start triples, recorded through the
   [on_place] hook) and the same result record, for every algorithm
   and branching heuristic, exhaustive (n <= 5) or budget-truncated. *)
let run_instrumented ~algo ~heuristic ~backtrack ~budget ~releases jobs =
  let visits = ref [] in
  let state =
    make_state ~now:1100.0 ~releases ~bound:(Bound.fixed_hours 0.5) ~backtrack
      ~on_place:(fun ~depth ~job ~start ->
        visits := (depth, job, start) :: !visits)
      ~heuristic jobs
  in
  let result = Search.run algo ~budget state in
  (result, List.rev !visits)

let strategies_equivalent seed =
  let rng = Simcore.Rng.create ~seed in
  let n = 1 + Simcore.Rng.int rng 12 in
  let jobs = random_jobs rng n in
  let releases = random_releases rng in
  let budget =
    if n <= 5 then max_int else 200 + Simcore.Rng.int rng 1800
  in
  List.for_all
    (fun algo ->
      List.for_all
        (fun heuristic ->
          let rt, vt =
            run_instrumented ~algo ~heuristic
              ~backtrack:Search_state.Trail ~budget ~releases jobs
          in
          let rs, vs =
            run_instrumented ~algo ~heuristic
              ~backtrack:Search_state.Snapshot ~budget ~releases jobs
          in
          vt = vs && rt = rs)
        [ Branching.Fcfs; Branching.Lxf ])
    [ Search.Dfs; Search.Lds; Search.Lds_original; Search.Dds ]

let prop_trail_snapshot_equivalent =
  QCheck.Test.make
    ~name:"trail = snapshot (4 algorithms x 2 heuristics, n <= 12)"
    ~count:40 QCheck.small_int strategies_equivalent

let test_reset_after_budget_spent () =
  (* A budget abort unwinds through Budget_spent and Search.run resets
     the state; reusing that state (with a cumulative budget, since the
     node counter survives reset) must behave exactly like a fresh
     one.  Regression: reset used to leave starts and partial
     objectives stale. *)
  let rng = Simcore.Rng.create ~seed:11 in
  let jobs = random_jobs rng 8 in
  let reused = make_state ~heuristic:Branching.Lxf jobs in
  let r1 = Search.run Search.Dds ~budget:100 reused in
  Alcotest.(check bool) "first run aborted" false r1.Search.exhausted;
  for depth = 0 to 7 do
    Alcotest.(check int) "chosen cleared" (-1)
      (Search_state.chosen reused ~depth);
    Alcotest.(check (float 1e-9)) "start cleared" 0.0
      (Search_state.start_at reused ~depth);
    let partial = Search_state.partial reused ~depth in
    Alcotest.(check (float 1e-9)) "partial excess cleared" 0.0
      partial.Objective.excess;
    Alcotest.(check (float 1e-9)) "partial secondary cleared" 0.0
      partial.Objective.secondary_sum
  done;
  Alcotest.(check int) "unused list rebuilt" 0 (Search_state.first_unused reused);
  let r2 = Search.run Search.Dds ~budget:200 reused in
  let control =
    Search.run Search.Dds ~budget:100 (make_state ~heuristic:Branching.Lxf jobs)
  in
  Alcotest.(check int) "same nodes as a fresh state" 200
    r2.Search.nodes_visited;
  Alcotest.(check int) "same leaves as a fresh state"
    control.Search.leaves_evaluated r2.Search.leaves_evaluated;
  Alcotest.(check bool) "same best order as a fresh state" true
    (r2.Search.best_order = control.Search.best_order);
  Alcotest.(check int) "same objective as a fresh state" 0
    (Objective.compare r2.Search.best control.Search.best)

let test_budget_enforced () =
  let rng = Simcore.Rng.create ~seed:3 in
  let jobs = random_jobs rng 7 in
  let state = make_state ~heuristic:Branching.Lxf jobs in
  let result = Search.run Search.Dds ~budget:50 state in
  Alcotest.(check bool) "stops at the budget" true
    (result.Search.nodes_visited <= 50);
  Alcotest.(check bool) "not exhausted" false result.Search.exhausted

let test_iteration0_exempt_from_budget () =
  let rng = Simcore.Rng.create ~seed:4 in
  let jobs = random_jobs rng 6 in
  let state = make_state ~heuristic:Branching.Fcfs jobs in
  (* budget smaller than one full path: the heuristic path must still
     be evaluated *)
  let result = Search.run Search.Dds ~budget:2 state in
  Alcotest.(check int) "heuristic path evaluated" 1
    result.Search.leaves_evaluated;
  Alcotest.(check int) "best order complete" 6
    (Array.length result.Search.best_order)

let test_exhausted_leaf_count () =
  let rng = Simcore.Rng.create ~seed:5 in
  let jobs = random_jobs rng 4 in
  List.iter
    (fun (algo, expected) ->
      let state = make_state ~heuristic:Branching.Fcfs jobs in
      let result = Search.run algo ~budget:max_int state in
      Alcotest.(check int)
        (Search.algorithm_name algo ^ " visits all leaves")
        expected result.Search.leaves_evaluated)
    [ (Search.Lds, 24); (Search.Dds, 24); (Search.Dfs, 25);
      (* original LDS revisits: 1 + (<=1: 7) + (<=2: 18) + (<=3: 24) *)
      (Search.Lds_original, 50) ]
(* DFS re-walks the iteration-0 heuristic path, hence 24 + 1. *)

let test_search_deterministic () =
  let rng = Simcore.Rng.create ~seed:6 in
  let jobs = random_jobs rng 8 in
  let run () =
    let state = make_state ~heuristic:Branching.Lxf jobs in
    Search.run Search.Dds ~budget:500 state
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same nodes" a.Search.nodes_visited b.Search.nodes_visited;
  Alcotest.(check int) "same leaves" a.Search.leaves_evaluated
    b.Search.leaves_evaluated;
  Alcotest.(check bool) "same best order" true
    (a.Search.best_order = b.Search.best_order);
  Alcotest.(check int) "same objective" 0
    (Objective.compare a.Search.best b.Search.best)

let test_empty_state_rejected () =
  let state = make_state ~heuristic:Branching.Fcfs [] in
  Alcotest.check_raises "no jobs" (Invalid_argument "Search.run: no waiting jobs")
    (fun () -> ignore (Search.run Search.Dds ~budget:10 state))

let test_dds_beats_lds_to_root_discrepancies () =
  (* With a tiny budget, DDS explores root discrepancies that LDS only
     reaches after exhausting deeper single discrepancies; build a case
     where the improvement hides behind a root discrepancy. *)
  let long = Helpers.job ~id:0 ~submit:0.0 ~nodes:8 ~runtime:10000.0 () in
  let jobs =
    long
    :: List.init 5 (fun i ->
           Helpers.job ~id:(i + 1)
             ~submit:(float_of_int (i + 1))
             ~nodes:1 ~runtime:60.0 ())
  in
  let state () =
    make_state ~now:10.0 ~capacity:8 ~bound:(Bound.Fixed 0.0)
      ~heuristic:Branching.Fcfs jobs
  in
  (* budget: heuristic path (6) + one more path (<= 6 nodes) *)
  let dds = Search.run Search.Dds ~budget:13 (state ()) in
  let lds = Search.run Search.Lds ~budget:13 (state ()) in
  Alcotest.(check bool) "DDS at least as good under tiny budget" true
    (Objective.compare dds.Search.best lds.Search.best <= 0)

let suite =
  [
    Alcotest.test_case "place semantics" `Quick test_place_semantics;
    Alcotest.test_case "order changes starts" `Quick
      test_place_order_changes_starts;
    Alcotest.test_case "backfill within path" `Quick test_backfill_within_path;
    Alcotest.test_case "unplace restores" `Quick test_unplace_restores;
    Alcotest.test_case "nth_unused ranks" `Quick test_nth_unused;
    Alcotest.test_case "start_now_set" `Quick test_start_now_set;
    QCheck_alcotest.to_alcotest prop_dfs_optimal;
    QCheck_alcotest.to_alcotest prop_lds_optimal;
    QCheck_alcotest.to_alcotest prop_dds_optimal;
    QCheck_alcotest.to_alcotest prop_lds_original_optimal;
    QCheck_alcotest.to_alcotest prop_prune_preserves_best;
    QCheck_alcotest.to_alcotest prop_trail_snapshot_equivalent;
    Alcotest.test_case "reset after budget abort" `Quick
      test_reset_after_budget_spent;
    Alcotest.test_case "budget enforced" `Quick test_budget_enforced;
    Alcotest.test_case "iteration 0 exempt" `Quick
      test_iteration0_exempt_from_budget;
    Alcotest.test_case "exhausted leaf counts" `Quick test_exhausted_leaf_count;
    Alcotest.test_case "search deterministic" `Quick test_search_deterministic;
    Alcotest.test_case "empty state rejected" `Quick test_empty_state_rejected;
    Alcotest.test_case "DDS vs LDS under tiny budget" `Quick
      test_dds_beats_lds_to_root_discrepancies;
  ]
