(* Standalone validator for observability artifacts (@trace-smoke and
   @report-smoke).

   No JSON library in the test stack, so this checks the formats the
   exporters actually emit.  Dispatch is on content: a decision-trace
   JSONL (Sim.Decision_log) is run headers each followed by decision
   lines; a run-series JSONL (Sim.Series) is run headers each followed
   by downsampled sample lines; a Chrome file is one
   {"traceEvents":[...]} document; an HTML report (Sim.Report) must be
   a self-contained zero-JS page; an OpenMetrics file
   (Simcore.Metrics) must expose well-formed families ending in
   "# EOF".  Exit 0 on success, 1 with a message on the first
   violation. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

(* First occurrence of ["key":] in [line], position just past it. *)
let find_field line key =
  let pat = Printf.sprintf "\"%s\":" key in
  let n = String.length line and m = String.length pat in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = pat then Some (i + m)
    else go (i + 1)
  in
  go 0

let field_raw ~file ~lineno line key =
  match find_field line key with
  | None -> fail "%s:%d: missing field %S" file lineno key
  | Some i ->
      let n = String.length line in
      let stop = ref i in
      while
        !stop < n && (match line.[!stop] with ',' | '}' -> false | _ -> true)
      do
        incr stop
      done;
      String.sub line i (!stop - i)

let field_int ~file ~lineno line key =
  let raw = field_raw ~file ~lineno line key in
  match int_of_string_opt raw with
  | Some v -> v
  | None -> fail "%s:%d: field %S is not an int: %s" file lineno key raw

let field_float ~file ~lineno line key =
  let raw = field_raw ~file ~lineno line key in
  match float_of_string_opt raw with
  | Some v -> v
  | None -> fail "%s:%d: field %S is not a number: %s" file lineno key raw

let field_bool ~file ~lineno line key =
  match field_raw ~file ~lineno line key with
  | "true" -> true
  | "false" -> false
  | raw -> fail "%s:%d: field %S is not a bool: %s" file lineno key raw

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let read_lines file =
  let ic = try open_in file with Sys_error m -> fail "%s" m in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

(* --- JSONL (decision_trace/1) --- *)

let validate_jsonl file =
  let lines = read_lines file in
  if lines = [] then fail "%s: empty trace" file;
  (* per-run accumulator: expected decision count and running checks *)
  let runs = ref 0 and decisions = ref 0 in
  let expect = ref 0 (* decision lines owed by the current header *) in
  let first_seq = ref 0 and next_seq = ref 0 and last_t = ref neg_infinity in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if not (starts_with "{" line && String.length line > 1) then
        fail "%s:%d: not a JSON object line" file lineno;
      match field_raw ~file ~lineno line "type" with
      | "\"run\"" ->
          if !expect > 0 then
            fail "%s:%d: new run header but %d decisions still owed" file
              lineno !expect;
          let schema = field_raw ~file ~lineno line "schema" in
          if schema <> Printf.sprintf "%S" Sim.Decision_log.schema then
            fail "%s:%d: schema %s, want %S" file lineno schema
              Sim.Decision_log.schema;
          let recorded = field_int ~file ~lineno line "decisions" in
          let retained = field_int ~file ~lineno line "retained" in
          let dropped = field_int ~file ~lineno line "dropped" in
          if recorded <> retained + dropped then
            fail "%s:%d: decisions %d <> retained %d + dropped %d" file
              lineno recorded retained dropped;
          expect := retained;
          first_seq := dropped;
          next_seq := dropped;
          last_t := neg_infinity;
          incr runs
      | "\"decision\"" ->
          if !expect = 0 then
            fail "%s:%d: decision line without a run header" file lineno;
          decr expect;
          incr decisions;
          let seq = field_int ~file ~lineno line "seq" in
          if seq <> !next_seq then
            fail "%s:%d: seq %d, want %d" file lineno seq !next_seq;
          incr next_seq;
          let t = field_float ~file ~lineno line "t" in
          if t < !last_t then
            fail "%s:%d: time went backwards (%.3f after %.3f)" file lineno
              t !last_t;
          last_t := t;
          let nonneg k =
            if field_int ~file ~lineno line k < 0 then
              fail "%s:%d: negative %S" file lineno k
          in
          List.iter nonneg
            [ "queue"; "started"; "nodes"; "leaves"; "iters"; "budget";
              "improvements" ];
          let searched = field_bool ~file ~lineno line "searched" in
          let budget = field_int ~file ~lineno line "budget" in
          let nodes = field_int ~file ~lineno line "nodes" in
          let improvements = field_int ~file ~lineno line "improvements" in
          if budget > 0 && not searched then
            fail "%s:%d: budget %d on an unsearched decision" file lineno
              budget;
          if budget > 0 && nodes < 1 then
            fail "%s:%d: searched under budget %d but visited no node" file
              lineno budget;
          if budget > 0 && improvements < 1 then
            fail
              "%s:%d: searched decision without the heuristic incumbent"
              file lineno;
          ignore (field_bool ~file ~lineno line "exhausted")
      | other -> fail "%s:%d: unknown line type %s" file lineno other)
    lines;
  if !expect > 0 then
    fail "%s: truncated: last run owes %d decisions" file !expect;
  Printf.printf "%s: OK (%d runs, %d decisions)\n" file !runs !decisions

(* --- JSONL (run_series/1) --- *)

let validate_series_jsonl file =
  let lines = read_lines file in
  if lines = [] then fail "%s: empty series export" file;
  let runs = ref 0 and total_samples = ref 0 in
  let expect = ref 0 (* sample lines owed by the current header *) in
  let next_i = ref 0 and last_t = ref neg_infinity in
  let stride = ref 0 and observed = ref 0 and committed = ref 0 in
  let last_excess = ref 0.0 and excess_total = ref 0.0 in
  let finish_run lineno =
    if !expect > 0 then
      fail "%s:%d: truncated: run owes %d samples" file lineno !expect;
    if !runs > 0 then begin
      if !observed - !committed >= !stride then
        fail "%s:%d: %d observations never committed (stride %d)" file
          lineno (!observed - !committed) !stride;
      if !last_excess > !excess_total +. 0.002 then
        fail "%s:%d: sample excess %.3f exceeds run total %.3f" file lineno
          !last_excess !excess_total
    end
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if not (starts_with "{" line && String.length line > 1) then
        fail "%s:%d: not a JSON object line" file lineno;
      match field_raw ~file ~lineno line "type" with
      | "\"run\"" ->
          finish_run lineno;
          let schema = field_raw ~file ~lineno line "schema" in
          if schema <> Printf.sprintf "%S" Sim.Series.schema then
            fail "%s:%d: schema %s, want %S" file lineno schema
              Sim.Series.schema;
          let samples = field_int ~file ~lineno line "samples" in
          let capacity = field_int ~file ~lineno line "capacity" in
          if samples > capacity then
            fail "%s:%d: %d samples exceed capacity %d" file lineno samples
              capacity;
          observed := field_int ~file ~lineno line "observed";
          stride := field_int ~file ~lineno line "stride";
          if !stride < 1 then fail "%s:%d: stride < 1" file lineno;
          excess_total := field_float ~file ~lineno line "excess_total";
          if !excess_total < 0.0 then
            fail "%s:%d: negative excess_total" file lineno;
          expect := samples;
          next_i := 0;
          committed := 0;
          last_t := neg_infinity;
          last_excess := 0.0;
          incr runs
      | "\"sample\"" ->
          if !runs = 0 then
            fail "%s:%d: sample line without a run header" file lineno;
          if !expect = 0 then
            fail "%s:%d: more samples than the header declared" file lineno;
          decr expect;
          incr total_samples;
          let idx = field_int ~file ~lineno line "i" in
          if idx <> !next_i then
            fail "%s:%d: sample index %d, want %d" file lineno idx !next_i;
          incr next_i;
          let t = field_float ~file ~lineno line "t" in
          if t < !last_t then
            fail "%s:%d: time went backwards (%.3f after %.3f)" file lineno
              t !last_t;
          last_t := t;
          let span = field_int ~file ~lineno line "span" in
          if span <> !stride then
            fail "%s:%d: span %d, want stride %d" file lineno span !stride;
          committed := !committed + span;
          if !committed > !observed then
            fail "%s:%d: committed spans exceed observed %d" file lineno
              !observed;
          let triple key =
            let v = field_int ~file ~lineno line key in
            let lo = field_int ~file ~lineno line (key ^ "_min") in
            let hi = field_int ~file ~lineno line (key ^ "_max") in
            if not (lo <= v && v <= hi && lo >= 0) then
              fail "%s:%d: %s envelope violated (%d <= %d <= %d)" file
                lineno key lo v hi
          in
          List.iter triple [ "busy"; "queue"; "demand"; "running" ];
          let w = field_float ~file ~lineno line "max_wait" in
          let wlo = field_float ~file ~lineno line "max_wait_min" in
          let whi = field_float ~file ~lineno line "max_wait_max" in
          if not (wlo <= w && w <= whi && wlo >= 0.0) then
            fail "%s:%d: max_wait envelope violated" file lineno;
          let excess = field_float ~file ~lineno line "excess" in
          if excess < !last_excess then
            fail "%s:%d: cumulative excess decreased" file lineno;
          last_excess := excess
      | other -> fail "%s:%d: unknown line type %s" file lineno other)
    lines;
  finish_run (List.length lines);
  if !runs = 0 then fail "%s: no run headers" file;
  Printf.printf "%s: OK (%d runs, %d samples)\n" file !runs !total_samples

(* --- Chrome trace_event document --- *)

let validate_chrome file =
  let lines = read_lines file in
  (match lines with
  | first :: _ when starts_with "{\"traceEvents\":[" first -> ()
  | _ -> fail "%s: not a traceEvents document" file);
  let events = ref 0 in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if starts_with "{\"name\":" line then begin
        incr events;
        match field_raw ~file ~lineno line "ph" with
        | "\"X\"" ->
            if field_float ~file ~lineno line "dur" < 0.0 then
              fail "%s:%d: negative span duration" file lineno
        | "\"M\"" | "\"C\"" -> ()
        | ph -> fail "%s:%d: unexpected phase %s" file lineno ph
      end)
    lines;
  if !events = 0 then fail "%s: no trace events" file;
  Printf.printf "%s: OK (%d events)\n" file !events

(* --- HTML run report --- *)

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  go 0

let count_occurrences hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i acc =
    if i + m > n then acc
    else if String.sub hay i m = needle then go (i + m) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let read_all file =
  let lines = read_lines file in
  String.concat "\n" lines

let validate_html file =
  let doc = read_all file in
  if not (starts_with "<!doctype html>" doc) then
    fail "%s: missing html doctype" file;
  if not (contains doc "</html>") then fail "%s: unterminated document" file;
  if contains doc "<script" then
    fail "%s: report pages must not contain JavaScript" file;
  if contains doc "href=\"http" || contains doc "src=" then
    fail "%s: report pages must be self-contained (external reference)" file;
  if not (contains doc "prefers-color-scheme: dark") then
    fail "%s: missing dark-mode palette" file;
  let svgs = count_occurrences doc "<svg" in
  if contains doc "class=\"chart\"" then begin
    (* a run-health page: six signal charts, each with at least a line *)
    if svgs < 6 then fail "%s: %d charts, want >= 6" file svgs;
    if count_occurrences doc "polyline class=\"line\"" < 6 then
      fail "%s: charts without data lines" file;
    if not (contains doc "<table") then fail "%s: missing summary table" file
  end
  else if not (contains doc "<table") && svgs = 0 then
    fail "%s: neither charts nor tables" file;
  Printf.printf "%s: OK (%d charts)\n" file svgs

(* --- OpenMetrics exposition --- *)

let validate_openmetrics file =
  let lines = read_lines file in
  (match List.rev lines with
  | "# EOF" :: _ -> ()
  | _ -> fail "%s: exposition must end with # EOF" file);
  let families = ref 0 and samples = ref 0 in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if line = "" then ()
      else if starts_with "# TYPE " line then begin
        incr families;
        match List.rev (String.split_on_char ' ' line) with
        | ("counter" | "gauge" | "histogram") :: _ -> ()
        | kind :: _ -> fail "%s:%d: unknown metric type %s" file lineno kind
        | [] -> assert false
      end
      else if starts_with "# HELP " line || line = "# EOF" then ()
      else if starts_with "#" line then
        fail "%s:%d: malformed comment line" file lineno
      else begin
        (* sample line: name[{labels}] value *)
        incr samples;
        match String.rindex_opt line ' ' with
        | None -> fail "%s:%d: sample line without a value" file lineno
        | Some sp -> (
            let v = String.sub line (sp + 1) (String.length line - sp - 1) in
            match float_of_string_opt v with
            | Some f when f >= 0.0 || f = neg_infinity -> ()
            | Some _ -> fail "%s:%d: negative sample value" file lineno
            | None -> fail "%s:%d: unparsable value %s" file lineno v)
      end)
    lines;
  if !families = 0 then fail "%s: no metric families" file;
  if !samples = 0 then fail "%s: no samples" file;
  Printf.printf "%s: OK (%d families, %d samples)\n" file !families !samples

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if args = [] then
    fail "usage: validate_trace.exe FILE.jsonl|FILE.json|FILE.html|FILE.om ...";
  List.iter
    (fun file ->
      let head =
        let ic = try open_in file with Sys_error m -> fail "%s" m in
        let n = min 64 (in_channel_length ic) in
        let s = really_input_string ic n in
        close_in ic;
        s
      in
      if starts_with "{\"traceEvents\"" head then validate_chrome file
      else if starts_with "<!doctype" head then validate_html file
      else if starts_with "#" head then validate_openmetrics file
      else if contains head "\"schema\":\"run_series/" then
        validate_series_jsonl file
      else validate_jsonl file)
    args
