(* Standalone validator for decision-trace artifacts (@trace-smoke).

   No JSON library in the test stack, so this checks the line format
   the exporters actually emit (Sim.Decision_log): a JSONL file is a
   sequence of run headers each followed by its decision lines, with
   counts, sequence numbers and timestamps consistent; a Chrome file is
   one {"traceEvents":[...]} document.  Exit 0 on success, 1 with a
   message on the first violation. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

(* First occurrence of ["key":] in [line], position just past it. *)
let find_field line key =
  let pat = Printf.sprintf "\"%s\":" key in
  let n = String.length line and m = String.length pat in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = pat then Some (i + m)
    else go (i + 1)
  in
  go 0

let field_raw ~file ~lineno line key =
  match find_field line key with
  | None -> fail "%s:%d: missing field %S" file lineno key
  | Some i ->
      let n = String.length line in
      let stop = ref i in
      while
        !stop < n && (match line.[!stop] with ',' | '}' -> false | _ -> true)
      do
        incr stop
      done;
      String.sub line i (!stop - i)

let field_int ~file ~lineno line key =
  let raw = field_raw ~file ~lineno line key in
  match int_of_string_opt raw with
  | Some v -> v
  | None -> fail "%s:%d: field %S is not an int: %s" file lineno key raw

let field_float ~file ~lineno line key =
  let raw = field_raw ~file ~lineno line key in
  match float_of_string_opt raw with
  | Some v -> v
  | None -> fail "%s:%d: field %S is not a number: %s" file lineno key raw

let field_bool ~file ~lineno line key =
  match field_raw ~file ~lineno line key with
  | "true" -> true
  | "false" -> false
  | raw -> fail "%s:%d: field %S is not a bool: %s" file lineno key raw

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let read_lines file =
  let ic = try open_in file with Sys_error m -> fail "%s" m in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

(* --- JSONL (decision_trace/1) --- *)

let validate_jsonl file =
  let lines = read_lines file in
  if lines = [] then fail "%s: empty trace" file;
  (* per-run accumulator: expected decision count and running checks *)
  let runs = ref 0 and decisions = ref 0 in
  let expect = ref 0 (* decision lines owed by the current header *) in
  let first_seq = ref 0 and next_seq = ref 0 and last_t = ref neg_infinity in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if not (starts_with "{" line && String.length line > 1) then
        fail "%s:%d: not a JSON object line" file lineno;
      match field_raw ~file ~lineno line "type" with
      | "\"run\"" ->
          if !expect > 0 then
            fail "%s:%d: new run header but %d decisions still owed" file
              lineno !expect;
          let schema = field_raw ~file ~lineno line "schema" in
          if schema <> Printf.sprintf "%S" Sim.Decision_log.schema then
            fail "%s:%d: schema %s, want %S" file lineno schema
              Sim.Decision_log.schema;
          let recorded = field_int ~file ~lineno line "decisions" in
          let retained = field_int ~file ~lineno line "retained" in
          let dropped = field_int ~file ~lineno line "dropped" in
          if recorded <> retained + dropped then
            fail "%s:%d: decisions %d <> retained %d + dropped %d" file
              lineno recorded retained dropped;
          expect := retained;
          first_seq := dropped;
          next_seq := dropped;
          last_t := neg_infinity;
          incr runs
      | "\"decision\"" ->
          if !expect = 0 then
            fail "%s:%d: decision line without a run header" file lineno;
          decr expect;
          incr decisions;
          let seq = field_int ~file ~lineno line "seq" in
          if seq <> !next_seq then
            fail "%s:%d: seq %d, want %d" file lineno seq !next_seq;
          incr next_seq;
          let t = field_float ~file ~lineno line "t" in
          if t < !last_t then
            fail "%s:%d: time went backwards (%.3f after %.3f)" file lineno
              t !last_t;
          last_t := t;
          let nonneg k =
            if field_int ~file ~lineno line k < 0 then
              fail "%s:%d: negative %S" file lineno k
          in
          List.iter nonneg
            [ "queue"; "started"; "nodes"; "leaves"; "iters"; "budget";
              "improvements" ];
          let searched = field_bool ~file ~lineno line "searched" in
          let budget = field_int ~file ~lineno line "budget" in
          let nodes = field_int ~file ~lineno line "nodes" in
          let improvements = field_int ~file ~lineno line "improvements" in
          if budget > 0 && not searched then
            fail "%s:%d: budget %d on an unsearched decision" file lineno
              budget;
          if budget > 0 && nodes < 1 then
            fail "%s:%d: searched under budget %d but visited no node" file
              lineno budget;
          if budget > 0 && improvements < 1 then
            fail
              "%s:%d: searched decision without the heuristic incumbent"
              file lineno;
          ignore (field_bool ~file ~lineno line "exhausted")
      | other -> fail "%s:%d: unknown line type %s" file lineno other)
    lines;
  if !expect > 0 then
    fail "%s: truncated: last run owes %d decisions" file !expect;
  Printf.printf "%s: OK (%d runs, %d decisions)\n" file !runs !decisions

(* --- Chrome trace_event document --- *)

let validate_chrome file =
  let lines = read_lines file in
  (match lines with
  | first :: _ when starts_with "{\"traceEvents\":[" first -> ()
  | _ -> fail "%s: not a traceEvents document" file);
  let events = ref 0 in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if starts_with "{\"name\":" line then begin
        incr events;
        match field_raw ~file ~lineno line "ph" with
        | "\"X\"" ->
            if field_float ~file ~lineno line "dur" < 0.0 then
              fail "%s:%d: negative span duration" file lineno
        | "\"M\"" | "\"C\"" -> ()
        | ph -> fail "%s:%d: unexpected phase %s" file lineno ph
      end)
    lines;
  if !events = 0 then fail "%s: no trace events" file;
  Printf.printf "%s: OK (%d events)\n" file !events

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if args = [] then fail "usage: validate_trace.exe FILE.jsonl|FILE.json ...";
  List.iter
    (fun file ->
      let head =
        let ic = try open_in file with Sys_error m -> fail "%s" m in
        let n = min 16 (in_channel_length ic) in
        let s = really_input_string ic n in
        close_in ic;
        s
      in
      if starts_with "{\"traceEvents\"" head then validate_chrome file
      else validate_jsonl file)
    args
