(* Run-health observability: the Simcore.Metrics registry (switch
   semantics, zero allocation per observation, OpenMetrics exposition),
   the Sim.Series bounded sampler (deterministic halving invariants,
   engine integration, pool-width independence of exports) and the
   Timeline min/max accessors they report through. *)

module M = Simcore.Metrics
module TL = Simcore.Stats.Timeline

(* --- Timeline min/max --- *)

let test_timeline_min_max () =
  let tl = TL.create ~start:0.0 in
  Alcotest.(check (float 0.0)) "empty min" 0.0 (TL.min_value tl ~upto:10.0);
  Alcotest.(check (float 0.0)) "empty max" 0.0 (TL.max_value tl ~upto:10.0);
  TL.record tl ~now:0.0 ~value:5.0;
  TL.record tl ~now:10.0 ~value:1.0;
  TL.record tl ~now:20.0 ~value:9.0;
  (* value 9 has held for no time yet: extremes cover [0, 20] *)
  Alcotest.(check (float 1e-9)) "min over held spans" 1.0
    (TL.min_value tl ~upto:20.0);
  Alcotest.(check (float 1e-9)) "max over held spans" 5.0
    (TL.max_value tl ~upto:20.0);
  (* extend past the last step: the newest value now counts *)
  Alcotest.(check (float 1e-9)) "max past last step" 9.0
    (TL.max_value tl ~upto:25.0);
  Alcotest.(check (float 1e-9)) "min past last step" 1.0
    (TL.min_value tl ~upto:25.0);
  (* consistency with the time-weighted average *)
  let avg = TL.average tl ~upto:25.0 in
  Alcotest.(check bool) "min <= avg <= max" true
    (1.0 <= avg && avg <= 9.0)

let test_timeline_same_instant () =
  let tl = TL.create ~start:0.0 in
  (* same-instant rewrites replace, they never count as held values *)
  TL.record tl ~now:5.0 ~value:100.0;
  TL.record tl ~now:5.0 ~value:2.0;
  TL.record tl ~now:15.0 ~value:3.0;
  Alcotest.(check (float 1e-9)) "overwritten value never held" 2.0
    (TL.max_value tl ~upto:15.0);
  Alcotest.(check (float 1e-9)) "min before first step is initial 0" 0.0
    (TL.min_value tl ~upto:15.0)

(* --- Metrics registry --- *)

let test_metrics_basics () =
  let reg = M.create ~enabled:true () in
  let c = M.counter reg "nodes" ~help:"nodes visited" in
  let g = M.gauge reg "queue" in
  let h = M.histogram reg "latency" in
  M.incr c;
  M.add c 41;
  Alcotest.(check int) "counter" 42 (M.counter_value c);
  M.set g 3.0;
  M.set g 7.5;
  Alcotest.(check (float 0.0)) "gauge last write wins" 7.5 (M.gauge_value g);
  List.iter (M.observe h) [ 1; 2; 4; 1000 ];
  Alcotest.(check int) "histogram count" 4 (M.histogram_count h);
  Alcotest.(check int) "histogram total" 1007 (M.histogram_total h);
  Alcotest.(check bool) "p50 sane" true (M.histogram_percentile h 50.0 >= 1.0)

let test_metrics_switch () =
  let reg = M.create () in
  Alcotest.(check bool) "off by default" false (M.enabled reg);
  let c = M.counter reg "c" in
  let g = M.gauge reg "g" in
  let h = M.histogram reg "h" in
  M.incr c;
  M.set g 9.0;
  M.observe h 5;
  Alcotest.(check int) "counter off = no-op" 0 (M.counter_value c);
  Alcotest.(check (float 0.0)) "gauge off = no-op" 0.0 (M.gauge_value g);
  Alcotest.(check int) "histogram off = no-op" 0 (M.histogram_count h);
  M.set_enabled reg true;
  M.incr c;
  Alcotest.(check int) "on after flip" 1 (M.counter_value c);
  M.set_enabled reg false;
  M.incr c;
  Alcotest.(check int) "frozen, not cleared" 1 (M.counter_value c)

let test_metrics_names () =
  let reg = M.create () in
  let _ = M.counter reg "ok_name:x" in
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Metrics: duplicate metric name \"ok_name:x\"")
    (fun () -> ignore (M.counter reg "ok_name:x"));
  Alcotest.check_raises "invalid charset"
    (Invalid_argument "Metrics: invalid metric name \"bad name\"")
    (fun () -> ignore (M.gauge reg "bad name"));
  Alcotest.check_raises "leading digit"
    (Invalid_argument "Metrics: invalid metric name \"1bad\"")
    (fun () -> ignore (M.histogram reg "1bad"))

(* The section-7 contract, both halves: a disabled registry's
   recording calls allocate nothing (pure load+branch), and an enabled
   registry records into preallocated storage — also zero words per
   observation. *)
let metrics_alloc_words ~enabled =
  let reg = M.create ~enabled () in
  let c = M.counter reg "c" in
  let g = M.gauge reg "g" in
  let h = M.histogram reg "h" in
  let burn () =
    for i = 1 to 1000 do
      M.incr c;
      M.add c i;
      M.set g 42.5;
      M.observe h i
    done
  in
  burn ();
  (* warm-up *)
  let before = Gc.minor_words () in
  burn ();
  Gc.minor_words () -. before

let test_metrics_off_zero_alloc () =
  Alcotest.(check (float 0.0)) "off adds 0 minor words" 0.0
    (metrics_alloc_words ~enabled:false)

let test_metrics_on_zero_alloc () =
  Alcotest.(check (float 0.0)) "on adds 0 minor words per observation" 0.0
    (metrics_alloc_words ~enabled:true)

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  go 0

let test_openmetrics_exposition () =
  let reg = M.create ~enabled:true () in
  let c = M.counter reg "jobs" ~help:"jobs started" in
  let g = M.gauge reg "queue" in
  let h = M.histogram reg "wait" in
  M.add c 3;
  M.set g 17.0;
  List.iter (M.observe h) [ 1; 2; 1000 ];
  let reg2 = M.create ~enabled:true () in
  let c2 = M.counter reg2 "search_nodes" in
  M.add c2 5;
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  M.pp_openmetrics fmt [ reg; reg2 ];
  Format.pp_print_flush fmt ();
  let s = Buffer.contents buf in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true
        (contains s needle))
    [
      "# TYPE jobs counter"; "# HELP jobs jobs started"; "jobs_total 3";
      "# TYPE queue gauge"; "queue 17";
      "# TYPE wait histogram"; "wait_count 3"; "wait_sum 1003";
      "le=\"+Inf\"} 3";
      "# TYPE search_nodes counter"; "search_nodes_total 5";
    ];
  (* cumulative buckets end at the count, document ends with EOF *)
  Alcotest.(check bool) "ends with # EOF" true
    (let suffix = "# EOF\n" in
     String.length s >= String.length suffix
     && String.sub s (String.length s - String.length suffix)
          (String.length suffix)
        = suffix)

(* --- Series: deterministic bounded downsampling --- *)

(* Reference model: observation i of a generated run. *)
type obs = { ot : float; ob : int; oq : int; od : int; orn : int; ow : float }

let feed ?(capacity = 8) obs_list =
  let s = Sim.Series.create ~capacity ~policy:"t" () in
  List.iter
    (fun o ->
      Sim.Series.observe s ~now:o.ot ~busy:o.ob ~queue:o.oq ~demand:o.od
        ~running:o.orn ~max_wait:o.ow)
    obs_list;
  s

let obs_of_ints ints =
  List.mapi
    (fun i (a, b, c, d) ->
      {
        ot = float_of_int (i * 10);
        ob = a mod 129;
        oq = b mod 50;
        od = c mod 600;
        orn = d mod 30;
        ow = float_of_int ((a + b) mod 7200);
      })
    ints

(* Every committed sample must summarize exactly its stride-sized slice
   of the observation sequence: instantaneous values from the slice's
   last observation, envelope over the whole slice. *)
let check_series_against_model obs_list s =
  let obs = Array.of_list obs_list in
  let samples = Sim.Series.samples s in
  let stride = Sim.Series.stride s in
  let ok = ref true in
  let check b = if not b then ok := false in
  check (List.length samples <= Sim.Series.capacity s);
  check (Sim.Series.observed s = Array.length obs);
  let committed = List.fold_left (fun a p -> a + p.Sim.Series.span) 0 samples in
  check (committed <= Array.length obs);
  check (Array.length obs - committed < stride);
  let last_t = ref neg_infinity in
  List.iteri
    (fun j p ->
      check (p.Sim.Series.span = stride);
      check (p.Sim.Series.t >= !last_t);
      last_t := p.Sim.Series.t;
      let first = j * stride in
      let last = first + stride - 1 in
      let slice = Array.sub obs first (last - first + 1) in
      let last_o = slice.(Array.length slice - 1) in
      check (p.Sim.Series.t = last_o.ot);
      check (p.Sim.Series.busy = last_o.ob);
      check (p.Sim.Series.queue = last_o.oq);
      check (p.Sim.Series.demand = last_o.od);
      check (p.Sim.Series.running = last_o.orn);
      check (p.Sim.Series.max_wait = last_o.ow);
      let fold f init g =
        Array.fold_left (fun acc o -> f acc (g o)) init slice
      in
      check (p.Sim.Series.busy_min = fold min max_int (fun o -> o.ob));
      check (p.Sim.Series.busy_max = fold max min_int (fun o -> o.ob));
      check (p.Sim.Series.queue_min = fold min max_int (fun o -> o.oq));
      check (p.Sim.Series.queue_max = fold max min_int (fun o -> o.oq));
      check (p.Sim.Series.demand_min = fold min max_int (fun o -> o.od));
      check (p.Sim.Series.demand_max = fold max min_int (fun o -> o.od));
      check (p.Sim.Series.running_min = fold min max_int (fun o -> o.orn));
      check (p.Sim.Series.running_max = fold max min_int (fun o -> o.orn));
      check (p.Sim.Series.max_wait_min = fold Float.min infinity (fun o -> o.ow));
      check (p.Sim.Series.max_wait_max
             = fold Float.max neg_infinity (fun o -> o.ow)))
    samples;
  !ok

let downsampling_qcheck =
  QCheck.Test.make ~count:300
    ~name:"series halving preserves per-slice envelopes"
    QCheck.(list_of_size (Gen.int_range 0 200)
              (quad small_nat small_nat small_nat small_nat))
    (fun ints ->
      let obs = obs_of_ints ints in
      check_series_against_model obs (feed obs))

let test_series_halving_exact () =
  (* 40 observations into capacity 8: stride reaches 8, 5 samples *)
  let obs =
    obs_of_ints (List.init 40 (fun i -> (i, 2 * i, 3 * i, i mod 7)))
  in
  let s = feed obs in
  Alcotest.(check int) "observed" 40 (Sim.Series.observed s);
  Alcotest.(check int) "stride" 8 (Sim.Series.stride s);
  Alcotest.(check int) "samples" 5 (Sim.Series.length s);
  Alcotest.(check bool) "model invariants" true
    (check_series_against_model obs s)

let test_series_time_backwards () =
  let s = Sim.Series.create ~policy:"t" () in
  Sim.Series.observe s ~now:10.0 ~busy:0 ~queue:0 ~demand:0 ~running:0
    ~max_wait:0.0;
  Alcotest.check_raises "time must not go backwards"
    (Invalid_argument "Series.observe: time went backwards") (fun () ->
      Sim.Series.observe s ~now:9.0 ~busy:0 ~queue:0 ~demand:0 ~running:0
        ~max_wait:0.0)

let test_series_excess_and_summary () =
  let s = Sim.Series.create ~threshold:100.0 ~policy:"t" () in
  Sim.Series.note_start s ~wait:50.0;
  (* below threshold *)
  Alcotest.(check (float 0.0)) "below threshold ignored" 0.0
    (Sim.Series.cumulative_excess s);
  Sim.Series.note_start s ~wait:350.0;
  Alcotest.(check (float 1e-9)) "excess accumulates" 250.0
    (Sim.Series.cumulative_excess s);
  Alcotest.(check int) "no observation, no summary" 0
    (List.length (Sim.Series.summary s));
  Sim.Series.observe s ~now:0.0 ~busy:10 ~queue:2 ~demand:64 ~running:1
    ~max_wait:30.0;
  Sim.Series.observe s ~now:100.0 ~busy:20 ~queue:4 ~demand:32 ~running:2
    ~max_wait:60.0;
  let rows = Sim.Series.summary s in
  Alcotest.(check int) "six signals" 6 (List.length rows);
  let row label = List.find (fun r -> r.Sim.Series.label = label) rows in
  let busy = row "busy_nodes" in
  Alcotest.(check (float 1e-9)) "busy last" 20.0 busy.Sim.Series.last;
  Alcotest.(check (float 1e-9)) "busy avg time-weighted" 10.0
    busy.Sim.Series.avg;
  Alcotest.(check (float 1e-9)) "busy lo" 10.0 busy.Sim.Series.lo;
  Alcotest.(check (float 1e-9)) "busy hi over held spans" 10.0
    busy.Sim.Series.hi;
  let excess = row "excess_s" in
  Alcotest.(check (float 1e-9)) "excess last" 250.0 excess.Sim.Series.last

(* --- engine integration --- *)

let small_trace () =
  let config =
    { Workload.Generator.default_config with scale = 0.04; seed = 7 }
  in
  Workload.Generator.month ~config (Workload.Month_profile.find "7/03")

let test_engine_feeds_series_and_metrics () =
  let trace = small_trace () in
  let policy = Sched.Backfill.fcfs in
  let plain = Sim.Engine.run ~r_star:Sim.Engine.Actual ~policy trace in
  let series = Sim.Series.create ~policy:"fcfs" () in
  let metrics = M.create ~enabled:true () in
  let sampled =
    Sim.Engine.run ~series ~metrics ~r_star:Sim.Engine.Actual ~policy trace
  in
  (* observational only: the simulation itself is unchanged *)
  Alcotest.(check int) "same decisions" plain.Sim.Engine.decisions
    sampled.Sim.Engine.decisions;
  Alcotest.(check int) "same outcomes"
    (List.length plain.Sim.Engine.outcomes)
    (List.length sampled.Sim.Engine.outcomes);
  (* one observation per decision point *)
  Alcotest.(check int) "observed = decisions" sampled.Sim.Engine.decisions
    (Sim.Series.observed series);
  Alcotest.(check bool) "summary present" true
    (Sim.Series.summary series <> []);
  (* the engine's instruments agree with the run *)
  let n_jobs = Workload.Trace.length trace in
  let find_line needle s =
    List.exists (fun l -> contains l needle) (String.split_on_char '\n' s)
  in
  let buf = Buffer.create 2048 in
  let fmt = Format.formatter_of_buffer buf in
  M.pp_openmetrics fmt [ metrics ];
  Format.pp_print_flush fmt ();
  let om = Buffer.contents buf in
  Alcotest.(check bool) "decisions counter" true
    (find_line
       (Printf.sprintf "schedsim_decisions_total %d"
          sampled.Sim.Engine.decisions)
       om);
  Alcotest.(check bool) "started = jobs" true
    (find_line (Printf.sprintf "schedsim_jobs_started_total %d" n_jobs) om);
  Alcotest.(check bool) "completed = jobs" true
    (find_line (Printf.sprintf "schedsim_jobs_completed_total %d" n_jobs) om);
  Alcotest.(check bool) "queue drains to 0" true
    (find_line "schedsim_queue_jobs 0" om)

let test_search_policy_metrics () =
  let trace = small_trace () in
  let policy, stats =
    Core.Search_policy.policy (Core.Search_policy.dds_lxf_dynb ~budget:200)
  in
  let reg = Option.get policy.Sched.Policy.metrics in
  M.set_enabled reg true;
  let _ = Sim.Engine.run ~r_star:Sim.Engine.Actual ~policy trace in
  let buf = Buffer.create 2048 in
  let fmt = Format.formatter_of_buffer buf in
  M.pp_openmetrics fmt [ reg ];
  Format.pp_print_flush fmt ();
  let om = Buffer.contents buf in
  let s = stats () in
  Alcotest.(check bool) "search decisions exposed" true
    (contains om
       (Printf.sprintf "schedsim_search_decisions_total %d" s.decisions));
  Alcotest.(check bool) "search nodes exposed" true
    (contains om
       (Printf.sprintf "schedsim_search_nodes_total %d" s.total_nodes))

(* --- report rendering --- *)

let test_report_page_structure () =
  let trace = small_trace () in
  let series = Sim.Series.create ~policy:"fcfs" () in
  let _ =
    Sim.Engine.run ~series ~r_star:Sim.Engine.Actual
      ~policy:Sched.Backfill.fcfs trace
  in
  let html = Sim.Report.page ~title:"t" [ ("fcfs", series) ] in
  Alcotest.(check bool) "doctype" true (contains html "<!doctype html>");
  Alcotest.(check bool) "no JavaScript" false (contains html "<script");
  Alcotest.(check bool) "closes" true (contains html "</html>");
  let count needle =
    let n = String.length html and m = String.length needle in
    let rec go i acc =
      if i + m > n then acc
      else if String.sub html i m = needle then go (i + m) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "six charts" 6 (count "<svg");
  Alcotest.(check bool) "lines drawn" true (count "polyline class=\"line\"" >= 6);
  (* single run: no legend box (the title names it) *)
  Alcotest.(check bool) "no legend for one run" false
    (contains html "class=\"legend\"");
  let two =
    Sim.Report.page ~title:"t" [ ("a", series); ("b", series) ]
  in
  Alcotest.(check bool) "legend for two runs" true
    (contains two "class=\"legend\"")

(* --- exports independent of the pool width --- *)

let with_env bindings f =
  let saved = List.map (fun (k, _) -> (k, Sys.getenv_opt k)) bindings in
  List.iter (fun (k, v) -> Unix.putenv k v) bindings;
  Fun.protect f ~finally:(fun () ->
      List.iter
        (fun (k, v) -> Unix.putenv k (Option.value v ~default:""))
        saved)

let test_series_export_jobs_invariant () =
  with_env
    [
      ("REPRO_SCALE", "0.1"); ("REPRO_MONTHS", "1/04"); ("REPRO_MAXL", "1000");
    ]
    (fun () ->
      let saved_jobs = Experiments.Common.jobs () in
      Fun.protect
        ~finally:(fun () ->
          Experiments.Common.set_series false;
          Experiments.Common.set_jobs saved_jobs;
          Experiments.Common.reset_caches ();
          Experiments.Common.shutdown_pool ())
        (fun () ->
          Experiments.Common.set_series true;
          let render jobs =
            Experiments.Common.set_jobs jobs;
            Experiments.Common.reset_caches ();
            let sink = Buffer.create 4096 in
            let sfmt = Format.formatter_of_buffer sink in
            Experiments.Fig3.run sfmt;
            Format.pp_print_flush sfmt ();
            let buf = Buffer.create 4096 in
            let fmt = Format.formatter_of_buffer buf in
            Experiments.Common.pp_series fmt;
            Format.pp_print_flush fmt ();
            let html =
              Sim.Report.page ~title:"fig3"
                (Experiments.Common.series_runs ())
            in
            (Buffer.contents buf, html)
          in
          let jsonl_seq, html_seq = render 1 in
          let jsonl_par, html_par = render 4 in
          Alcotest.(check bool) "sampled something" true
            (String.length jsonl_seq > 0);
          Alcotest.(check bool) "jsonl carries the schema" true
            (contains jsonl_seq "run_series/1");
          Alcotest.(check string) "series JSONL independent of jobs"
            jsonl_seq jsonl_par;
          Alcotest.(check string) "report HTML independent of jobs" html_seq
            html_par))

let suite =
  [
    Alcotest.test_case "timeline min/max over held spans" `Quick
      test_timeline_min_max;
    Alcotest.test_case "timeline same-instant rewrite" `Quick
      test_timeline_same_instant;
    Alcotest.test_case "metrics counter/gauge/histogram" `Quick
      test_metrics_basics;
    Alcotest.test_case "metrics registry switch" `Quick test_metrics_switch;
    Alcotest.test_case "metric name validation" `Quick test_metrics_names;
    Alcotest.test_case "metrics off adds zero allocation" `Quick
      test_metrics_off_zero_alloc;
    Alcotest.test_case "metrics on adds zero allocation" `Quick
      test_metrics_on_zero_alloc;
    Alcotest.test_case "openmetrics exposition format" `Quick
      test_openmetrics_exposition;
    QCheck_alcotest.to_alcotest downsampling_qcheck;
    Alcotest.test_case "halving to stride 8 matches the model" `Quick
      test_series_halving_exact;
    Alcotest.test_case "observe rejects backwards time" `Quick
      test_series_time_backwards;
    Alcotest.test_case "excess threshold and summaries" `Quick
      test_series_excess_and_summary;
    Alcotest.test_case "engine feeds series and instruments" `Quick
      test_engine_feeds_series_and_metrics;
    Alcotest.test_case "search policy exposes its registry" `Quick
      test_search_policy_metrics;
    Alcotest.test_case "report page structure (no JS, 6 charts)" `Quick
      test_report_page_structure;
    Alcotest.test_case "series export independent of REPRO_JOBS" `Quick
      test_series_export_jobs_invariant;
  ]
