(* Tests for Core.Objective and Core.Bound. *)

open Core

let test_zero () =
  Alcotest.(check int) "no jobs" 0 Objective.zero.Objective.jobs;
  Alcotest.(check (float 1e-9)) "avg slowdown empty" 0.0
    (Objective.avg_slowdown Objective.zero)

let test_add () =
  let o =
    Objective.add Objective.zero ~wait:7200.0 ~threshold:3600.0
      ~est_runtime:3600.0
  in
  Alcotest.(check (float 1e-9)) "excess" 3600.0 o.Objective.excess;
  Alcotest.(check (float 1e-9)) "slowdown" 3.0 o.Objective.secondary_sum;
  let o2 = Objective.add o ~wait:0.0 ~threshold:3600.0 ~est_runtime:3600.0 in
  Alcotest.(check (float 1e-9)) "excess unchanged" 3600.0 o2.Objective.excess;
  Alcotest.(check (float 1e-9)) "avg slowdown" 2.0 (Objective.avg_slowdown o2)

let test_add_short_job_floor () =
  let o =
    Objective.add Objective.zero ~wait:120.0 ~threshold:1e9 ~est_runtime:10.0
  in
  (* one-minute floor: 1 + 120/60 = 3 *)
  Alcotest.(check (float 1e-9)) "floored slowdown" 3.0 o.Objective.secondary_sum

let test_hierarchical_compare () =
  let mk excess slowdown =
    { Objective.excess; secondary_sum = slowdown; jobs = 2 }
  in
  (* lower excess wins regardless of slowdown *)
  Alcotest.(check bool) "excess dominates" true
    (Objective.is_better ~candidate:(mk 10.0 100.0) ~incumbent:(mk 20.0 2.0));
  (* equal excess: slowdown breaks the tie *)
  Alcotest.(check bool) "slowdown tie-break" true
    (Objective.is_better ~candidate:(mk 10.0 5.0) ~incumbent:(mk 10.0 6.0));
  Alcotest.(check int) "equal values" 0
    (Objective.compare (mk 10.0 5.0) (mk 10.0 5.0));
  (* float-noise-sized excess difference must not override slowdown *)
  Alcotest.(check bool) "tolerant to excess noise" true
    (Objective.is_better
       ~candidate:(mk (10.0 +. 1e-12) 5.0)
       ~incumbent:(mk 10.0 6.0))

let test_secondary_avg_wait () =
  let o =
    Objective.add ~secondary:Objective.Avg_wait Objective.zero ~wait:7200.0
      ~threshold:1e9 ~est_runtime:3600.0
  in
  Alcotest.(check (float 1e-9)) "wait accumulated raw" 7200.0
    o.Objective.secondary_sum;
  Alcotest.(check string) "names" "avgW"
    (Objective.secondary_name Objective.Avg_wait);
  Alcotest.(check (float 1e-9)) "min contribution slowdown" 1.0
    (Objective.min_contribution Objective.Bounded_slowdown);
  Alcotest.(check (float 1e-9)) "min contribution wait" 0.0
    (Objective.min_contribution Objective.Avg_wait)

let test_bound_fixed () =
  let jobs = [| Helpers.job ~id:0 (); Helpers.job ~id:1 ~submit:5.0 () |] in
  let ths =
    Bound.thresholds (Bound.fixed_hours 50.0) ~now:100.0
      ~r_star:(fun j -> j.Workload.Job.runtime)
      jobs
  in
  Array.iter
    (fun t ->
      Alcotest.(check (float 1e-9)) "fixed bound" (50.0 *. 3600.0) t)
    ths

let test_bound_dynamic () =
  let jobs =
    [| Helpers.job ~id:0 ~submit:10.0 (); Helpers.job ~id:1 ~submit:40.0 () |]
  in
  let ths =
    Bound.thresholds Bound.dynamic ~now:100.0
      ~r_star:(fun j -> j.Workload.Job.runtime)
      jobs
  in
  (* longest current wait = 100 - 10 = 90, applied to every job *)
  Array.iter
    (fun t -> Alcotest.(check (float 1e-9)) "dynamic bound" 90.0 t)
    ths

let test_bound_dynamic_empty_queue () =
  let ths =
    Bound.thresholds Bound.dynamic ~now:100.0
      ~r_star:(fun j -> j.Workload.Job.runtime)
      [||]
  in
  Alcotest.(check int) "no thresholds" 0 (Array.length ths)

let test_bound_runtime_scaled () =
  let jobs =
    [| Helpers.job ~id:0 ~runtime:60.0 (); Helpers.job ~id:1 ~runtime:36000.0 () |]
  in
  let b = Bound.Runtime_scaled { floor = 3600.0; factor = 2.0 } in
  let ths =
    Bound.thresholds b ~now:0.0 ~r_star:(fun j -> j.Workload.Job.runtime) jobs
  in
  Alcotest.(check (float 1e-9)) "floor applies" 3600.0 ths.(0);
  Alcotest.(check (float 1e-9)) "factor applies" 72000.0 ths.(1)

let test_bound_names () =
  Alcotest.(check string) "dynB" "dynB" (Bound.name Bound.dynamic);
  Alcotest.(check string) "fixed" "w=50h" (Bound.name (Bound.fixed_hours 50.0))

let prop_add_monotone =
  QCheck.Test.make ~name:"objective components are monotone" ~count:300
    QCheck.(triple (float_bound_inclusive 1e6) (float_bound_inclusive 1e6)
              (float_bound_exclusive 1e5))
    (fun (wait, threshold, runtime) ->
      let runtime = runtime +. 1.0 in
      let base =
        { Objective.excess = 5.0; secondary_sum = 7.0; jobs = 3 }
      in
      let o = Objective.add base ~wait ~threshold ~est_runtime:runtime in
      o.Objective.excess >= base.Objective.excess
      && o.Objective.secondary_sum >= base.Objective.secondary_sum +. 1.0
      && o.Objective.jobs = 4)

let suite =
  [
    Alcotest.test_case "zero" `Quick test_zero;
    Alcotest.test_case "add" `Quick test_add;
    Alcotest.test_case "short-job floor" `Quick test_add_short_job_floor;
    Alcotest.test_case "hierarchical compare" `Quick test_hierarchical_compare;
    Alcotest.test_case "secondary = avg wait" `Quick test_secondary_avg_wait;
    Alcotest.test_case "fixed bound" `Quick test_bound_fixed;
    Alcotest.test_case "dynamic bound" `Quick test_bound_dynamic;
    Alcotest.test_case "dynamic bound, empty queue" `Quick
      test_bound_dynamic_empty_queue;
    Alcotest.test_case "runtime-scaled bound" `Quick test_bound_runtime_scaled;
    Alcotest.test_case "bound names" `Quick test_bound_names;
    QCheck_alcotest.to_alcotest prop_add_monotone;
  ]
