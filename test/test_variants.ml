(* Tests for the related-work scheduler variants (Lookahead, Relaxed)
   and the on-line runtime predictor. *)

open Sched

let r_star (j : Workload.Job.t) = j.runtime

let context ?(now = 0.0) ?(capacity = 16) ~waiting ~running () =
  let machine = Cluster.Machine.v ~nodes:capacity in
  let rs = Cluster.Running_set.create ~machine in
  List.iter
    (fun (id, nodes, start, runtime) ->
      let job =
        Helpers.job ~id ~nodes ~runtime ~submit:(Float.max 0.0 start) ()
      in
      Cluster.Running_set.add rs
        {
          Cluster.Running_set.job;
          start;
          finish = start +. runtime;
          est_finish = start +. runtime;
        })
    running;
  { Policy.now; waiting; running = rs; r_star }

let ids = List.map (fun (j : Workload.Job.t) -> j.id)

(* --- Lookahead --- *)

let test_lookahead_maximizes_nodes () =
  (* 10 free nodes; queue-order backfill would start the 6-node job and
     strand 4 nodes; the knapsack picks 6+4 or 10 exactly *)
  let waiting =
    [ Helpers.job ~id:0 ~nodes:6 ();
      Helpers.job ~id:1 ~submit:1.0 ~nodes:7 ();
      Helpers.job ~id:2 ~submit:2.0 ~nodes:4 () ]
  in
  let ctx =
    context ~now:0.0 ~waiting ~running:[ (99, 6, -10.0, 1000.0) ] ()
  in
  let started = (Lookahead.policy ()).Policy.decide ctx in
  Alcotest.(check (list int)) "picks the node-maximizing set" [ 0; 2 ]
    (ids started)

let test_lookahead_protects_head () =
  (* head needs 12 (free 10): it gets a reservation; the knapsack must
     not pick backfill jobs that would delay it *)
  let waiting =
    [ Helpers.job ~id:0 ~nodes:12 ~runtime:100.0 ();
      (* this one would run past the release and block the head *)
      Helpers.job ~id:1 ~submit:1.0 ~nodes:10 ~runtime:10000.0 ();
      (* this one finishes before the release *)
      Helpers.job ~id:2 ~submit:2.0 ~nodes:10 ~runtime:50.0 () ]
  in
  let ctx =
    context ~now:0.0 ~waiting ~running:[ (99, 6, -10.0, 100.0) ] ()
  in
  let started = (Lookahead.policy ()).Policy.decide ctx in
  Alcotest.(check (list int)) "only the short filler starts" [ 2 ]
    (ids started)

let test_lookahead_head_starts_when_fits () =
  let waiting = [ Helpers.job ~id:0 ~nodes:16 () ] in
  let ctx = context ~now:0.0 ~waiting ~running:[] () in
  let started = (Lookahead.policy ()).Policy.decide ctx in
  Alcotest.(check (list int)) "head starts" [ 0 ] (ids started)

let test_lookahead_empty_queue () =
  let ctx = context ~now:0.0 ~waiting:[] ~running:[] () in
  Alcotest.(check int) "no jobs" 0
    (List.length ((Lookahead.policy ()).Policy.decide ctx))

(* --- Relaxed --- *)

let test_relaxed_allows_bounded_delay () =
  (* head (12 nodes, 1h estimate) blocked until t=100.  A 10-node
     backfill of 140 s delays it to t=140: allowed with relaxation 0.5
     (deadline 100 + 1800), rejected with relaxation 0. *)
  let head = Helpers.job ~id:0 ~nodes:12 ~runtime:3600.0 () in
  let filler = Helpers.job ~id:1 ~submit:1.0 ~nodes:10 ~runtime:140.0 () in
  let running = [ (99, 6, -10.0, 100.0) ] in
  let ctx = context ~now:0.0 ~waiting:[ head; filler ] ~running () in
  let relaxed = (Relaxed.policy ~relaxation:0.5 ()).Policy.decide ctx in
  Alcotest.(check (list int)) "relaxed starts the filler" [ 1 ] (ids relaxed);
  let ctx2 = context ~now:0.0 ~waiting:[ head; filler ] ~running () in
  let strict = (Relaxed.policy ~relaxation:0.0 ()).Policy.decide ctx2 in
  Alcotest.(check (list int)) "strict rejects it" [] (ids strict)

let test_relaxed_easy_when_head_fits () =
  let waiting =
    [ Helpers.job ~id:0 ~nodes:8 (); Helpers.job ~id:1 ~submit:1.0 ~nodes:8 () ]
  in
  let ctx = context ~now:0.0 ~waiting ~running:[] () in
  let started = (Relaxed.policy ()).Policy.decide ctx in
  Alcotest.(check (list int)) "both start" [ 0; 1 ] (ids started)

let test_relaxed_invalid () =
  Alcotest.check_raises "negative relaxation"
    (Invalid_argument "Relaxed.policy: negative relaxation") (fun () ->
      ignore (Relaxed.policy ~relaxation:(-1.0) ()))

(* --- Multi-queue --- *)

let test_queue_rank () =
  let boundaries = [ 3600.0; 18000.0 ] in
  Alcotest.(check int) "short" 0 (Multi_queue.queue_rank ~boundaries 60.0);
  Alcotest.(check int) "boundary inclusive" 0
    (Multi_queue.queue_rank ~boundaries 3600.0);
  Alcotest.(check int) "medium" 1 (Multi_queue.queue_rank ~boundaries 7200.0);
  Alcotest.(check int) "long" 2 (Multi_queue.queue_rank ~boundaries 86400.0)

let test_multi_queue_prefers_short_queue () =
  (* an old long job and a fresh short job compete for 8 free nodes:
     the short queue wins regardless of arrival order *)
  let long_job = Helpers.job ~id:0 ~submit:0.0 ~nodes:8 ~runtime:36000.0 () in
  let short_job = Helpers.job ~id:1 ~submit:100.0 ~nodes:8 ~runtime:600.0 () in
  let ctx =
    context ~now:200.0 ~waiting:[ long_job; short_job ]
      ~running:[ (99, 8, 0.0, 100000.0) ] ()
  in
  let started = (Multi_queue.policy ()).Policy.decide ctx in
  Alcotest.(check (list int)) "short queue first" [ 1 ] (ids started)

let test_multi_queue_name () =
  Alcotest.(check string) "name shows queue count"
    "multi-queue-backfill(3 queues)"
    (Multi_queue.policy ()).Policy.name

(* --- engine-level sanity for the variants and the predictor --- *)

let machine16 = Cluster.Machine.v ~nodes:16

let test_variants_complete_all_jobs () =
  let trace = Helpers.mini_trace ~seed:21 ~n:50 () in
  List.iter
    (fun policy ->
      let result =
        Sim.Engine.run ~machine:machine16 ~r_star:Sim.Engine.Actual ~policy
          trace
      in
      Alcotest.(check int)
        (policy.Policy.name ^ " completes all jobs")
        50
        (List.length result.Sim.Engine.outcomes))
    [ Lookahead.policy (); Relaxed.policy (); Relaxed.policy ~relaxation:2.0 ();
      Multi_queue.policy () ]

let test_predictor_runs_and_learns () =
  let trace = Helpers.mini_trace ~seed:22 ~n:60 () in
  let result =
    Sim.Engine.run ~machine:machine16 ~r_star:Sim.Engine.Predicted
      ~policy:Backfill.lxf trace
  in
  Alcotest.(check int) "all jobs complete" 60
    (List.length result.Sim.Engine.outcomes)

let test_predictor_differs_from_requested () =
  let trace = Helpers.mini_trace ~seed:23 ~n:80 () in
  let starts r_star =
    let result =
      Sim.Engine.run ~machine:machine16 ~r_star ~policy:Backfill.lxf trace
    in
    List.map (fun (o : Metrics.Outcome.t) -> o.start) result.Sim.Engine.outcomes
  in
  Alcotest.(check bool) "prediction changes decisions" true
    (starts Sim.Engine.Predicted <> starts Sim.Engine.Requested)

let test_rstar_names () =
  Alcotest.(check string) "T" "R*=T" (Sim.Engine.r_star_name Sim.Engine.Actual);
  Alcotest.(check string) "R" "R*=R"
    (Sim.Engine.r_star_name Sim.Engine.Requested);
  Alcotest.(check string) "pred" "R*=pred"
    (Sim.Engine.r_star_name Sim.Engine.Predicted)

let suite =
  [
    Alcotest.test_case "lookahead maximizes nodes" `Quick
      test_lookahead_maximizes_nodes;
    Alcotest.test_case "lookahead protects head" `Quick
      test_lookahead_protects_head;
    Alcotest.test_case "lookahead starts fitting head" `Quick
      test_lookahead_head_starts_when_fits;
    Alcotest.test_case "lookahead empty queue" `Quick test_lookahead_empty_queue;
    Alcotest.test_case "relaxed bounded delay" `Quick
      test_relaxed_allows_bounded_delay;
    Alcotest.test_case "relaxed = EASY when head fits" `Quick
      test_relaxed_easy_when_head_fits;
    Alcotest.test_case "relaxed validates" `Quick test_relaxed_invalid;
    Alcotest.test_case "queue rank" `Quick test_queue_rank;
    Alcotest.test_case "multi-queue prefers short queue" `Quick
      test_multi_queue_prefers_short_queue;
    Alcotest.test_case "multi-queue name" `Quick test_multi_queue_name;
    Alcotest.test_case "variants complete all jobs" `Quick
      test_variants_complete_all_jobs;
    Alcotest.test_case "predictor completes workload" `Quick
      test_predictor_runs_and_learns;
    Alcotest.test_case "predictor changes decisions" `Quick
      test_predictor_differs_from_requested;
    Alcotest.test_case "r_star names" `Quick test_rstar_names;
  ]
