(* Tests for Workload: Job, Trace, Estimate, Month_profile, Mix_report. *)

open Workload

let job ?(id = 0) ?(submit = 0.0) ?(nodes = 1) ?(runtime = 3600.0)
    ?requested () =
  Job.v ~id ~submit ~nodes ~runtime
    ~requested:(Option.value requested ~default:runtime)

(* --- Job --- *)

let test_job_validation () =
  Alcotest.check_raises "nodes >= 1" (Invalid_argument "Job.v: nodes must be >= 1")
    (fun () -> ignore (job ~nodes:0 ()));
  Alcotest.check_raises "runtime > 0"
    (Invalid_argument "Job.v: runtime must be positive") (fun () ->
      ignore (job ~runtime:0.0 ()));
  Alcotest.check_raises "requested >= runtime"
    (Invalid_argument "Job.v: requested < runtime") (fun () ->
      ignore (job ~runtime:100.0 ~requested:50.0 ()))

let test_job_area () =
  Alcotest.(check (float 1e-9)) "area" 7200.0
    (Job.area (job ~nodes:2 ~runtime:3600.0 ()))

let test_size_range8 () =
  let cases = [ (1, 0); (2, 1); (3, 2); (4, 2); (5, 3); (8, 3); (9, 4);
                (16, 4); (17, 5); (32, 5); (33, 6); (64, 6); (65, 7); (128, 7) ]
  in
  List.iter
    (fun (n, expected) ->
      Alcotest.(check int) (Printf.sprintf "range of %d" n) expected
        (Job.size_range8 n))
    cases

let test_node_class5 () =
  let cases = [ (1, 0); (2, 1); (3, 2); (8, 2); (9, 3); (32, 3); (33, 4);
                (128, 4) ]
  in
  List.iter
    (fun (n, expected) ->
      Alcotest.(check int) (Printf.sprintf "class of %d" n) expected
        (Job.node_class5 n))
    cases

let test_runtime_class5 () =
  let open Simcore.Units in
  let cases =
    [ (minutes 5.0, 0); (minutes 10.0, 0); (minutes 30.0, 1); (hour, 1);
      (hours 2.0, 2); (hours 4.0, 2); (hours 6.0, 3); (hours 8.0, 3);
      (hours 9.0, 4) ]
  in
  List.iter
    (fun (t, expected) ->
      Alcotest.(check int) (Printf.sprintf "class of %gs" t) expected
        (Job.runtime_class5 t))
    cases

let test_compare_submit () =
  let a = job ~id:0 ~submit:5.0 () in
  let b = job ~id:1 ~submit:3.0 () in
  let c = job ~id:2 ~submit:5.0 () in
  Alcotest.(check bool) "later submit sorts after" true
    (Job.compare_submit a b > 0);
  Alcotest.(check bool) "tie broken by id" true (Job.compare_submit a c < 0)

(* --- Trace --- *)

let test_trace_sorts_and_windows () =
  let jobs = [ job ~id:0 ~submit:10.0 (); job ~id:1 ~submit:5.0 () ] in
  let t = Trace.v jobs in
  let sorted = Trace.jobs t in
  Alcotest.(check int) "sorted by submit" 1 sorted.(0).Job.id;
  Alcotest.(check int) "length" 2 (Trace.length t)

let test_trace_duplicate_ids () =
  Alcotest.check_raises "duplicate ids"
    (Invalid_argument "Trace.v: duplicate job id 0") (fun () ->
      ignore (Trace.v [ job ~id:0 (); job ~id:0 ~submit:1.0 () ]))

let test_trace_measured_window () =
  let jobs =
    [ job ~id:0 ~submit:1.0 (); job ~id:1 ~submit:5.0 ();
      job ~id:2 ~submit:9.0 () ]
  in
  let t = Trace.v jobs ~measure_start:4.0 ~measure_end:9.0 in
  Alcotest.(check (list int)) "only in-window jobs" [ 1 ]
    (List.map (fun (j : Job.t) -> j.id) (Trace.measured t))

let test_trace_offered_load () =
  (* one 4-node 100s job in a 100s window on a 4-node machine = load 1 *)
  let t =
    Trace.v [ job ~nodes:4 ~runtime:100.0 () ] ~measure_start:0.0
      ~measure_end:100.0
  in
  Alcotest.(check (float 1e-9)) "load" 1.0 (Trace.offered_load t ~capacity:4)

let test_trace_scale_load () =
  let jobs =
    List.init 10 (fun i -> job ~id:i ~submit:(float_of_int i *. 10.0) ())
  in
  let t = Trace.v jobs ~measure_start:0.0 ~measure_end:100.0 in
  let load0 = Trace.offered_load t ~capacity:16 in
  let scaled = Trace.scale_load t ~capacity:16 ~target:(2.0 *. load0) in
  Alcotest.(check (float 1e-6)) "load doubled" (2.0 *. load0)
    (Trace.offered_load scaled ~capacity:16);
  Alcotest.(check int) "same jobs" 10 (Trace.length scaled);
  let j = (Trace.jobs scaled).(3) in
  Alcotest.(check (float 1e-9)) "runtimes unchanged" 3600.0 j.Job.runtime

let test_trace_map_jobs () =
  let t = Trace.v [ job ~id:0 (); job ~id:1 ~submit:2.0 () ] in
  let t' = Trace.map_jobs t (fun j -> { j with Job.nodes = 7 }) in
  Array.iter
    (fun (j : Job.t) -> Alcotest.(check int) "mapped" 7 j.nodes)
    (Trace.jobs t')

(* --- Estimate --- *)

let test_estimate_round_up () =
  let limit = Simcore.Units.hours 12.0 in
  Alcotest.(check (float 1e-9)) "rounds to 1h" Simcore.Units.hour
    (Estimate.round_up ~limit 3599.0);
  Alcotest.(check (float 1e-9)) "caps at limit" limit
    (Estimate.round_up ~limit (Simcore.Units.hours 50.0))

let test_estimate_draw_bounds () =
  let rng = Simcore.Rng.create ~seed:5 in
  let limit = Simcore.Units.hours 12.0 in
  for _ = 1 to 2000 do
    let runtime = Simcore.Dist.log_uniform rng ~lo:60.0 ~hi:limit in
    let r = Estimate.draw rng ~limit ~runtime in
    Alcotest.(check bool) "R >= T" true (r >= runtime -. 1e-9);
    Alcotest.(check bool) "R <= limit (unless T near limit)" true
      (r <= Float.max limit runtime +. 1e-9)
  done

let test_estimate_attach_deterministic () =
  let t = Trace.v [ job ~id:0 (); job ~id:1 ~submit:1.0 ~runtime:7200.0 () ] in
  let limit = Simcore.Units.hours 12.0 in
  let a = Estimate.attach ~seed:3 ~limit t in
  let b = Estimate.attach ~seed:3 ~limit t in
  Array.iteri
    (fun i (j : Job.t) ->
      Alcotest.(check (float 1e-9)) "deterministic" j.requested
        (Trace.jobs b).(i).Job.requested)
    (Trace.jobs a)

(* --- Month_profile --- *)

let test_month_profiles_complete () =
  Alcotest.(check int) "ten months" 10 (Array.length Month_profile.all);
  Array.iter
    (fun m ->
      Alcotest.(check int) "8 ranges" 8 (Array.length m.Month_profile.jobs8);
      Alcotest.(check int) "8 demands" 8 (Array.length m.Month_profile.demand8);
      Alcotest.(check int) "5 short" 5 (Array.length m.Month_profile.short5);
      Alcotest.(check int) "5 long" 5 (Array.length m.Month_profile.long5);
      let sum = Array.fold_left ( +. ) 0.0 m.Month_profile.jobs8 in
      Alcotest.(check bool)
        (m.Month_profile.label ^ " job percentages sum to ~100")
        true
        (sum > 95.0 && sum < 105.0))
    Month_profile.all

let test_month_find () =
  let m = Month_profile.find "7/03" in
  Alcotest.(check int) "n_jobs" 1399 m.Month_profile.n_jobs;
  Alcotest.(check (float 1e-9)) "load" 0.89 m.Month_profile.load;
  Alcotest.check_raises "unknown month" Not_found (fun () ->
      ignore (Month_profile.find "13/99"))

let test_runtime_limit_change () =
  (* Table 2: limit raised from 12h to 24h in December 2003 *)
  let h12 = Simcore.Units.hours 12.0 and h24 = Simcore.Units.hours 24.0 in
  Alcotest.(check (float 1.0)) "11/03 limit" h12
    (Month_profile.find "11/03").Month_profile.runtime_limit;
  Alcotest.(check (float 1.0)) "12/03 limit" h24
    (Month_profile.find "12/03").Month_profile.runtime_limit

let test_conditionals_valid () =
  Array.iter
    (fun m ->
      for c = 0 to 4 do
        let s = Month_profile.short_given_class m c in
        let l = Month_profile.long_given_class m c in
        Alcotest.(check bool) "p_short in [0,1]" true (s >= 0.0 && s <= 1.0);
        Alcotest.(check bool) "p_long in [0,1]" true (l >= 0.0 && l <= 1.0);
        Alcotest.(check bool) "p_short + p_long <= 1" true (s +. l <= 1.0 +. 1e-9)
      done)
    Month_profile.all

(* --- Mix_report --- *)

let test_mix_report_basic () =
  let jobs =
    [ job ~id:0 ~nodes:1 ~runtime:1800.0 ();
      job ~id:1 ~submit:1.0 ~nodes:64 ~runtime:(Simcore.Units.hours 6.0) () ]
  in
  let t = Trace.v jobs ~measure_start:0.0 ~measure_end:100.0 in
  let mix = Mix_report.of_trace ~capacity:128 t in
  Alcotest.(check int) "n_jobs" 2 mix.Mix_report.n_jobs;
  Alcotest.(check (float 1e-6)) "jobs8 range 0" 50.0 mix.Mix_report.jobs8.(0);
  Alcotest.(check (float 1e-6)) "jobs8 range 6" 50.0 mix.Mix_report.jobs8.(6);
  Alcotest.(check (float 1e-6)) "short5 class 0" 50.0 mix.Mix_report.short5.(0);
  Alcotest.(check (float 1e-6)) "long5 class 4" 50.0 mix.Mix_report.long5.(4)

let test_max_abs_diff () =
  Alcotest.(check (float 1e-9)) "diff" 3.0
    (Mix_report.max_abs_diff [| 1.0; 5.0 |] [| 2.0; 2.0 |]);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Mix_report.max_abs_diff: length mismatch") (fun () ->
      ignore (Mix_report.max_abs_diff [| 1.0 |] [| 1.0; 2.0 |]))

let suite =
  [
    Alcotest.test_case "job validation" `Quick test_job_validation;
    Alcotest.test_case "job area" `Quick test_job_area;
    Alcotest.test_case "size_range8" `Quick test_size_range8;
    Alcotest.test_case "node_class5" `Quick test_node_class5;
    Alcotest.test_case "runtime_class5" `Quick test_runtime_class5;
    Alcotest.test_case "compare_submit" `Quick test_compare_submit;
    Alcotest.test_case "trace sorts/windows" `Quick test_trace_sorts_and_windows;
    Alcotest.test_case "trace duplicate ids" `Quick test_trace_duplicate_ids;
    Alcotest.test_case "trace measured window" `Quick test_trace_measured_window;
    Alcotest.test_case "trace offered load" `Quick test_trace_offered_load;
    Alcotest.test_case "trace scale_load" `Quick test_trace_scale_load;
    Alcotest.test_case "trace map_jobs" `Quick test_trace_map_jobs;
    Alcotest.test_case "estimate round_up" `Quick test_estimate_round_up;
    Alcotest.test_case "estimate draw bounds" `Quick test_estimate_draw_bounds;
    Alcotest.test_case "estimate deterministic" `Quick
      test_estimate_attach_deterministic;
    Alcotest.test_case "month profiles complete" `Quick
      test_month_profiles_complete;
    Alcotest.test_case "month find" `Quick test_month_find;
    Alcotest.test_case "runtime limit change 12/03" `Quick
      test_runtime_limit_change;
    Alcotest.test_case "bucket conditionals valid" `Quick
      test_conditionals_valid;
    Alcotest.test_case "mix report basic" `Quick test_mix_report_basic;
    Alcotest.test_case "mix max_abs_diff" `Quick test_max_abs_diff;
  ]
