(* Additional behavioural tests for the backfill variants. *)

open Sched

let r_star (j : Workload.Job.t) = j.runtime

let context ?(now = 0.0) ?(capacity = 16) ~waiting ~running () =
  let machine = Cluster.Machine.v ~nodes:capacity in
  let rs = Cluster.Running_set.create ~machine in
  List.iter
    (fun (id, nodes, start, runtime) ->
      let job =
        Helpers.job ~id ~nodes ~runtime ~submit:(Float.max 0.0 start) ()
      in
      Cluster.Running_set.add rs
        {
          Cluster.Running_set.job;
          start;
          finish = start +. runtime;
          est_finish = start +. runtime;
        })
    running;
  { Policy.now; waiting; running = rs; r_star }

let ids = List.map (fun (j : Workload.Job.t) -> j.id)

(* --- Selective backfill: threshold promotion --- *)

let test_selective_promotes_starved_job () =
  (* A wide job that cannot start now gets a reservation only once its
     expansion factor crosses the threshold; before that, backfill may
     freely delay it. *)
  let check_at ~now ~expect label =
    (* wide job submitted at t=0 needs 12 of 16 nodes; 8 are busy until
       now+50; the 10000-s filler fits the 8 free nodes but would delay
       the wide job's earliest start (now+50) by hours *)
    let wide = Helpers.job ~id:0 ~submit:0.0 ~nodes:12 ~runtime:3600.0 () in
    let filler =
      Helpers.job ~id:1 ~submit:now ~nodes:8 ~runtime:10000.0 ()
    in
    let running = [ (99, 8, now -. 100.0, 150.0) ] in
    let ctx = context ~now ~waiting:[ wide; filler ] ~running () in
    let started = (Selective.policy ()).Policy.decide ctx in
    Alcotest.(check (list int)) label expect (ids started)
  in
  (* waited 100 s: xf ~ 1.03, below the threshold of 3 *)
  check_at ~now:100.0 ~expect:[ 1 ] "young queue: filler backfills freely";
  (* waited 4 h: xf = 5 -> promoted to a reservation, filler blocked *)
  check_at ~now:(Simcore.Units.hours 4.0)
    ~expect:[] "starved job holds a reservation"

(* --- Conservative backfill: no queued job is delayed --- *)

let test_conservative_blocks_harmful_backfill () =
  (* Queue: A (needs 12, reserved at t=100), B (needs 10, reserved
     after A), C (4 nodes, long).  Under one-reservation EASY, C could
     delay B; conservative must not start C if it pushes B back. *)
  let a = Helpers.job ~id:0 ~nodes:12 ~runtime:100.0 () in
  let b = Helpers.job ~id:1 ~submit:1.0 ~nodes:14 ~runtime:100.0 () in
  let c = Helpers.job ~id:2 ~submit:2.0 ~nodes:4 ~runtime:100000.0 () in
  let running = [ (99, 12, -50.0, 150.0) ] in
  let easy_ctx = context ~now:0.0 ~waiting:[ a; b; c ] ~running () in
  let easy = Backfill.plan ~reservations:1 ~priority:Priority.fcfs easy_ctx in
  Alcotest.(check (list int)) "EASY starts the long narrow job" [ 2 ]
    (ids easy.Backfill.start_now);
  let cons_ctx = context ~now:0.0 ~waiting:[ a; b; c ] ~running () in
  let cons =
    Backfill.plan ~reservations:max_int ~priority:Priority.fcfs cons_ctx
  in
  Alcotest.(check (list int)) "conservative blocks it" []
    (ids cons.Backfill.start_now);
  Alcotest.(check int) "all blocked jobs reserved" 3
    (List.length cons.Backfill.reserved)

(* --- Multiple reservations --- *)

let test_two_reservations () =
  let a = Helpers.job ~id:0 ~nodes:12 ~runtime:100.0 () in
  let b = Helpers.job ~id:1 ~submit:1.0 ~nodes:12 ~runtime:100.0 () in
  let c = Helpers.job ~id:2 ~submit:2.0 ~nodes:12 ~runtime:100.0 () in
  let running = [ (99, 12, -50.0, 150.0) ] in
  let ctx = context ~now:0.0 ~waiting:[ a; b; c ] ~running () in
  let plan = Backfill.plan ~reservations:2 ~priority:Priority.fcfs ctx in
  match plan.Backfill.reserved with
  | [ (ja, ta); (jb, tb) ] ->
      Alcotest.(check int) "first reserved" 0 ja.Workload.Job.id;
      Alcotest.(check int) "second reserved" 1 jb.Workload.Job.id;
      Alcotest.(check (float 1e-6)) "stacked starts" (ta +. 100.0) tb;
      Alcotest.(check bool) "third job got nothing" true
        (List.length plan.Backfill.start_now = 0)
  | r -> Alcotest.failf "expected 2 reservations, got %d" (List.length r)

(* --- distributions not covered elsewhere --- *)

let test_normal_moments () =
  let rng = Simcore.Rng.create ~seed:41 in
  let n = 20_000 in
  let acc = Simcore.Stats.Running.create () in
  for _ = 1 to n do
    Simcore.Stats.Running.add acc
      (Simcore.Dist.normal rng ~mean:10.0 ~stddev:2.0)
  done;
  Alcotest.(check bool) "mean ~10" true
    (Float.abs (Simcore.Stats.Running.mean acc -. 10.0) < 0.1);
  Alcotest.(check bool) "stddev ~2" true
    (Float.abs (Simcore.Stats.Running.stddev acc -. 2.0) < 0.1)

let test_lognormal_median () =
  let rng = Simcore.Rng.create ~seed:43 in
  let n = 20_001 in
  let samples =
    Array.init n (fun _ -> Simcore.Dist.lognormal rng ~mu:(log 100.0) ~sigma:1.0)
  in
  let median = Simcore.Stats.percentile samples 50.0 in
  Alcotest.(check bool)
    (Printf.sprintf "median ~100 (got %.1f)" median)
    true
    (Float.abs (median -. 100.0) < 8.0)

let suite =
  [
    Alcotest.test_case "selective promotes starved job" `Quick
      test_selective_promotes_starved_job;
    Alcotest.test_case "conservative blocks harmful backfill" `Quick
      test_conservative_blocks_harmful_backfill;
    Alcotest.test_case "two reservations stack" `Quick test_two_reservations;
    Alcotest.test_case "normal moments" `Quick test_normal_moments;
    Alcotest.test_case "lognormal median" `Quick test_lognormal_median;
  ]
