(* Tests for arrival-pattern statistics, validating the generators'
   diurnal/weekly modulation. *)

open Workload

let test_counts () =
  (* three jobs at known instants: Monday 01:30, Monday 14:00,
     Saturday 10:00 *)
  let open Simcore.Units in
  let jobs =
    [
      Helpers.job ~id:0 ~submit:(hours 1.5) ();
      Helpers.job ~id:1 ~submit:(hours 14.0) ();
      Helpers.job ~id:2 ~submit:(days 5.0 +. hours 10.0) ();
    ]
  in
  let t = Trace.v jobs ~measure_start:0.0 ~measure_end:(days 7.0) in
  let stats = Arrival_stats.of_trace t in
  Alcotest.(check int) "total" 3 stats.Arrival_stats.total;
  Alcotest.(check int) "01h bin" 1 stats.Arrival_stats.hourly.(1);
  Alcotest.(check int) "14h bin" 1 stats.Arrival_stats.hourly.(14);
  Alcotest.(check int) "10h bin" 1 stats.Arrival_stats.hourly.(10);
  Alcotest.(check int) "Monday" 2 stats.Arrival_stats.daily.(0);
  Alcotest.(check int) "Saturday" 1 stats.Arrival_stats.daily.(5)

let test_generator_is_diurnal () =
  let profile = Month_profile.find "10/03" in
  let config = { Generator.default_config with scale = 0.5; seed = 12 } in
  let stats = Arrival_stats.of_trace (Generator.month ~config profile) in
  (* afternoon busier than pre-dawn *)
  let afternoon = stats.Arrival_stats.hourly.(14) + stats.Arrival_stats.hourly.(15) in
  let predawn = stats.Arrival_stats.hourly.(3) + stats.Arrival_stats.hourly.(4) in
  Alcotest.(check bool)
    (Printf.sprintf "afternoon (%d) > pre-dawn (%d)" afternoon predawn)
    true
    (afternoon > predawn);
  Alcotest.(check bool) "peak/trough well above flat" true
    (Arrival_stats.peak_to_trough stats > 1.5);
  let ratio = Arrival_stats.weekend_weekday_ratio stats in
  Alcotest.(check bool)
    (Printf.sprintf "weekends quieter (ratio %.2f)" ratio)
    true
    (ratio < 0.85)

let test_pp_smoke () =
  let t =
    Trace.v [ Helpers.job () ] ~measure_start:0.0 ~measure_end:86400.0
  in
  let out =
    Format.asprintf "%a" Arrival_stats.pp (Arrival_stats.of_trace t)
  in
  Alcotest.(check bool) "mentions hours" true (Helpers.contains out "00:00");
  Alcotest.(check bool) "mentions days" true (Helpers.contains out "Mon")

let suite =
  [
    Alcotest.test_case "bin counts" `Quick test_counts;
    Alcotest.test_case "generator diurnal/weekly" `Quick
      test_generator_is_diurnal;
    Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
  ]
