(* Tests for Simcore.Units, Rng, Dist, Stats and Event_queue. *)

open Simcore

let feq ?(eps = 1e-9) name expected actual =
  Alcotest.(check (float eps)) name expected actual

(* --- Units --- *)

let test_units () =
  feq "hour" 3600.0 Units.hour;
  feq "minutes" 90.0 (Units.minutes 1.5);
  feq "hours" 7200.0 (Units.hours 2.0);
  feq "days" 86400.0 (Units.days 1.0);
  feq "weeks" (7.0 *. 86400.0) (Units.weeks 1.0);
  feq "to_hours" 2.0 (Units.to_hours 7200.0);
  feq "to_minutes" 2.0 (Units.to_minutes 120.0);
  feq "to_days" 0.5 (Units.to_days 43200.0)

let test_pp_duration () =
  let render v = Format.asprintf "%a" Units.pp_duration v in
  Alcotest.(check string) "seconds" "45.0s" (render 45.0);
  Alcotest.(check string) "minutes" "13.0m" (render (13.0 *. 60.0));
  Alcotest.(check string) "hours" "2.50h" (render (2.5 *. 3600.0));
  Alcotest.(check string) "days" "2.00d" (render (2.0 *. 86400.0))

(* --- Rng --- *)

let test_rng_determinism () =
  let a = Rng.create ~seed:7 in
  let b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 in
  let b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different seeds differ" true
    (Rng.bits64 a <> Rng.bits64 b)

let test_rng_split_independent () =
  let parent = Rng.create ~seed:3 in
  let child = Rng.split parent in
  Alcotest.(check bool) "child differs from parent" true
    (Rng.bits64 child <> Rng.bits64 parent)

let test_rng_copy () =
  let a = Rng.create ~seed:9 in
  let _ = Rng.bits64 a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy same next" (Rng.bits64 a) (Rng.bits64 b)

let prop_rng_int_range =
  QCheck.Test.make ~name:"Rng.int in [0, n)" ~count:500
    QCheck.(pair small_int (int_bound 1000))
    (fun (seed, n) ->
      let n = n + 1 in
      let rng = Rng.create ~seed in
      let v = Rng.int rng n in
      v >= 0 && v < n)

let prop_rng_unit_float =
  QCheck.Test.make ~name:"Rng.unit_float in [0,1)" ~count:500 QCheck.small_int
    (fun seed ->
      let rng = Rng.create ~seed in
      let v = Rng.unit_float rng in
      v >= 0.0 && v < 1.0)

let test_rng_int_invalid () =
  let rng = Rng.create ~seed:0 in
  Alcotest.check_raises "n=0 rejected"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

(* --- Dist --- *)

let test_dist_mean_exponential () =
  let rng = Rng.create ~seed:11 in
  let n = 20_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Dist.exponential rng ~mean:5.0
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool) "mean within 5%" true (Float.abs (mean -. 5.0) < 0.25)

let test_dist_log_uniform_bounds () =
  let rng = Rng.create ~seed:13 in
  for _ = 1 to 1000 do
    let v = Dist.log_uniform rng ~lo:10.0 ~hi:1000.0 in
    Alcotest.(check bool) "in bounds" true (v >= 10.0 && v < 1000.0 +. 1e-9)
  done

let test_dist_categorical () =
  let rng = Rng.create ~seed:17 in
  let counts = Array.make 3 0 in
  for _ = 1 to 9000 do
    let i = Dist.categorical rng ~weights:[| 1.0; 2.0; 0.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero-weight category never drawn" 0 counts.(2);
  Alcotest.(check bool) "ratio roughly 1:2" true
    (float_of_int counts.(1) /. float_of_int counts.(0) > 1.6)

let test_dist_categorical_invalid () =
  let rng = Rng.create ~seed:0 in
  Alcotest.check_raises "all zero"
    (Invalid_argument "Dist.categorical: all weights zero") (fun () ->
      ignore (Dist.categorical rng ~weights:[| 0.0; 0.0 |]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Dist.categorical: negative weight") (fun () ->
      ignore (Dist.categorical rng ~weights:[| 1.0; -1.0 |]))

let test_dist_bernoulli_extremes () =
  let rng = Rng.create ~seed:19 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=0 never true" false (Dist.bernoulli rng ~p:0.0);
    Alcotest.(check bool) "p=1 always true" true (Dist.bernoulli rng ~p:1.0)
  done

(* --- Stats --- *)

let test_running_stats () =
  let r = Stats.Running.create () in
  List.iter (Stats.Running.add r) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.Running.count r);
  feq "mean" 2.5 (Stats.Running.mean r);
  feq "sum" 10.0 (Stats.Running.sum r);
  feq "min" 1.0 (Stats.Running.min r);
  feq "max" 4.0 (Stats.Running.max r);
  feq ~eps:1e-6 "stddev" (sqrt 1.25) (Stats.Running.stddev r)

let test_running_empty () =
  let r = Stats.Running.create () in
  feq "mean of empty" 0.0 (Stats.Running.mean r);
  Alcotest.check_raises "min of empty" (Invalid_argument "Stats.Running.min: empty")
    (fun () -> ignore (Stats.Running.min r))

let test_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  feq "p0" 1.0 (Stats.percentile xs 0.0);
  feq "p50" 3.0 (Stats.percentile xs 50.0);
  feq "p100" 5.0 (Stats.percentile xs 100.0);
  feq "p25 interpolates" 2.0 (Stats.percentile xs 25.0);
  feq "p98 of 5" 4.92 (Stats.percentile xs 98.0)

let test_percentile_does_not_mutate () =
  let xs = [| 3.0; 1.0; 2.0 |] in
  let _ = Stats.percentile xs 50.0 in
  Alcotest.(check (array (float 0.0))) "unchanged" [| 3.0; 1.0; 2.0 |] xs

let test_timeline () =
  let t = Stats.Timeline.create ~start:0.0 in
  Stats.Timeline.record t ~now:0.0 ~value:2.0;
  Stats.Timeline.record t ~now:10.0 ~value:4.0;
  (* 2.0 for 10s then 4.0 for 10s -> average 3.0 *)
  feq "time-weighted avg" 3.0 (Stats.Timeline.average t ~upto:20.0);
  feq "empty window" 0.0 (Stats.Timeline.average t ~upto:0.0)

let prop_percentile_bounds =
  QCheck.Test.make ~name:"percentile within min..max" ~count:300
    QCheck.(pair (list_of_size Gen.(1 -- 40) (float_bound_exclusive 1000.0))
              (float_bound_inclusive 100.0))
    (fun (xs, p) ->
      let arr = Array.of_list xs in
      let v = Stats.percentile arr p in
      let lo = Array.fold_left Float.min Float.infinity arr in
      let hi = Array.fold_left Float.max Float.neg_infinity arr in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

(* --- Event_queue --- *)

let test_event_order () =
  let q = Event_queue.create () in
  Event_queue.schedule q ~time:5.0 "c";
  Event_queue.schedule q ~time:1.0 "a";
  Event_queue.schedule q ~time:3.0 "b";
  let popped = List.init 3 (fun _ -> Option.get (Event_queue.pop q)) in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ]
    (List.map snd popped);
  Alcotest.(check bool) "drained" true (Event_queue.is_empty q)

let test_event_fifo_ties () =
  let q = Event_queue.create () in
  List.iter (fun s -> Event_queue.schedule q ~time:2.0 s) [ "x"; "y"; "z" ];
  let popped = List.init 3 (fun _ -> snd (Option.get (Event_queue.pop q))) in
  Alcotest.(check (list string)) "FIFO at equal time" [ "x"; "y"; "z" ] popped

let test_event_next_time () =
  let q = Event_queue.create () in
  Alcotest.(check (option (float 0.0))) "empty" None (Event_queue.next_time q);
  Event_queue.schedule q ~time:9.0 ();
  Alcotest.(check (option (float 0.0))) "next" (Some 9.0)
    (Event_queue.next_time q);
  Alcotest.(check int) "length" 1 (Event_queue.length q)

let suite =
  [
    Alcotest.test_case "units conversions" `Quick test_units;
    Alcotest.test_case "pp_duration" `Quick test_pp_duration;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng copy" `Quick test_rng_copy;
    Alcotest.test_case "rng invalid bound" `Quick test_rng_int_invalid;
    QCheck_alcotest.to_alcotest prop_rng_int_range;
    QCheck_alcotest.to_alcotest prop_rng_unit_float;
    Alcotest.test_case "exponential mean" `Quick test_dist_mean_exponential;
    Alcotest.test_case "log-uniform bounds" `Quick test_dist_log_uniform_bounds;
    Alcotest.test_case "categorical" `Quick test_dist_categorical;
    Alcotest.test_case "categorical invalid" `Quick test_dist_categorical_invalid;
    Alcotest.test_case "bernoulli extremes" `Quick test_dist_bernoulli_extremes;
    Alcotest.test_case "running stats" `Quick test_running_stats;
    Alcotest.test_case "running stats empty" `Quick test_running_empty;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "percentile pure" `Quick test_percentile_does_not_mutate;
    Alcotest.test_case "timeline average" `Quick test_timeline;
    QCheck_alcotest.to_alcotest prop_percentile_bounds;
    Alcotest.test_case "event queue order" `Quick test_event_order;
    Alcotest.test_case "event queue FIFO ties" `Quick test_event_fifo_ties;
    Alcotest.test_case "event queue next_time" `Quick test_event_next_time;
  ]
