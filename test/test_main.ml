(* Test entry point: one alcotest run over all module suites. *)

let () =
  Alcotest.run "schedsearch"
    [
      ("simcore.heap", Test_heap.suite);
      ("simcore.misc", Test_simcore_misc.suite);
      ("workload", Test_workload.suite);
      ("workload.swf", Test_swf.suite);
      ("workload.generator", Test_generator.suite);
      ("workload.model", Test_model.suite);
      ("workload.arrivals", Test_arrival_stats.suite);
      ("workload.slice", Test_slice.suite);
      ("cluster.profile", Test_profile.suite);
      ("cluster.misc", Test_cluster_misc.suite);
      ("metrics", Test_metrics.suite);
      ("sched", Test_sched.suite);
      ("core.objective", Test_objective.suite);
      ("core.tree_enum", Test_tree_enum.suite);
      ("core.search", Test_search.suite);
      ("core.policy", Test_search_policy.suite);
      ("sched.variants", Test_variants.suite);
      ("sched.more", Test_sched_more.suite);
      ("sim.engine", Test_engine.suite);
      ("check", Test_check.suite);
      ("sim.gantt", Test_gantt.suite);
      ("metrics.export", Test_export.suite);
      ("sim.queueing-theory", Test_queueing_theory.suite);
      ("experiments.spec", Test_policy_spec.suite);
      ("simcore.pool", Test_pool.suite);
      ("simcore.telemetry", Test_telemetry.suite);
      ("sim.series", Test_series.suite);
      ("experiments.parallel", Test_parallel_determinism.suite);
      ("fairshare", Test_fairshare.suite);
      ("cross-policy", Test_cross_policy.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("formatting", Test_formatting.suite);
      ("integration", Test_integration.suite);
    ]
