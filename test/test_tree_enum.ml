(* Tests reproducing Figure 1 exactly: which paths LDS and DDS visit,
   in which order, and the tree-size table. *)

open Core

let paths algo ~n ~iteration = Tree_enum.paths_in_iteration algo ~n ~iteration

(* The paper labels jobs 1..4; our indices are 0-based. *)
let labelled = List.map (List.map (fun i -> i + 1))

let test_iteration0 () =
  List.iter
    (fun algo ->
      Alcotest.(check (list (list int)))
        "iteration 0 is the heuristic path"
        [ [ 1; 2; 3; 4 ] ]
        (labelled (paths algo ~n:4 ~iteration:0)))
    [ Search.Lds; Search.Dds ]

let test_lds_iteration1 () =
  (* Figure 1(b): the six paths containing exactly one discrepancy,
     explored left to right. *)
  Alcotest.(check (list (list int)))
    "LDS 1st iteration"
    [
      [ 1; 2; 4; 3 ]; [ 1; 3; 2; 4 ]; [ 1; 4; 2; 3 ];
      [ 2; 1; 3; 4 ]; [ 3; 1; 2; 4 ]; [ 4; 1; 2; 3 ];
    ]
    (labelled (paths Search.Lds ~n:4 ~iteration:1))

let test_lds_iteration2_count () =
  (* Figure 1(c): eleven paths containing two discrepancies. *)
  Alcotest.(check int) "LDS 2nd iteration size" 11
    (List.length (paths Search.Lds ~n:4 ~iteration:2));
  List.iter
    (fun p ->
      Alcotest.(check int) "exactly two discrepancies" 2
        (Tree_enum.discrepancies p))
    (paths Search.Lds ~n:4 ~iteration:2)

let test_dds_iteration1 () =
  (* Figure 1(e): three paths with one discrepancy at depth one. *)
  Alcotest.(check (list (list int)))
    "DDS 1st iteration"
    [ [ 2; 1; 3; 4 ]; [ 3; 1; 2; 4 ]; [ 4; 1; 2; 3 ] ]
    (labelled (paths Search.Dds ~n:4 ~iteration:1))

let test_dds_iteration2 () =
  (* Figure 1(f): eight paths - any branch at depth one, a discrepancy
     at depth two, heuristic below (0-1-3-2-4 and 0-2-3-1-4 are the
     paper's examples). *)
  let expected =
    [
      [ 1; 3; 2; 4 ]; [ 1; 4; 2; 3 ];
      [ 2; 3; 1; 4 ]; [ 2; 4; 1; 3 ];
      [ 3; 2; 1; 4 ]; [ 3; 4; 1; 2 ];
      [ 4; 2; 1; 3 ]; [ 4; 3; 1; 2 ];
    ]
  in
  Alcotest.(check (list (list int)))
    "DDS 2nd iteration" expected
    (labelled (paths Search.Dds ~n:4 ~iteration:2))

let test_dds_biases_high_discrepancies_earlier () =
  (* Section 2.2's example: 0-4-3-1-2 is the 12th path explored under
     DDS but the 18th under LDS. *)
  let position algo =
    let all = Tree_enum.all_paths algo ~n:4 in
    let rec index i = function
      | [] -> Alcotest.fail "path not visited"
      | p :: rest -> if p = [ 3; 2; 0; 1 ] then i else index (i + 1) rest
    in
    index 1 all
  in
  Alcotest.(check int) "DDS visits 0-4-3-1-2 12th" 12 (position Search.Dds);
  Alcotest.(check int) "LDS visits 0-4-3-1-2 18th" 18 (position Search.Lds)

let test_partition_all_paths () =
  (* Every iteration scheme visits each of the n! paths exactly once. *)
  List.iter
    (fun algo ->
      List.iter
        (fun n ->
          let visited = Tree_enum.all_paths algo ~n in
          let expected = int_of_float (Tree_enum.path_count ~n) in
          Alcotest.(check int)
            (Printf.sprintf "%s covers %d! paths" (Search.algorithm_name algo) n)
            expected (List.length visited);
          let unique = List.sort_uniq compare visited in
          Alcotest.(check int) "no duplicates" expected (List.length unique))
        [ 1; 2; 3; 4; 5 ])
    [ Search.Dfs; Search.Lds; Search.Dds ]

let test_lds_original_supersets () =
  (* original LDS iteration k = union of improved-LDS iterations 0..k *)
  for k = 0 to 3 do
    let original = paths Search.Lds_original ~n:4 ~iteration:k in
    let unioned =
      List.concat_map
        (fun j -> paths Search.Lds ~n:4 ~iteration:j)
        (List.init (k + 1) Fun.id)
    in
    Alcotest.(check int)
      (Printf.sprintf "iteration %d size" k)
      (List.length unioned) (List.length original);
    List.iter
      (fun p ->
        Alcotest.(check bool) "member" true (List.mem p original))
      unioned
  done

let test_discrepancy_counting () =
  Alcotest.(check int) "heuristic path" 0 (Tree_enum.discrepancies [ 0; 1; 2; 3 ]);
  Alcotest.(check int) "worst path" 3 (Tree_enum.discrepancies [ 3; 2; 1; 0 ]);
  (* choosing the 3rd-ranked child still counts as ONE discrepancy *)
  Alcotest.(check int) "deep branch = one discrepancy" 1
    (Tree_enum.discrepancies [ 3; 0; 1; 2 ]);
  Alcotest.(check (option int)) "no discrepancy" None
    (Tree_enum.deepest_discrepancy [ 0; 1; 2 ]);
  Alcotest.(check (option int)) "deepest at 1" (Some 1)
    (Tree_enum.deepest_discrepancy [ 0; 2; 1 ])

let test_figure_1d_sizes () =
  (* Figure 1(d): #paths and #nodes for n = 1, 2, 3, 4, 10, 15. *)
  let check n paths nodes =
    Alcotest.(check (float 0.5))
      (Printf.sprintf "paths n=%d" n)
      paths (Tree_enum.path_count ~n);
    Alcotest.(check (float (Float.max 0.5 (nodes *. 1e-6))))
      (Printf.sprintf "nodes n=%d" n)
      nodes (Tree_enum.node_count ~n)
  in
  check 1 1.0 1.0;
  check 2 2.0 4.0;
  check 3 6.0 15.0;
  check 4 24.0 64.0;
  check 10 3_628_800.0 9_864_100.0;
  (* the paper prints 1,307,674M paths and 3,554,627M nodes *)
  check 15 1.307674368e12 3.554627472075286e12

let suite =
  [
    Alcotest.test_case "iteration 0" `Quick test_iteration0;
    Alcotest.test_case "LDS iteration 1 (Fig 1b)" `Quick test_lds_iteration1;
    Alcotest.test_case "LDS iteration 2 (Fig 1c)" `Quick
      test_lds_iteration2_count;
    Alcotest.test_case "DDS iteration 1 (Fig 1e)" `Quick test_dds_iteration1;
    Alcotest.test_case "DDS iteration 2 (Fig 1f)" `Quick test_dds_iteration2;
    Alcotest.test_case "DDS bias (Sec 2.2 example)" `Quick
      test_dds_biases_high_discrepancies_earlier;
    Alcotest.test_case "iterations partition the tree" `Quick
      test_partition_all_paths;
    Alcotest.test_case "original LDS supersets" `Quick
      test_lds_original_supersets;
    Alcotest.test_case "discrepancy counting" `Quick test_discrepancy_counting;
    Alcotest.test_case "Figure 1(d) sizes" `Quick test_figure_1d_sizes;
  ]
