(* Tests for outcome export (CSV and SWF-with-waits). *)

let outcome ?(id = 0) ?(user = 0) ?(submit = 0.0) ~wait () =
  let job = Helpers.job ~id ~submit ~nodes:4 ~runtime:600.0 () in
  let job = if user > 0 then Workload.Job.with_user user job else job in
  Metrics.Outcome.v ~job ~start:(submit +. wait)
    ~finish:(submit +. wait +. 600.0)

let test_csv_row () =
  let row = Metrics.Export.csv_row (outcome ~id:3 ~user:7 ~wait:120.0 ()) in
  Alcotest.(check string) "row"
    "3,7,4,0,120,720,600,600,120,1.2000" row

let test_csv_file () =
  let path = Filename.temp_file "export" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Metrics.Export.to_csv path
        [ outcome ~id:1 ~submit:50.0 ~wait:0.0 (); outcome ~id:0 ~wait:10.0 () ];
      let ic = open_in path in
      let lines = List.init 3 (fun _ -> input_line ic) in
      close_in ic;
      Alcotest.(check string) "header" Metrics.Export.csv_header
        (List.nth lines 0);
      (* submit order: job 0 (t=0) before job 1 (t=50) *)
      Alcotest.(check bool) "sorted by submit" true
        (String.length (List.nth lines 1) > 0
        && (List.nth lines 1).[0] = '0'))

let test_swf_roundtrip_with_waits () =
  let path = Filename.temp_file "export" ".swf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Metrics.Export.to_swf path ~comments:[ "; simulated" ]
        [ outcome ~id:0 ~wait:300.0 () ];
      match Workload.Swf.of_file path with
      | Error e -> Alcotest.fail e
      | Ok r ->
          Alcotest.(check int) "one job" 1
            (Workload.Trace.length r.Workload.Swf.trace);
          (* the wait field is carried in the file (3rd column) *)
          let ic = open_in path in
          let _comment = input_line ic in
          let line = input_line ic in
          close_in ic;
          let fields = String.split_on_char ' ' line in
          Alcotest.(check string) "wait field" "300" (List.nth fields 2))

let suite =
  [
    Alcotest.test_case "csv row" `Quick test_csv_row;
    Alcotest.test_case "csv file" `Quick test_csv_file;
    Alcotest.test_case "swf with waits" `Quick test_swf_roundtrip_with_waits;
  ]
