(* Telemetry primitives (Simcore.Telemetry), the Search probe, and the
   decision-trace export: counters/histograms honour the global switch,
   the probe agrees with Search.result, probe recording allocates
   nothing on the hot path, and trace export is independent of the
   domain-pool width. *)

module T = Simcore.Telemetry

(* Every test restores the process-wide switch it flips. *)
let with_enabled v f =
  let saved = T.enabled () in
  T.set_enabled v;
  Fun.protect f ~finally:(fun () -> T.set_enabled saved)

(* --- counters --- *)

let test_counter_basics () =
  with_enabled true (fun () ->
      let c = T.Counter.create "nodes" in
      Alcotest.(check string) "name" "nodes" (T.Counter.name c);
      Alcotest.(check int) "fresh" 0 (T.Counter.value c);
      T.Counter.incr c;
      T.Counter.incr c;
      T.Counter.add c 40;
      Alcotest.(check int) "incr+add" 42 (T.Counter.value c);
      T.Counter.reset c;
      Alcotest.(check int) "reset" 0 (T.Counter.value c))

let test_counter_switch_off () =
  with_enabled false (fun () ->
      let c = T.Counter.create "off" in
      T.Counter.incr c;
      T.Counter.add c 99;
      Alcotest.(check int) "off = no-op" 0 (T.Counter.value c));
  (* flipping the switch off mid-flight freezes, not clears *)
  with_enabled true (fun () ->
      let c = T.Counter.create "freeze" in
      T.Counter.add c 7;
      T.set_enabled false;
      T.Counter.add c 100;
      Alcotest.(check int) "frozen at 7" 7 (T.Counter.value c))

(* --- histogram bucket geometry --- *)

let bucket_boundaries_qcheck =
  QCheck.Test.make ~count:1000 ~name:"histogram bucket_of within [lo, hi]"
    QCheck.int (fun v ->
      let b = T.Histogram.bucket_of v in
      b >= 0
      && b < T.Histogram.buckets
      && T.Histogram.bucket_lo b <= v
      && v <= T.Histogram.bucket_hi b)

let test_bucket_edges () =
  (* every bucket's own endpoints map back to it *)
  for b = 0 to T.Histogram.buckets - 1 do
    Alcotest.(check int)
      (Printf.sprintf "bucket_of (lo %d)" b)
      b
      (T.Histogram.bucket_of (T.Histogram.bucket_lo b));
    Alcotest.(check int)
      (Printf.sprintf "bucket_of (hi %d)" b)
      b
      (T.Histogram.bucket_of (T.Histogram.bucket_hi b))
  done;
  (* the log2 spine: powers of two open a fresh bucket *)
  Alcotest.(check int) "0" 0 (T.Histogram.bucket_of 0);
  Alcotest.(check int) "1" 1 (T.Histogram.bucket_of 1);
  Alcotest.(check int) "2" 2 (T.Histogram.bucket_of 2);
  Alcotest.(check int) "3" 2 (T.Histogram.bucket_of 3);
  Alcotest.(check int) "4" 3 (T.Histogram.bucket_of 4);
  Alcotest.(check int) "1024" 11 (T.Histogram.bucket_of 1024);
  Alcotest.(check int) "max_int" (T.Histogram.buckets - 1)
    (T.Histogram.bucket_of max_int);
  Alcotest.(check int) "negative -> 0" 0 (T.Histogram.bucket_of (-5))

let test_histogram_observe_percentile () =
  with_enabled true (fun () ->
      let h = T.Histogram.create "latency" in
      Alcotest.(check (float 0.0)) "empty percentile" 0.0
        (T.Histogram.percentile h 50.0);
      List.iter (T.Histogram.observe h) [ 1; 2; 4; 8; 1000; 1000 ];
      Alcotest.(check int) "count" 6 (T.Histogram.count h);
      Alcotest.(check int) "total" 2015 (T.Histogram.total h);
      Alcotest.(check int) "bucket_count 1000s" 2
        (T.Histogram.bucket_count h (T.Histogram.bucket_of 1000));
      (* p100 lands in the top occupied bucket; interpolation keeps it
         within that bucket's range *)
      let p100 = T.Histogram.percentile h 100.0 in
      Alcotest.(check bool) "p100 in 1000's bucket" true
        (T.Histogram.bucket_of (int_of_float p100)
        = T.Histogram.bucket_of 1000);
      let p50 = T.Histogram.percentile h 50.0 in
      Alcotest.(check bool) "p50 below p100" true (p50 <= p100);
      Alcotest.check_raises "p out of range"
        (Invalid_argument "Telemetry.Histogram.percentile: p out of [0, 100]")
        (fun () -> ignore (T.Histogram.percentile h 101.0));
      T.Histogram.reset h;
      Alcotest.(check int) "reset count" 0 (T.Histogram.count h));
  with_enabled false (fun () ->
      let h = T.Histogram.create "off" in
      T.Histogram.observe h 5;
      Alcotest.(check int) "off = no-op" 0 (T.Histogram.count h))

(* --- the Search probe --- *)

let test_probe_matches_result () =
  let probe = T.Probe.create () in
  let state = Experiments.Overhead.synthetic_state ~seed:5 () in
  let r = Core.Search.run ~probe Core.Search.Dds ~budget:2000 state in
  Alcotest.(check int) "nodes" r.Core.Search.nodes_visited probe.T.Probe.nodes;
  Alcotest.(check int) "leaves" r.Core.Search.leaves_evaluated
    probe.T.Probe.leaves;
  Alcotest.(check int) "iterations" r.Core.Search.iterations
    probe.T.Probe.iterations;
  Alcotest.(check bool) "exhausted" r.Core.Search.exhausted
    probe.T.Probe.exhausted;
  Alcotest.(check int) "budget" 2000 probe.T.Probe.budget;
  Alcotest.(check bool) "at least the heuristic incumbent" true
    (probe.T.Probe.improvements >= 1);
  Alcotest.(check bool) "winner iteration sane" true
    (probe.T.Probe.winner_iteration >= 0
    && probe.T.Probe.winner_iteration <= r.Core.Search.iterations + 1)

let test_probe_exhaustive_and_reuse () =
  let probe = T.Probe.create () in
  (* small exhaustive search: the tree fits in the budget *)
  let state = Experiments.Overhead.synthetic_state ~n_waiting:4 ~seed:9 () in
  let r = Core.Search.run ~probe Core.Search.Dds ~budget:1_000_000 state in
  Alcotest.(check bool) "small tree exhausted" true r.Core.Search.exhausted;
  Alcotest.(check bool) "probe exhausted" true probe.T.Probe.exhausted;
  (* the same probe reused on another run is fully overwritten *)
  let state2 = Experiments.Overhead.synthetic_state ~seed:11 () in
  let r2 = Core.Search.run ~probe Core.Search.Dds ~budget:500 state2 in
  Alcotest.(check int) "reused probe tracks second run"
    r2.Core.Search.nodes_visited probe.T.Probe.nodes;
  Alcotest.(check bool) "budget-bound run not exhausted" false
    probe.T.Probe.exhausted;
  T.Probe.reset probe;
  Alcotest.(check int) "reset nodes" 0 probe.T.Probe.nodes;
  Alcotest.(check int) "reset improvements" 0 probe.T.Probe.improvements;
  Alcotest.(check int) "reset winner_depth" (-1) probe.T.Probe.winner_depth

(* --- allocation: the probe must not touch the per-node budget --- *)

(* The node visit itself: a place/unplace walk with no leaf
   evaluation.  In release this is exactly 0 words (perf-json numbers
   are recorded there); the dev profile pays a few boxed floats at
   uninlined module boundaries (~3 words/node today), so the test
   bounds it rather than pinning zero — a per-node record or closure
   would blow well past the bound. *)
let test_node_visit_allocation_bounded () =
  let st = Experiments.Overhead.synthetic_state ~seed:123 () in
  let depth = 10 in
  let walk () =
    for d = 0 to depth - 1 do
      let j = Core.Search_state.first_unused st in
      Core.Search_state.place st ~depth:d ~job:j
    done;
    for d = depth - 1 downto 0 do Core.Search_state.unplace st ~depth:d done
  in
  walk ();
  (* warm-up *)
  let reps = 500 in
  let before = Gc.minor_words () in
  for _ = 1 to reps do
    walk ()
  done;
  let per_node =
    (Gc.minor_words () -. before) /. float_of_int (reps * 2 * depth)
  in
  Alcotest.(check bool)
    (Printf.sprintf "place/unplace allocates %.2f <= 8 words/node" per_node)
    true (per_node <= 8.0)

(* Minor-heap words allocated by one search over a fresh synthetic
   state.  DDS is deterministic, so identical seeds and budgets
   allocate identically — any probe-induced difference shows up as an
   exact word delta. *)
let alloc_words ?probe ~budget () =
  let state = Experiments.Overhead.synthetic_state ~seed:123 () in
  let before = Gc.minor_words () in
  let r = Core.Search.run ?probe Core.Search.Dds ~budget state in
  (Gc.minor_words () -. before, r.Core.Search.nodes_visited)

let test_probe_allocates_nothing () =
  (* warm-up: first run pays one-time lazy setup *)
  ignore (alloc_words ~budget:9000 ());
  let w_off, n_off = alloc_words ~budget:9000 () in
  let probe = T.Probe.create () in
  let w_on, n_on = alloc_words ~probe ~budget:9000 () in
  Alcotest.(check int) "same traversal" n_off n_on;
  Alcotest.(check (float 0.0)) "probe adds exactly 0 words" w_off w_on;
  (* and the whole search stays within a dev-profile allocation
     envelope per node (leaf objective snapshots included) *)
  let per_node = w_on /. float_of_int n_on in
  Alcotest.(check bool)
    (Printf.sprintf "search allocates %.2f <= 64 words/node" per_node)
    true (per_node <= 64.0)

(* --- decision-log ring buffer --- *)

let test_decision_log_ring () =
  let log = Sim.Decision_log.create ~capacity:4 ~policy:"p" () in
  let probe = T.Probe.create () in
  for i = 0 to 5 do
    probe.T.Probe.nodes <- 100 * i;
    probe.T.Probe.budget <- 1000;
    Sim.Decision_log.record log ~time:(float_of_int i) ~queue:i ~started:0
      ~probe:(Some probe)
  done;
  Alcotest.(check int) "recorded" 6 (Sim.Decision_log.recorded log);
  Alcotest.(check int) "dropped" 2 (Sim.Decision_log.dropped log);
  let ds = Sim.Decision_log.decisions log in
  Alcotest.(check (list int)) "oldest dropped, order kept" [ 2; 3; 4; 5 ]
    (List.map (fun d -> d.Sim.Decision_log.seq) ds);
  Alcotest.(check int) "probe snapshotted, not aliased" 200
    (List.hd ds).Sim.Decision_log.nodes;
  (* a decision without a probe records zero search effort *)
  Sim.Decision_log.record log ~time:7.0 ~queue:0 ~started:0 ~probe:None;
  let last = List.hd (List.rev (Sim.Decision_log.decisions log)) in
  Alcotest.(check bool) "unsearched" false last.Sim.Decision_log.searched;
  Alcotest.(check int) "no nodes" 0 last.Sim.Decision_log.nodes

(* --- trace export is pool-width independent --- *)

let with_env bindings f =
  let saved = List.map (fun (k, _) -> (k, Sys.getenv_opt k)) bindings in
  List.iter (fun (k, v) -> Unix.putenv k v) bindings;
  Fun.protect f ~finally:(fun () ->
      List.iter
        (fun (k, v) -> Unix.putenv k (Option.value v ~default:""))
        saved)

let test_trace_export_jobs_invariant () =
  with_env
    [
      ("REPRO_SCALE", "0.1");
      ("REPRO_MONTHS", "1/04");
      ("REPRO_MAXL", "1000");
    ]
    (fun () ->
      let saved_jobs = Experiments.Common.jobs () in
      Fun.protect
        ~finally:(fun () ->
          Experiments.Common.set_tracing false;
          Experiments.Common.set_jobs saved_jobs;
          Experiments.Common.reset_caches ();
          Experiments.Common.shutdown_pool ())
        (fun () ->
          Experiments.Common.set_tracing true;
          let render jobs =
            Experiments.Common.set_jobs jobs;
            Experiments.Common.reset_caches ();
            (* warm the run cache through the pool; discard the tables *)
            let sink = Buffer.create 4096 in
            let sfmt = Format.formatter_of_buffer sink in
            Experiments.Fig3.run sfmt;
            Format.pp_print_flush sfmt ();
            let buf = Buffer.create 4096 in
            let fmt = Format.formatter_of_buffer buf in
            Experiments.Common.pp_traces fmt;
            Format.pp_print_flush fmt ();
            (Buffer.contents buf, Experiments.Common.chrome_trace_document ())
          in
          let jsonl_seq, chrome_seq = render 1 in
          let jsonl_par, chrome_par = render 4 in
          Alcotest.(check bool) "traced something" true
            (String.length jsonl_seq > 0);
          let contains hay needle =
            let n = String.length hay and m = String.length needle in
            let rec go i =
              i + m <= n && (String.sub hay i m = needle || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool) "jsonl carries the schema" true
            (contains jsonl_seq "decision_trace/1");
          Alcotest.(check string) "JSONL independent of jobs" jsonl_seq
            jsonl_par;
          Alcotest.(check string) "Chrome view independent of jobs"
            chrome_seq chrome_par))

let suite =
  [
    Alcotest.test_case "counter incr/add/reset" `Quick test_counter_basics;
    Alcotest.test_case "counter ignores writes while off" `Quick
      test_counter_switch_off;
    QCheck_alcotest.to_alcotest bucket_boundaries_qcheck;
    Alcotest.test_case "histogram bucket edges" `Quick test_bucket_edges;
    Alcotest.test_case "histogram observe/percentile/reset" `Quick
      test_histogram_observe_percentile;
    Alcotest.test_case "probe agrees with Search.result" `Quick
      test_probe_matches_result;
    Alcotest.test_case "probe exhaustion + reuse + reset" `Quick
      test_probe_exhaustive_and_reuse;
    Alcotest.test_case "node visit allocation bounded" `Quick
      test_node_visit_allocation_bounded;
    Alcotest.test_case "probe adds zero allocation" `Quick
      test_probe_allocates_nothing;
    Alcotest.test_case "decision-log ring keeps the newest" `Quick
      test_decision_log_ring;
    Alcotest.test_case "trace export independent of REPRO_JOBS" `Quick
      test_trace_export_jobs_invariant;
  ]
