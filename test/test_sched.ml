(* Tests for the priority functions and backfill schedulers. *)

open Sched

let r_star (j : Workload.Job.t) = j.runtime

let context ?(now = 0.0) ?(capacity = 16) ~waiting ~running () =
  let machine = Cluster.Machine.v ~nodes:capacity in
  let rs = Cluster.Running_set.create ~machine in
  List.iter
    (fun (id, nodes, start, runtime) ->
      let job = Helpers.job ~id ~nodes ~runtime ~submit:(Float.max 0.0 start) () in
      Cluster.Running_set.add rs
        {
          Cluster.Running_set.job;
          start;
          finish = start +. runtime;
          est_finish = start +. runtime;
        })
    running;
  { Policy.now; waiting; running = rs; r_star }

(* --- Priority --- *)

let test_fcfs_priority () =
  let a = Helpers.job ~id:0 ~submit:10.0 () in
  let b = Helpers.job ~id:1 ~submit:5.0 () in
  Alcotest.(check bool) "earlier first" true
    (Priority.fcfs.Priority.compare ~now:20.0 ~r_star b a < 0)

let test_sjf_priority () =
  let short = Helpers.job ~id:0 ~runtime:60.0 () in
  let long = Helpers.job ~id:1 ~runtime:3600.0 () in
  Alcotest.(check bool) "short first" true
    (Priority.sjf.Priority.compare ~now:0.0 ~r_star short long < 0)

let test_lxf_priority () =
  (* same wait, shorter job has larger expansion factor *)
  let short = Helpers.job ~id:0 ~submit:0.0 ~runtime:600.0 () in
  let long = Helpers.job ~id:1 ~submit:0.0 ~runtime:36000.0 () in
  Alcotest.(check bool) "larger xf first" true
    (Priority.lxf.Priority.compare ~now:3600.0 ~r_star short long < 0)

let test_expansion_factor () =
  let j = Helpers.job ~submit:0.0 ~runtime:3600.0 () in
  Alcotest.(check (float 1e-9)) "xf after one hour wait" 2.0
    (Priority.expansion_factor ~now:3600.0 ~r_star j);
  let tiny = Helpers.job ~submit:0.0 ~runtime:1.0 () in
  (* the one-minute floor keeps very short jobs from exploding *)
  Alcotest.(check (float 1e-9)) "floored xf" 61.0
    (Priority.expansion_factor ~now:3600.0 ~r_star tiny)

let test_lxf_w_prefers_waiters () =
  let p = Priority.lxf_w ~weight_per_hour:100.0 in
  let waited = Helpers.job ~id:0 ~submit:0.0 ~runtime:36000.0 () in
  let fresh = Helpers.job ~id:1 ~submit:35000.0 ~runtime:600.0 () in
  (* plain lxf prefers the fresh short job; a big wait weight flips it *)
  Alcotest.(check bool) "lxf prefers fresh short job" true
    (Priority.lxf.Priority.compare ~now:36000.0 ~r_star fresh waited < 0);
  Alcotest.(check bool) "lxf&w prefers the long waiter" true
    (p.Priority.compare ~now:36000.0 ~r_star waited fresh < 0)

(* --- Backfill --- *)

let test_backfill_starts_what_fits () =
  let waiting =
    [ Helpers.job ~id:0 ~nodes:8 (); Helpers.job ~id:1 ~submit:1.0 ~nodes:8 () ]
  in
  let ctx = context ~now:10.0 ~waiting ~running:[] () in
  let plan = Backfill.plan ~reservations:1 ~priority:Priority.fcfs ctx in
  Alcotest.(check (list int)) "both start" [ 0; 1 ]
    (List.map (fun (j : Workload.Job.t) -> j.id) plan.Backfill.start_now)

let test_backfill_reserves_blocked_head () =
  (* 12 busy of 16 until t=100; head needs 8 -> reservation at 100 *)
  let waiting = [ Helpers.job ~id:0 ~nodes:8 () ] in
  let ctx =
    context ~now:0.0 ~waiting ~running:[ (99, 12, -50.0, 150.0) ] ()
  in
  let plan = Backfill.plan ~reservations:1 ~priority:Priority.fcfs ctx in
  Alcotest.(check int) "nothing starts" 0 (List.length plan.Backfill.start_now);
  match plan.Backfill.reserved with
  | [ (j, at) ] ->
      Alcotest.(check int) "head reserved" 0 j.Workload.Job.id;
      Alcotest.(check (float 1e-6)) "at release time" 100.0 at
  | _ -> Alcotest.fail "expected exactly one reservation"

let test_backfill_respects_reservation () =
  (* Head job (8 nodes) reserved at t=100.  A 4-node backfill candidate
     fits now only if it finishes by t=100 (4 free now). *)
  let running = [ (99, 12, -50.0, 150.0) ] in
  let head = Helpers.job ~id:0 ~nodes:8 () in
  let short = Helpers.job ~id:1 ~submit:1.0 ~nodes:4 ~runtime:50.0 () in
  let long = Helpers.job ~id:2 ~submit:2.0 ~nodes:4 ~runtime:500.0 () in
  let ctx = context ~now:0.0 ~waiting:[ head; short; long ] ~running () in
  let plan = Backfill.plan ~reservations:1 ~priority:Priority.fcfs ctx in
  Alcotest.(check (list int)) "only the harmless job backfills" [ 1 ]
    (List.map (fun (j : Workload.Job.t) -> j.id) plan.Backfill.start_now)

let test_backfill_long_backfill_behind_reservation () =
  (* The long 4-node job CAN backfill if the reservation leaves slack:
     head needs 8, release at t=100 frees 12, so 4 nodes stay free
     through the reservation. *)
  let running = [ (99, 12, -50.0, 150.0) ] in
  let head = Helpers.job ~id:0 ~nodes:8 () in
  let long = Helpers.job ~id:2 ~submit:2.0 ~nodes:4 ~runtime:500.0 () in
  let ctx = context ~now:0.0 ~waiting:[ head; long ] ~running () in
  let plan = Backfill.plan ~reservations:1 ~priority:Priority.fcfs ctx in
  Alcotest.(check (list int)) "long job backfills into slack" [ 2 ]
    (List.map (fun (j : Workload.Job.t) -> j.id) plan.Backfill.start_now)

let test_backfill_priority_order_matters () =
  (* 8 free; two 8-node jobs; LXF should pick the one with larger xf *)
  let old_long = Helpers.job ~id:0 ~submit:0.0 ~nodes:8 ~runtime:36000.0 () in
  let new_short = Helpers.job ~id:1 ~submit:3500.0 ~nodes:8 ~runtime:60.0 () in
  let ctx =
    context ~now:3600.0 ~waiting:[ old_long; new_short ]
      ~running:[ (99, 8, 0.0, 100000.0) ] ()
  in
  let fcfs_plan = Backfill.plan ~reservations:1 ~priority:Priority.fcfs ctx in
  let lxf_plan = Backfill.plan ~reservations:1 ~priority:Priority.lxf ctx in
  Alcotest.(check (list int)) "fcfs starts the older" [ 0 ]
    (List.map (fun (j : Workload.Job.t) -> j.id) fcfs_plan.Backfill.start_now);
  Alcotest.(check (list int)) "lxf starts the larger-xf job" [ 1 ]
    (List.map (fun (j : Workload.Job.t) -> j.id) lxf_plan.Backfill.start_now)

let test_policy_names () =
  Alcotest.(check string) "fcfs name" "FCFS-backfill"
    Backfill.fcfs.Policy.name;
  Alcotest.(check string) "lxf name" "LXF-backfill" Backfill.lxf.Policy.name;
  Alcotest.(check bool) "conservative name" true
    (Helpers.contains (Conservative.policy ()).Policy.name "conservative")

let test_run_now_policy () =
  let waiting =
    [ Helpers.job ~id:0 ~nodes:12 (); Helpers.job ~id:1 ~submit:1.0 ~nodes:8 ();
      Helpers.job ~id:2 ~submit:2.0 ~nodes:4 () ]
  in
  let ctx = context ~now:10.0 ~waiting ~running:[] () in
  let started = Policy.run_now.Policy.decide ctx in
  Alcotest.(check (list int)) "greedy fill skips too-wide" [ 0; 2 ]
    (List.map (fun (j : Workload.Job.t) -> j.id) started)

(* Property: backfilled jobs never delay the highest-priority waiting
   job beyond its reservation. *)
let prop_backfill_preserves_reservation =
  QCheck.Test.make ~name:"backfill never delays the reservation" ~count:200
    QCheck.(small_int)
    (fun seed ->
      let rng = Simcore.Rng.create ~seed in
      let capacity = 16 in
      let running =
        List.init 3 (fun i ->
            (90 + i, 1 + Simcore.Rng.int rng 4, 0.0,
             60.0 +. Simcore.Rng.float rng 1000.0))
      in
      let waiting =
        List.init 8 (fun id ->
            Helpers.job ~id ~submit:(Simcore.Rng.float rng 50.0)
              ~nodes:(1 + Simcore.Rng.int rng capacity)
              ~runtime:(60.0 +. Simcore.Rng.float rng 2000.0)
              ())
      in
      let ctx = context ~now:60.0 ~capacity ~waiting ~running () in
      let head =
        List.hd (List.sort Workload.Job.compare_submit ctx.Policy.waiting)
      in
      let without_backfill =
        (* reservation computed with no other waiting jobs *)
        Backfill.plan ~reservations:1 ~priority:Priority.fcfs
          { ctx with Policy.waiting = [ head ] }
      in
      let full = Backfill.plan ~reservations:1 ~priority:Priority.fcfs ctx in
      match (without_backfill.Backfill.reserved, full.Backfill.reserved) with
      | [ (_, t0) ], [ (_, t1) ] -> t1 <= t0 +. 1e-6
      | [], _ -> true (* head started immediately: nothing to preserve *)
      | _ -> true)

let suite =
  [
    Alcotest.test_case "fcfs priority" `Quick test_fcfs_priority;
    Alcotest.test_case "sjf priority" `Quick test_sjf_priority;
    Alcotest.test_case "lxf priority" `Quick test_lxf_priority;
    Alcotest.test_case "expansion factor" `Quick test_expansion_factor;
    Alcotest.test_case "lxf&w weights waiters" `Quick test_lxf_w_prefers_waiters;
    Alcotest.test_case "backfill starts what fits" `Quick
      test_backfill_starts_what_fits;
    Alcotest.test_case "backfill reserves blocked head" `Quick
      test_backfill_reserves_blocked_head;
    Alcotest.test_case "backfill respects reservation" `Quick
      test_backfill_respects_reservation;
    Alcotest.test_case "backfill uses reservation slack" `Quick
      test_backfill_long_backfill_behind_reservation;
    Alcotest.test_case "priority order matters" `Quick
      test_backfill_priority_order_matters;
    Alcotest.test_case "policy names" `Quick test_policy_names;
    Alcotest.test_case "run-now policy" `Quick test_run_now_policy;
    QCheck_alcotest.to_alcotest prop_backfill_preserves_reservation;
  ]
