(* Tests for the parametric workload model. *)

open Workload

let test_deterministic () =
  let a = Model.generate ~seed:4 ~days:3.0 () in
  let b = Model.generate ~seed:4 ~days:3.0 () in
  Alcotest.(check int) "same size" (Trace.length a) (Trace.length b);
  Array.iteri
    (fun i (ja : Job.t) ->
      let jb = (Trace.jobs b).(i) in
      Alcotest.(check (float 1e-9)) "submit" ja.submit jb.Job.submit;
      Alcotest.(check int) "nodes" ja.nodes jb.Job.nodes)
    (Trace.jobs a)

let test_job_validity () =
  let params = Model.default in
  let t = Model.generate ~seed:5 ~days:5.0 () in
  Alcotest.(check bool) "non-empty" true (Trace.length t > 200);
  Array.iter
    (fun (j : Job.t) ->
      Alcotest.(check bool) "nodes within machine" true
        (j.nodes >= 1 && j.nodes <= params.Model.capacity);
      Alcotest.(check bool) "runtime bounded" true
        (j.runtime >= 10.0 && j.runtime <= params.Model.runtime_limit);
      Alcotest.(check bool) "requested >= runtime" true
        (j.requested >= j.runtime);
      Alcotest.(check bool) "has a user" true (j.user >= 1))
    (Trace.jobs t)

let test_serial_and_power2_fractions () =
  let t = Model.generate ~seed:6 ~days:20.0 () in
  let jobs = Trace.jobs t in
  let total = float_of_int (Array.length jobs) in
  let serial =
    Array.fold_left (fun acc (j : Job.t) -> if j.nodes = 1 then acc + 1 else acc) 0 jobs
  in
  let is_pow2 n = n land (n - 1) = 0 in
  let parallel_pow2 =
    Array.fold_left
      (fun acc (j : Job.t) ->
        if j.nodes > 1 && is_pow2 j.nodes then acc + 1 else acc)
      0 jobs
  in
  let parallel =
    Array.fold_left
      (fun acc (j : Job.t) -> if j.nodes > 1 then acc + 1 else acc)
      0 jobs
  in
  let serial_frac = float_of_int serial /. total in
  Alcotest.(check bool)
    (Printf.sprintf "serial fraction ~0.25 (got %.2f)" serial_frac)
    true
    (serial_frac > 0.18 && serial_frac < 0.32);
  let pow2_frac = float_of_int parallel_pow2 /. float_of_int parallel in
  Alcotest.(check bool)
    (Printf.sprintf "power-of-2 fraction ~0.75 (got %.2f)" pow2_frac)
    true
    (pow2_frac > 0.65 && pow2_frac < 0.85)

let test_measurement_window () =
  let t = Model.generate ~seed:7 ~days:4.0 () in
  Alcotest.(check (float 1.0)) "one-day warmup" Simcore.Units.day
    (Trace.measure_start t);
  Alcotest.(check (float 1.0)) "window span" (Simcore.Units.days 4.0)
    (Trace.measure_end t -. Trace.measure_start t)

let test_invalid_days () =
  Alcotest.check_raises "days <= 0"
    (Invalid_argument "Model.generate: days <= 0") (fun () ->
      ignore (Model.generate ~seed:1 ~days:0.0 ()))

let test_simulatable () =
  let t = Model.generate ~seed:8 ~days:2.0 () in
  let run =
    Sim.Run.simulate ~r_star:Sim.Engine.Actual ~policy:Sched.Backfill.fcfs t
  in
  Alcotest.(check bool) "jobs measured" true
    (run.Sim.Run.aggregate.Metrics.Aggregate.n_jobs > 0)

let suite =
  [
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "job validity" `Quick test_job_validity;
    Alcotest.test_case "size fractions" `Quick test_serial_and_power2_fractions;
    Alcotest.test_case "measurement window" `Quick test_measurement_window;
    Alcotest.test_case "invalid days" `Quick test_invalid_days;
    Alcotest.test_case "simulatable" `Quick test_simulatable;
  ]
