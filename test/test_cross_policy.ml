(* Cross-policy end-to-end properties: every policy in the library,
   driven over random mini workloads, must satisfy the fundamental
   scheduling invariants.  (The engine itself enforces capacity; these
   properties check completion, causality and work conservation at the
   whole-simulation level.) *)

let machine = Cluster.Machine.v ~nodes:16

let all_policies () =
  let search config = fst (Core.Search_policy.policy config) in
  [
    Sched.Backfill.fcfs;
    Sched.Backfill.lxf;
    Sched.Backfill.sjf;
    Sched.Backfill.policy (Sched.Priority.lxf_w ~weight_per_hour:0.02);
    Sched.Conservative.policy ();
    Sched.Selective.policy ();
    Sched.Lookahead.policy ();
    Sched.Relaxed.policy ();
    Sched.Multi_queue.policy ();
    Sched.Policy.run_now;
    search (Core.Search_policy.dds_lxf_dynb ~budget:150);
    search
      (Core.Search_policy.v ~algorithm:Core.Search.Lds
         ~heuristic:Core.Branching.Fcfs ~bound:(Core.Bound.fixed_hours 1.0)
         ~budget:150 ());
    search
      (Core.Search_policy.v ~algorithm:Core.Search.Lds_original
         ~heuristic:Core.Branching.Lxf ~bound:Core.Bound.dynamic ~budget:150
         ());
    search
      (Core.Search_policy.v ~prune:true ~local_search:true ~fairshare:1.5
         ~algorithm:Core.Search.Dds ~heuristic:Core.Branching.Lxf
         ~bound:Core.Bound.dynamic ~budget:150 ());
  ]

let outcomes_ok n (result : Sim.Engine.result) =
  let outcomes = result.Sim.Engine.outcomes in
  List.length outcomes = n
  && List.for_all
       (fun (o : Metrics.Outcome.t) ->
         o.start >= o.job.Workload.Job.submit -. 1e-9
         && Float.abs
              (o.finish -. o.start
              -. Float.min o.job.Workload.Job.runtime
                   o.job.Workload.Job.requested)
            < 1e-6)
       outcomes

let never_oversubscribed (result : Sim.Engine.result) =
  let events =
    List.concat_map
      (fun (o : Metrics.Outcome.t) ->
        [ (o.start, o.job.Workload.Job.nodes);
          (o.finish, -o.job.Workload.Job.nodes) ])
      result.Sim.Engine.outcomes
    |> List.sort (fun (ta, da) (tb, db) ->
           let c = Float.compare ta tb in
           if c <> 0 then c else Int.compare da db)
  in
  let current = ref 0 in
  List.for_all
    (fun (_, delta) ->
      current := !current + delta;
      !current <= machine.Cluster.Machine.nodes)
    events

let prop_all_policies_sound =
  QCheck.Test.make ~name:"all policies: complete, causal, within capacity"
    ~count:15 QCheck.small_int
    (fun seed ->
      let n = 30 in
      let trace =
        Helpers.mini_trace ~seed:(seed + 1) ~n ~capacity:16 ~horizon:4000.0 ()
      in
      let trace =
        Workload.Trace.map_jobs trace (fun j ->
            Workload.Job.with_user (1 + (j.Workload.Job.id mod 3)) j)
      in
      List.for_all
        (fun policy ->
          let result =
            Sim.Engine.run ~machine ~r_star:Sim.Engine.Actual ~policy trace
          in
          outcomes_ok n result && never_oversubscribed result)
        (all_policies ()))

let prop_estimators_sound =
  QCheck.Test.make ~name:"all estimators: complete and causal" ~count:15
    QCheck.small_int
    (fun seed ->
      let n = 30 in
      let trace = Helpers.mini_trace ~seed:(seed + 100) ~n ~capacity:16 () in
      List.for_all
        (fun r_star ->
          let result =
            Sim.Engine.run ~machine ~r_star ~policy:Sched.Backfill.lxf trace
          in
          outcomes_ok n result && never_oversubscribed result)
        [ Sim.Engine.Actual; Sim.Engine.Requested; Sim.Engine.Predicted ])

let test_profile_pp () =
  let p = Cluster.Profile.of_running ~now:0.0 ~capacity:128 [ (3600.0, 64) ] in
  Alcotest.(check string) "rendered" "[0.0s:64 1.00h:128]"
    (Format.asprintf "%a" Cluster.Profile.pp p)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_all_policies_sound;
    QCheck_alcotest.to_alcotest prop_estimators_sound;
    Alcotest.test_case "profile pp" `Quick test_profile_pp;
  ]
