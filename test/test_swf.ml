(* Tests for the SWF trace reader/writer. *)

open Workload

let sample =
  String.concat "\n"
    [
      "; Computer: test cluster";
      "; MaxNodes: 128";
      "1 0 10 3600 4 -1 -1 4 7200 -1 1 -1 -1 -1 -1 -1 -1 -1";
      "2 100 0 1800 8 -1 -1 -1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1";
      "";
      "3 200 5 60 1 -1 -1 2 120 -1 1 -1 -1 -1 -1 -1 -1 -1";
    ]

let parse s =
  match Swf.of_string s with
  | Ok r -> r
  | Error e -> Alcotest.fail ("parse error: " ^ e)

let test_parse_basic () =
  let r = parse sample in
  Alcotest.(check int) "three jobs" 3 (Trace.length r.Swf.trace);
  Alcotest.(check int) "no skips" 0 r.Swf.skipped;
  Alcotest.(check int) "two comments" 2 (List.length r.Swf.comments);
  let jobs = Trace.jobs r.Swf.trace in
  Alcotest.(check int) "job 0 nodes from requested procs" 4 jobs.(0).Job.nodes;
  Alcotest.(check (float 1e-9)) "job 0 requested time" 7200.0
    jobs.(0).Job.requested;
  (* job 1 has requested procs = -1: falls back to allocated procs *)
  Alcotest.(check int) "job 1 nodes fallback" 8 jobs.(1).Job.nodes;
  (* job 1 requested time = -1: falls back to runtime *)
  Alcotest.(check (float 1e-9)) "job 1 requested fallback" 1800.0
    jobs.(1).Job.requested

let test_parse_skips_unusable () =
  let bad = "5 0 0 -1 4 -1 -1 4 100 -1 0 -1 -1 -1 -1 -1 -1 -1" in
  let r = parse bad in
  Alcotest.(check int) "unusable skipped" 1 r.Swf.skipped;
  Alcotest.(check int) "no jobs" 0 (Trace.length r.Swf.trace)

let test_parse_malformed () =
  match Swf.of_string "1 2 3" with
  | Ok _ -> Alcotest.fail "expected parse error"
  | Error msg ->
      Alcotest.(check bool) "mentions line" true
        (Helpers.contains msg "line 1")

let test_requested_clamped_to_runtime () =
  (* requested time below actual runtime must be raised to runtime *)
  let line = "1 0 0 3600 2 -1 -1 2 60 -1 1 -1 -1 -1 -1 -1 -1 -1" in
  let r = parse line in
  let j = (Trace.jobs r.Swf.trace).(0) in
  Alcotest.(check (float 1e-9)) "requested >= runtime" 3600.0 j.Job.requested

let test_roundtrip_file () =
  let jobs =
    [
      Job.v ~id:0 ~submit:0.0 ~nodes:4 ~runtime:3600.0 ~requested:7200.0;
      Job.v ~id:1 ~submit:500.0 ~nodes:128 ~runtime:60.0 ~requested:60.0;
    ]
  in
  let t = Trace.v jobs in
  let path = Filename.temp_file "swf_test" ".swf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Swf.to_file ~comments:[ "; roundtrip" ] path t;
      match Swf.of_file path with
      | Error e -> Alcotest.fail e
      | Ok r ->
          Alcotest.(check int) "job count" 2 (Trace.length r.Swf.trace);
          Array.iteri
            (fun i (j : Job.t) ->
              let original = (Trace.jobs t).(i) in
              Alcotest.(check int) "nodes" original.Job.nodes j.Job.nodes;
              Alcotest.(check (float 0.51)) "submit" original.Job.submit
                j.Job.submit;
              Alcotest.(check (float 0.51)) "runtime" original.Job.runtime
                j.Job.runtime;
              Alcotest.(check (float 0.51)) "requested" original.Job.requested
                j.Job.requested)
            (Trace.jobs r.Swf.trace))

let test_generated_trace_roundtrip () =
  (* write a generated month as SWF and reparse: same job mix *)
  let profile = Month_profile.find "10/03" in
  let config = { Generator.default_config with scale = 0.05 } in
  let t = Generator.month ~config profile in
  let path = Filename.temp_file "swf_gen" ".swf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Swf.to_file path t;
      match Swf.of_file path with
      | Error e -> Alcotest.fail e
      | Ok r ->
          Alcotest.(check int) "job count preserved" (Trace.length t)
            (Trace.length r.Swf.trace);
          Alcotest.(check (float 0.01)) "demand preserved (to rounding)"
            1.0
            (Trace.total_demand r.Swf.trace /. Trace.total_demand t))

let test_fixture_file () =
  match Swf.of_file "fixtures/sample.swf" with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check int) "five jobs" 5 (Trace.length r.Swf.trace);
      Alcotest.(check int) "three header comments" 3
        (List.length r.Swf.comments);
      let jobs = Trace.jobs r.Swf.trace in
      Alcotest.(check int) "user from field 12" 11 jobs.(0).Job.user;
      Alcotest.(check int) "missing user -> 0" 0 jobs.(4).Job.user;
      Alcotest.(check int) "widest job" 128 jobs.(3).Job.nodes;
      (* requested below runtime is clamped up *)
      Alcotest.(check (float 1e-9)) "requested >= runtime" 86400.0
        jobs.(3).Job.requested;
      (* the fixture must simulate cleanly end to end *)
      let run =
        Sim.Run.simulate ~r_star:Sim.Engine.Requested
          ~policy:Sched.Backfill.lxf r.Swf.trace
      in
      Alcotest.(check int) "all jobs complete" 5
        run.Sim.Run.aggregate.Metrics.Aggregate.n_jobs

let suite =
  [
    Alcotest.test_case "parse basic" `Quick test_parse_basic;
    Alcotest.test_case "fixture file" `Quick test_fixture_file;
    Alcotest.test_case "skip unusable" `Quick test_parse_skips_unusable;
    Alcotest.test_case "malformed line" `Quick test_parse_malformed;
    Alcotest.test_case "requested clamped" `Quick
      test_requested_clamped_to_runtime;
    Alcotest.test_case "file roundtrip" `Quick test_roundtrip_file;
    Alcotest.test_case "generated trace roundtrip" `Quick
      test_generated_trace_roundtrip;
  ]
