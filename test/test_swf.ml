(* Tests for the SWF trace reader/writer. *)

open Workload

let sample =
  String.concat "\n"
    [
      "; Computer: test cluster";
      "; MaxNodes: 128";
      "1 0 10 3600 4 -1 -1 4 7200 -1 1 -1 -1 -1 -1 -1 -1 -1";
      "2 100 0 1800 8 -1 -1 -1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1";
      "";
      "3 200 5 60 1 -1 -1 2 120 -1 1 -1 -1 -1 -1 -1 -1 -1";
    ]

let parse s =
  match Swf.of_string s with
  | Ok r -> r
  | Error e -> Alcotest.fail ("parse error: " ^ e)

let test_parse_basic () =
  let r = parse sample in
  Alcotest.(check int) "three jobs" 3 (Trace.length r.Swf.trace);
  Alcotest.(check int) "no skips" 0 r.Swf.skipped;
  Alcotest.(check int) "two comments" 2 (List.length r.Swf.comments);
  let jobs = Trace.jobs r.Swf.trace in
  Alcotest.(check int) "job 0 nodes from requested procs" 4 jobs.(0).Job.nodes;
  Alcotest.(check (float 1e-9)) "job 0 requested time" 7200.0
    jobs.(0).Job.requested;
  (* job 1 has requested procs = -1: falls back to allocated procs *)
  Alcotest.(check int) "job 1 nodes fallback" 8 jobs.(1).Job.nodes;
  (* job 1 requested time = -1: falls back to runtime *)
  Alcotest.(check (float 1e-9)) "job 1 requested fallback" 1800.0
    jobs.(1).Job.requested

let test_parse_skips_unusable () =
  let bad = "5 0 0 -1 4 -1 -1 4 100 -1 0 -1 -1 -1 -1 -1 -1 -1" in
  let r = parse bad in
  Alcotest.(check int) "unusable skipped" 1 r.Swf.skipped;
  Alcotest.(check int) "no jobs" 0 (Trace.length r.Swf.trace)

let test_parse_malformed () =
  match Swf.of_string "1 2 3" with
  | Ok _ -> Alcotest.fail "expected parse error"
  | Error msg ->
      Alcotest.(check bool) "mentions line" true
        (Helpers.contains msg "line 1")

let test_requested_clamped_to_runtime () =
  (* requested time below actual runtime must be raised to runtime *)
  let line = "1 0 0 3600 2 -1 -1 2 60 -1 1 -1 -1 -1 -1 -1 -1 -1" in
  let r = parse line in
  let j = (Trace.jobs r.Swf.trace).(0) in
  Alcotest.(check (float 1e-9)) "requested >= runtime" 3600.0 j.Job.requested

let test_roundtrip_file () =
  let jobs =
    [
      Job.v ~id:0 ~submit:0.0 ~nodes:4 ~runtime:3600.0 ~requested:7200.0;
      Job.v ~id:1 ~submit:500.0 ~nodes:128 ~runtime:60.0 ~requested:60.0;
    ]
  in
  let t = Trace.v jobs in
  let path = Filename.temp_file "swf_test" ".swf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Swf.to_file ~comments:[ "; roundtrip" ] path t;
      match Swf.of_file path with
      | Error e -> Alcotest.fail e
      | Ok r ->
          Alcotest.(check int) "job count" 2 (Trace.length r.Swf.trace);
          Array.iteri
            (fun i (j : Job.t) ->
              let original = (Trace.jobs t).(i) in
              Alcotest.(check int) "nodes" original.Job.nodes j.Job.nodes;
              Alcotest.(check (float 0.51)) "submit" original.Job.submit
                j.Job.submit;
              Alcotest.(check (float 0.51)) "runtime" original.Job.runtime
                j.Job.runtime;
              Alcotest.(check (float 0.51)) "requested" original.Job.requested
                j.Job.requested)
            (Trace.jobs r.Swf.trace))

let test_generated_trace_roundtrip () =
  (* write a generated month as SWF and reparse: same job mix *)
  let profile = Month_profile.find "10/03" in
  let config = { Generator.default_config with scale = 0.05 } in
  let t = Generator.month ~config profile in
  let path = Filename.temp_file "swf_gen" ".swf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Swf.to_file path t;
      match Swf.of_file path with
      | Error e -> Alcotest.fail e
      | Ok r ->
          Alcotest.(check int) "job count preserved" (Trace.length t)
            (Trace.length r.Swf.trace);
          Alcotest.(check (float 0.01)) "demand preserved (to rounding)"
            1.0
            (Trace.total_demand r.Swf.trace /. Trace.total_demand t))

let test_parse_crlf () =
  (* Windows-exported / HTTP-fetched traces end lines with \r\n; the
     stray \r used to corrupt the last field of every line. *)
  let crlf = String.concat "\r\n" (String.split_on_char '\n' sample) in
  let r = parse crlf in
  Alcotest.(check int) "three jobs" 3 (Trace.length r.Swf.trace);
  Alcotest.(check int) "no skips" 0 r.Swf.skipped;
  let lf = parse sample in
  Alcotest.(check bool) "same jobs as LF parse" true
    (List.for_all2 Job.equal
       (Array.to_list (Trace.jobs r.Swf.trace))
       (Array.to_list (Trace.jobs lf.Swf.trace)))

let test_numeric_error_has_line_number () =
  let bad =
    String.concat "\n"
      [
        "; header";
        "1 0 10 3600 4 -1 -1 4 7200 -1 1 -1 -1 -1 -1 -1 -1 -1";
        "2 x 10 3600 4 -1 -1 4 7200 -1 1 -1 -1 -1 -1 -1 -1 -1";
      ]
  in
  match Swf.of_string bad with
  | Ok _ -> Alcotest.fail "expected parse error"
  | Error msg ->
      Alcotest.(check bool) "mentions the line" true
        (Helpers.contains msg "line 3");
      Alcotest.(check bool) "names the field" true
        (Helpers.contains msg "bad submit field")

let test_malformed_corpus () =
  let error line =
    match Swf.of_string line with Ok _ -> None | Error e -> Some e
  in
  (* truncated record: hard error with its line number *)
  (match error "1 2 3" with
  | Some e -> Alcotest.(check bool) "truncated" true (Helpers.contains e "line 1")
  | None -> Alcotest.fail "truncated line must error");
  (* non-numeric runtime: hard error naming field and line *)
  (match error "1 0 10 oops 4 -1 -1 4 7200 -1 1 -1 -1 -1 -1 -1 -1 -1" with
  | Some e ->
      Alcotest.(check bool) "bad runtime" true
        (Helpers.contains e "bad runtime field")
  | None -> Alcotest.fail "non-numeric runtime must error");
  (* unusable but well-formed records: skipped, not errors *)
  let skipped line =
    let r = parse line in
    (r.Swf.skipped, Trace.length r.Swf.trace)
  in
  Alcotest.(check (pair int int)) "negative submit skipped" (1, 0)
    (skipped "1 -5 10 3600 4 -1 -1 4 7200 -1 1 -1 -1 -1 -1 -1 -1 -1");
  Alcotest.(check (pair int int)) "zero nodes skipped" (1, 0)
    (skipped "1 0 10 3600 0 -1 -1 0 7200 -1 1 -1 -1 -1 -1 -1 -1 -1")

let test_to_file_waits () =
  (* exported traces carry per-job waits through the wait field *)
  let jobs =
    [
      Job.v ~id:0 ~submit:0.0 ~nodes:4 ~runtime:3600.0 ~requested:7200.0;
      Job.v ~id:1 ~submit:500.0 ~nodes:2 ~runtime:60.0 ~requested:60.0;
    ]
  in
  let t = Trace.v jobs in
  let wait (j : Job.t) = if j.Job.id = 0 then 0.0 else 1234.0 in
  let path = Filename.temp_file "swf_wait" ".swf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Swf.to_file ~wait path t;
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let wait_field line =
            match String.split_on_char ' ' line with
            | _ :: _ :: w :: _ -> w
            | _ -> Alcotest.fail "short line"
          in
          Alcotest.(check string) "job 0 wait" "0"
            (wait_field (input_line ic));
          Alcotest.(check string) "job 1 wait" "1234"
            (wait_field (input_line ic))))

let prop_roundtrip =
  (* of_file (to_file t) = t modulo the writer's whole-second rounding
     and id renumbering *)
  QCheck.Test.make ~name:"SWF roundtrip preserves every job" ~count:50
    QCheck.small_int (fun seed ->
      let t = Helpers.mini_trace ~n:25 ~capacity:64 ~seed () in
      let path = Filename.temp_file "swf_prop" ".swf" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Swf.to_file path t;
          match Swf.of_file path with
          | Error e -> Alcotest.fail e
          | Ok r ->
              r.Swf.skipped = 0
              && Trace.length r.Swf.trace = Trace.length t
              && List.for_all2
                   (fun (a : Job.t) (b : Job.t) ->
                     a.Job.nodes = b.Job.nodes
                     && a.Job.user = b.Job.user
                     && Float.abs (a.Job.submit -. b.Job.submit) <= 0.51
                     && Float.abs (a.Job.runtime -. b.Job.runtime) <= 0.51
                     && Float.abs (a.Job.requested -. b.Job.requested)
                        <= 0.51)
                   (Array.to_list (Trace.jobs t))
                   (Array.to_list (Trace.jobs r.Swf.trace))))

let test_fixture_file () =
  match Swf.of_file "fixtures/sample.swf" with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check int) "five jobs" 5 (Trace.length r.Swf.trace);
      Alcotest.(check int) "three header comments" 3
        (List.length r.Swf.comments);
      let jobs = Trace.jobs r.Swf.trace in
      Alcotest.(check int) "user from field 12" 11 jobs.(0).Job.user;
      Alcotest.(check int) "missing user -> 0" 0 jobs.(4).Job.user;
      Alcotest.(check int) "widest job" 128 jobs.(3).Job.nodes;
      (* requested below runtime is clamped up *)
      Alcotest.(check (float 1e-9)) "requested >= runtime" 86400.0
        jobs.(3).Job.requested;
      (* the fixture must simulate cleanly end to end *)
      let run =
        Sim.Run.simulate ~r_star:Sim.Engine.Requested
          ~policy:Sched.Backfill.lxf r.Swf.trace
      in
      Alcotest.(check int) "all jobs complete" 5
        run.Sim.Run.aggregate.Metrics.Aggregate.n_jobs

let suite =
  [
    Alcotest.test_case "parse basic" `Quick test_parse_basic;
    Alcotest.test_case "fixture file" `Quick test_fixture_file;
    Alcotest.test_case "skip unusable" `Quick test_parse_skips_unusable;
    Alcotest.test_case "malformed line" `Quick test_parse_malformed;
    Alcotest.test_case "requested clamped" `Quick
      test_requested_clamped_to_runtime;
    Alcotest.test_case "file roundtrip" `Quick test_roundtrip_file;
    Alcotest.test_case "generated trace roundtrip" `Quick
      test_generated_trace_roundtrip;
    Alcotest.test_case "CRLF corpus" `Quick test_parse_crlf;
    Alcotest.test_case "numeric error line number" `Quick
      test_numeric_error_has_line_number;
    Alcotest.test_case "malformed corpus" `Quick test_malformed_corpus;
    Alcotest.test_case "to_file waits" `Quick test_to_file_waits;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
