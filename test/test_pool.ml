(* Simcore.Pool (domain work pool) and Simcore.Memo (compute-once
   promise table), including the cache-coherence stress test over
   Experiments.Common.simulate. *)

open Simcore

exception Boom of int

let test_map_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 100 Fun.id in
      Alcotest.(check (list int))
        "results in input order"
        (List.map (fun x -> x * x) xs)
        (Pool.map pool ~f:(fun x -> x * x) xs))

let test_map_exception () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let raised =
        try
          ignore
            (Pool.map pool
               ~f:(fun x -> if x mod 10 = 3 then raise (Boom x) else x)
               (List.init 50 Fun.id) : int list);
          None
        with Boom x -> Some x
      in
      (* lowest-index failure wins, deterministically *)
      Alcotest.(check (option int)) "first failing item" (Some 3) raised;
      (* the pool survives an exceptional batch *)
      Alcotest.(check (list int))
        "pool usable afterwards" [ 2; 4 ]
        (Pool.map pool ~f:(fun x -> 2 * x) [ 1; 2 ]))

let test_jobs1_degenerate () =
  Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "no worker domain" 1 (Pool.jobs pool);
      let order = ref [] in
      Pool.iter pool ~f:(fun x -> order := x :: !order) [ 1; 2; 3; 4 ];
      (* sequential path: submission order, in the calling domain *)
      Alcotest.(check (list int)) "in-order execution" [ 1; 2; 3; 4 ]
        (List.rev !order))

let test_reuse_across_batches () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let a = Pool.map pool ~f:(fun x -> x + 1) (List.init 20 Fun.id) in
      let b = Pool.map pool ~f:(fun x -> x * 2) (List.init 30 Fun.id) in
      Alcotest.(check (list int)) "batch 1" (List.init 20 (fun i -> i + 1)) a;
      Alcotest.(check (list int)) "batch 2" (List.init 30 (fun i -> i * 2)) b);
  (* empty batches are fine too *)
  Pool.with_pool ~jobs:2 (fun pool ->
      Alcotest.(check (list int)) "empty batch" []
        (Pool.map pool ~f:Fun.id []))

let test_shutdown_idempotent () =
  let pool = Pool.create ~jobs:3 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Simcore.Pool: pool is shut down") (fun () ->
      ignore (Pool.map pool ~f:Fun.id [ 1 ] : int list))

let test_memo_compute_once_concurrent () =
  let memo : (int, int) Memo.t = Memo.create () in
  let forcings = Atomic.make 0 in
  let compute key =
    Memo.get memo key (fun () ->
        Atomic.incr forcings;
        (* widen the race window so concurrent callers really overlap *)
        Unix.sleepf 0.02;
        key * 100)
  in
  Pool.with_pool ~jobs:8 (fun pool ->
      let requests = List.init 64 (fun i -> i mod 4) in
      let results = Pool.map pool ~f:compute requests in
      List.iter2
        (fun k v -> Alcotest.(check int) "value" (k * 100) v)
        requests results);
  Alcotest.(check int) "each key forced exactly once" 4
    (Atomic.get forcings);
  Alcotest.(check int) "table size" 4 (Memo.length memo);
  Memo.clear memo;
  Alcotest.(check int) "cleared" 0 (Memo.length memo)

let test_memo_failure_cached () =
  let memo : (string, int) Memo.t = Memo.create () in
  let forcings = Atomic.make 0 in
  let get () =
    Memo.get memo "k" (fun () ->
        Atomic.incr forcings;
        raise (Boom 7))
  in
  Alcotest.check_raises "first caller" (Boom 7) (fun () -> ignore (get ()));
  Alcotest.check_raises "second caller" (Boom 7) (fun () -> ignore (get ()));
  Alcotest.(check int) "thunk forced once" 1 (Atomic.get forcings)

(* The ISSUE's cache-coherence stress: from 8 domains, request the same
   and overlapping Common.simulate keys concurrently; each policy thunk
   must be forced exactly once and all callers must see the same run. *)
let test_common_simulate_stress () =
  let with_env bindings f =
    let saved = List.map (fun (k, _) -> (k, Sys.getenv_opt k)) bindings in
    List.iter (fun (k, v) -> Unix.putenv k v) bindings;
    Fun.protect f ~finally:(fun () ->
        List.iter
          (fun (k, v) -> Unix.putenv k (Option.value v ~default:""))
          saved)
  in
  with_env [ ("REPRO_SCALE", "0.05"); ("REPRO_MONTHS", "7/03") ] (fun () ->
      Experiments.Common.reset_caches ();
      let month = Workload.Month_profile.find "7/03" in
      let n_keys = 4 in
      let forcings = Array.init n_keys (fun _ -> Atomic.make 0) in
      let request k =
        Experiments.Common.simulate
          ~policy_key:(Printf.sprintf "stress-%d" k)
          ~policy:(fun () ->
            Atomic.incr forcings.(k);
            Sched.Policy.run_now)
          ~r_star:Sim.Engine.Actual month Experiments.Common.Original
      in
      let requests = List.init 64 (fun i -> i mod n_keys) in
      let runs =
        Pool.with_pool ~jobs:8 (fun pool -> Pool.map pool ~f:request requests)
      in
      Array.iteri
        (fun k c ->
          Alcotest.(check int)
            (Printf.sprintf "policy thunk %d forced exactly once" k)
            1 (Atomic.get c))
        forcings;
      (* all callers of one key observe the same Sim.Run.t *)
      let canonical = Array.make n_keys None in
      List.iter2
        (fun k run ->
          match canonical.(k) with
          | None -> canonical.(k) <- Some run
          | Some first ->
              Alcotest.(check bool)
                (Printf.sprintf "key %d: same run for every caller" k)
                true (run == first))
        requests runs;
      Experiments.Common.reset_caches ())

let suite =
  [
    Alcotest.test_case "map preserves order" `Quick test_map_order;
    Alcotest.test_case "map propagates exceptions" `Quick test_map_exception;
    Alcotest.test_case "jobs=1 degenerate path" `Quick test_jobs1_degenerate;
    Alcotest.test_case "reuse across batches" `Quick test_reuse_across_batches;
    Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
    Alcotest.test_case "memo compute-once under 8 domains" `Quick
      test_memo_compute_once_concurrent;
    Alcotest.test_case "memo failure cached" `Quick test_memo_failure_cached;
    Alcotest.test_case "Common.simulate coherence stress" `Quick
      test_common_simulate_stress;
  ]
