(* Smoke tests for the pretty-printers and name formats: these strings
   appear in every report, so lock their shape. *)

let asprintf = Format.asprintf

let test_job_pp () =
  let j = Helpers.job ~id:3 ~nodes:16 ~runtime:7200.0 ~submit:60.0 () in
  let s = asprintf "%a" Workload.Job.pp j in
  Alcotest.(check bool) "id shown" true (Helpers.contains s "job#3");
  Alcotest.(check bool) "nodes shown" true (Helpers.contains s "N=16");
  Alcotest.(check bool) "runtime in hours" true (Helpers.contains s "2.00h")

let test_outcome_pp () =
  let o =
    Metrics.Outcome.v ~job:(Helpers.job ()) ~start:1800.0 ~finish:5400.0
  in
  let s = asprintf "%a" Metrics.Outcome.pp o in
  Alcotest.(check bool) "wait shown" true (Helpers.contains s "wait=30.0m")

let test_aggregate_pp () =
  let a =
    Metrics.Aggregate.compute
      [ Metrics.Outcome.v ~job:(Helpers.job ()) ~start:3600.0 ~finish:7200.0 ]
  in
  let s = asprintf "%a" Metrics.Aggregate.pp a in
  Alcotest.(check bool) "n shown" true (Helpers.contains s "n=1");
  Alcotest.(check bool) "avg wait shown" true
    (Helpers.contains s "avg_wait=1.00h")

let test_objective_pp () =
  let o =
    Core.Objective.add Core.Objective.zero ~wait:7200.0 ~threshold:3600.0
      ~est_runtime:3600.0
  in
  let s = asprintf "%a" Core.Objective.pp o in
  Alcotest.(check bool) "excess in hours" true
    (Helpers.contains s "excess=1.00h")

let test_month_profile_pp () =
  let s =
    asprintf "%a" Workload.Month_profile.pp (Workload.Month_profile.find "7/03")
  in
  Alcotest.(check bool) "label" true (Helpers.contains s "7/03");
  Alcotest.(check bool) "load" true (Helpers.contains s "89%")

let test_pp_duration_negative () =
  Alcotest.(check string) "negative duration" "-30.0m"
    (asprintf "%a" Simcore.Units.pp_duration (-1800.0))

let test_backfill_reservation_name () =
  let p = Sched.Backfill.policy ~reservations:4 Sched.Priority.fcfs in
  Alcotest.(check string) "explicit reservation count"
    "FCFS-backfill/res=4" p.Sched.Policy.name

let test_lds0_policy_name () =
  let config =
    Core.Search_policy.v ~algorithm:Core.Search.Lds_original
      ~heuristic:Core.Branching.Lxf ~bound:Core.Bound.dynamic ~budget:2000 ()
  in
  Alcotest.(check string) "lds0 label" "LDS0/lxf/dynB(L=2K)"
    (Core.Search_policy.name config)

let test_trace_concat_stats () =
  let t =
    Workload.Trace.v [ Helpers.job () ] ~measure_start:0.0
      ~measure_end:86400.0
  in
  let s = Workload.Trace.concat_stats t in
  Alcotest.(check bool) "job counts" true (Helpers.contains s "1 jobs");
  Alcotest.(check bool) "window in days" true (Helpers.contains s "1.0d")

let suite =
  [
    Alcotest.test_case "job pp" `Quick test_job_pp;
    Alcotest.test_case "outcome pp" `Quick test_outcome_pp;
    Alcotest.test_case "aggregate pp" `Quick test_aggregate_pp;
    Alcotest.test_case "objective pp" `Quick test_objective_pp;
    Alcotest.test_case "month profile pp" `Quick test_month_profile_pp;
    Alcotest.test_case "negative duration" `Quick test_pp_duration_negative;
    Alcotest.test_case "backfill reservation name" `Quick
      test_backfill_reservation_name;
    Alcotest.test_case "lds0 policy name" `Quick test_lds0_policy_name;
    Alcotest.test_case "trace concat stats" `Quick test_trace_concat_stats;
  ]
