(* Tests for the Schedcheck validation library: validator invariants on
   real and deliberately corrupted schedules, and the differential
   oracles (reference backfill, exhaustive enumeration, trail vs
   snapshot profiles). *)

open Schedcheck

let r_star (j : Workload.Job.t) = Float.min j.runtime j.requested
let machine16 = Cluster.Machine.v ~nodes:16

let outcome job start finish : Metrics.Outcome.t = { job; start; finish }

let find_violation report invariant =
  List.find_opt
    (fun (v : Report.violation) -> v.invariant = invariant)
    report.Report.violations

let check_violation report invariant ~time =
  match find_violation report invariant with
  | None ->
      Alcotest.failf "expected a %s violation in: %s" invariant
        (Format.asprintf "%a" Report.pp report)
  | Some v -> Alcotest.(check (float 1e-6)) "decision time" time v.Report.time

(* --- expectation_of_policy --- *)

let test_expectation_of_policy () =
  let easy name =
    match Validator.expectation_of_policy name with
    | Validator.Easy_backfill { reservations; priority } ->
        (reservations, priority.Sched.Priority.name)
    | Validator.Generic -> Alcotest.failf "%s should be Easy_backfill" name
  in
  Alcotest.(check (pair int string)) "fcfs" (1, "fcfs") (easy "FCFS-backfill");
  Alcotest.(check (pair int string)) "lxf" (1, "lxf") (easy "LXF-backfill");
  Alcotest.(check (pair int string)) "sjf" (1, "sjf") (easy "SJF-backfill");
  Alcotest.(check (pair int string)) "res suffix" (3, "fcfs")
    (easy "FCFS-backfill/res=3");
  let generic name =
    match Validator.expectation_of_policy name with
    | Validator.Generic -> true
    | Validator.Easy_backfill _ -> false
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " is generic") true (generic name))
    [
      "DDS/lxf/dynB(L=1K)"; "conservative-fcfs"; "run-now";
      "selective-backfill(36.0h)"; "LXF&W(0.02)-backfill"; "nonsense";
    ]

(* --- validator on real engine runs --- *)

let validated ~policy trace =
  let expect =
    Validator.expectation_of_policy policy.Sched.Policy.name
  in
  let result =
    Sim.Engine.run ~machine:machine16 ~validate:expect
      ~r_star:Sim.Engine.Actual ~policy trace
  in
  Option.get result.Sim.Engine.validation

let test_real_runs_ok () =
  let trace = Helpers.mini_trace ~n:60 ~capacity:16 ~seed:7 () in
  List.iter
    (fun policy ->
      let report = validated ~policy trace in
      Alcotest.(check bool)
        (policy.Sched.Policy.name ^ " validates clean")
        true (Report.ok report);
      Alcotest.(check int) "all outcomes checked" 60
        report.Report.jobs_checked;
      Alcotest.(check bool) "decisions replayed" true
        (report.Report.decisions_checked > 0))
    [ Sched.Backfill.fcfs; Sched.Backfill.lxf; Sched.Backfill.sjf;
      Sched.Policy.run_now ]

let test_predicted_downgrades () =
  (* The stateful estimator cannot be replayed: the engine must fall
     back to the generic invariants instead of reporting phantom
     differential violations. *)
  let trace = Helpers.mini_trace ~n:50 ~capacity:16 ~seed:11 () in
  let result =
    Sim.Engine.run ~machine:machine16
      ~validate:(Validator.expectation_of_policy "FCFS-backfill")
      ~r_star:Sim.Engine.Predicted ~policy:Sched.Backfill.fcfs trace
  in
  let report = Option.get result.Sim.Engine.validation in
  Alcotest.(check bool) "clean under Predicted" true (Report.ok report)

(* --- seeded faults: corrupted schedules must be caught --- *)

let two_jobs =
  [
    Helpers.job ~id:0 ~submit:0.0 ~nodes:8 ~runtime:100.0 ();
    Helpers.job ~id:1 ~submit:0.0 ~nodes:8 ~runtime:100.0 ();
  ]

let validate_raw ?(machine = Cluster.Machine.v ~nodes:8) jobs outcomes =
  Validator.validate ~machine ~subject:"corrupted" ~r_star
    ~trace:(Workload.Trace.v jobs) ~outcomes ()

let j0, j1 =
  match two_jobs with [ a; b ] -> (a, b) | _ -> assert false

let test_catches_capacity () =
  (* both 8-node jobs at t=0 on an 8-node machine *)
  let report =
    validate_raw two_jobs [ outcome j0 0.0 100.0; outcome j1 0.0 100.0 ]
  in
  check_violation report "capacity" ~time:0.0

let test_catches_start_before_submit () =
  let j = Helpers.job ~id:0 ~submit:100.0 ~runtime:100.0 () in
  let report = validate_raw [ j ] [ outcome j 50.0 150.0 ] in
  check_violation report "start-after-submit" ~time:50.0

let test_catches_preemption () =
  (* job runs 500 s longer than min(T, R): nodes held too long *)
  let j = Helpers.job ~id:0 ~runtime:100.0 () in
  let report = validate_raw [ j ] [ outcome j 0.0 600.0 ] in
  check_violation report "exact-runtime" ~time:0.0

let test_catches_lost_and_phantom_jobs () =
  let report = validate_raw two_jobs [ outcome j0 0.0 100.0 ] in
  check_violation report "job-completeness" ~time:0.0;
  let phantom = Helpers.job ~id:9 ~runtime:50.0 () in
  let report =
    validate_raw two_jobs
      [
        outcome j0 0.0 100.0; outcome j1 100.0 200.0;
        outcome phantom 0.0 50.0;
      ]
  in
  check_violation report "job-completeness" ~time:0.0

let test_catches_off_decision_start () =
  (* legal in every other respect, but started at t=42 when the only
     events are the arrival (t=0) and its own finish *)
  let j = Helpers.job ~id:0 ~submit:0.0 ~runtime:100.0 () in
  let report = validate_raw [ j ] [ outcome j 42.0 142.0 ] in
  check_violation report "start-at-decision-point" ~time:42.0

let test_catches_wide_job () =
  let j = Helpers.job ~id:0 ~nodes:9 ~runtime:100.0 () in
  let report = validate_raw [ j ] [ outcome j 0.0 100.0 ] in
  check_violation report "job-fits-machine" ~time:0.0

(* An impostor greedy policy wearing the FCFS-backfill name: the
   differential replay must notice the schedule is not what the real
   EASY backfill would have produced. *)
let test_catches_impostor_backfill () =
  let impostor =
    { Sched.Policy.run_now with Sched.Policy.name = "FCFS-backfill" }
  in
  let trace = Helpers.mini_trace ~n:40 ~capacity:16 ~seed:3 () in
  let report = validated ~policy:impostor trace in
  Alcotest.(check bool) "impostor detected" false (Report.ok report);
  (match find_violation report "backfill-differential" with
  | Some v ->
      Alcotest.(check bool) "at a positive decision time" true
        (v.Report.time > 0.0);
      Alcotest.(check bool) "names offending jobs" true (v.Report.jobs <> [])
  | None ->
      Alcotest.failf "expected a backfill-differential violation in: %s"
        (Format.asprintf "%a" Report.pp report));
  (* the genuine article stays clean on the same workload *)
  Alcotest.(check bool) "real backfill clean" true
    (Report.ok (validated ~policy:Sched.Backfill.fcfs trace))

(* --- differential oracle: Backfill.plan vs naive reference --- *)

let random_context rng =
  let capacity = 8 + Simcore.Rng.int rng 57 in
  let machine = Cluster.Machine.v ~nodes:capacity in
  let now = 3600.0 in
  let running = Cluster.Running_set.create ~machine in
  let n_running = Simcore.Rng.int rng 5 in
  for i = 0 to n_running - 1 do
    let nodes = 1 + Simcore.Rng.int rng (capacity / 2) in
    if nodes <= Cluster.Running_set.free_nodes running then begin
      let runtime = 60.0 +. Simcore.Rng.float rng 7200.0 in
      let start = Simcore.Rng.float rng now in
      let job =
        Workload.Job.v ~id:(1000 + i) ~submit:start ~nodes ~runtime
          ~requested:runtime
      in
      Cluster.Running_set.add running
        { job; start; finish = start +. runtime;
          est_finish = start +. runtime }
    end
  done;
  let n_waiting = 1 + Simcore.Rng.int rng 8 in
  let waiting =
    List.init n_waiting (fun i ->
        let runtime = 60.0 +. Simcore.Rng.float rng 7200.0 in
        Workload.Job.v ~id:i
          ~submit:(Simcore.Rng.float rng now)
          ~nodes:(1 + Simcore.Rng.int rng capacity)
          ~runtime
          ~requested:(runtime *. (1.0 +. Simcore.Rng.float rng 2.0)))
  in
  { Sched.Policy.now; waiting; running; r_star }

let plans_agree (plan : Sched.Backfill.plan) (ref_plan : Oracle.reference_plan)
    =
  let ids = List.map (fun (j : Workload.Job.t) -> j.id) in
  ids plan.Sched.Backfill.start_now = ids ref_plan.Oracle.start_now
  && List.map
       (fun ((j : Workload.Job.t), s) -> (j.id, s))
       plan.Sched.Backfill.reserved
     = List.map
         (fun ((j : Workload.Job.t), s) -> (j.id, s))
         ref_plan.Oracle.reserved

let prop_backfill_matches_reference =
  QCheck.Test.make ~name:"Backfill.plan = naive reference backfill"
    ~count:200 QCheck.small_int (fun seed ->
      let rng = Simcore.Rng.create ~seed in
      let ctx = random_context rng in
      let reservations = 1 + Simcore.Rng.int rng 3 in
      List.for_all
        (fun priority ->
          plans_agree
            (Sched.Backfill.plan ~reservations ~priority ctx)
            (Oracle.reference_backfill ~reservations ~priority ctx))
        [ Sched.Priority.fcfs; Sched.Priority.lxf; Sched.Priority.sjf ])

(* --- differential oracle: search vs exhaustive enumeration --- *)

let make_state ?(backtrack = Core.Search_state.Trail) ~releases ~heuristic
    jobs =
  let now = 1100.0 in
  let profile = Cluster.Profile.of_running ~now ~capacity:8 releases in
  let ordered = Core.Branching.order heuristic ~now ~r_star jobs in
  let durations = Array.map r_star ordered in
  let thresholds =
    Core.Bound.thresholds (Core.Bound.fixed_hours 0.5) ~now ~r_star ordered
  in
  Core.Search_state.create ~backtrack ~now ~profile ~jobs:ordered ~durations
    ~thresholds ()

let random_queue rng =
  let n = 2 + Simcore.Rng.int rng 5 in
  let jobs =
    List.init n (fun id ->
        Helpers.job ~id
          ~submit:(Simcore.Rng.float rng 1000.0)
          ~nodes:(1 + Simcore.Rng.int rng 8)
          ~runtime:(60.0 +. Simcore.Rng.float rng 10000.0)
          ())
  in
  let releases =
    List.init (Simcore.Rng.int rng 3) (fun _ ->
        (1200.0 +. Simcore.Rng.float rng 5000.0, 1 + Simcore.Rng.int rng 3))
  in
  (jobs, releases)

let prop_search_matches_enumeration =
  QCheck.Test.make ~name:"exhausted search = Oracle.enumerate_best"
    ~count:100 QCheck.small_int (fun seed ->
      let rng = Simcore.Rng.create ~seed in
      let jobs, releases = random_queue rng in
      List.for_all
        (fun algo ->
          let result =
            Core.Search.run algo ~budget:max_int
              (make_state ~releases ~heuristic:Core.Branching.Lxf jobs)
          in
          let best =
            Oracle.enumerate_best
              (make_state ~releases ~heuristic:Core.Branching.Lxf jobs)
          in
          result.Core.Search.exhausted
          && Core.Objective.compare result.Core.Search.best best = 0)
        [ Core.Search.Dfs; Core.Search.Lds; Core.Search.Dds ])

(* --- differential oracle: trail vs snapshot profile mutation --- *)

(* Drive one working profile through random reservations with the O(Δ)
   trail, and an independent chain of full snapshots through the same
   reservations; every intermediate state must agree segment-for-
   segment, and unwinding the trail must restore the original. *)
let prop_profile_trail_matches_snapshots =
  QCheck.Test.make ~name:"profile trail = snapshot chain" ~count:200
    QCheck.small_int (fun seed ->
      let rng = Simcore.Rng.create ~seed in
      let capacity = 4 + Simcore.Rng.int rng 61 in
      let releases =
        (* running jobs must fit the machine together *)
        let free = ref capacity in
        List.filter_map
          (fun nodes ->
            if nodes <= !free then begin
              free := !free - nodes;
              Some (Simcore.Rng.float rng 50000.0, nodes)
            end
            else None)
          (List.init (Simcore.Rng.int rng 10) (fun _ ->
               1 + Simcore.Rng.int rng 8))
      in
      let p = Cluster.Profile.of_running ~now:0.0 ~capacity releases in
      let original = Cluster.Profile.copy p in
      let mark = Cluster.Profile.mark p in
      let snapshot = ref (Cluster.Profile.copy p) in
      let steps = 1 + Simcore.Rng.int rng 15 in
      let agreed = ref true in
      for _ = 1 to steps do
        let nodes = 1 + Simcore.Rng.int rng capacity in
        let duration = 60.0 +. Simcore.Rng.float rng 7200.0 in
        let at = Cluster.Profile.earliest_start p ~nodes ~duration in
        Cluster.Profile.reserve p ~at ~nodes ~duration;
        snapshot := Cluster.Profile.copy !snapshot;
        Cluster.Profile.reserve !snapshot ~at ~nodes ~duration;
        agreed :=
          !agreed
          && Cluster.Profile.segments p = Cluster.Profile.segments !snapshot
          && Cluster.Profile.invariant p
      done;
      Cluster.Profile.undo_to p mark;
      !agreed
      && Cluster.Profile.segments p = Cluster.Profile.segments original)

let suite =
  [
    Alcotest.test_case "expectation of policy" `Quick
      test_expectation_of_policy;
    Alcotest.test_case "real runs validate clean" `Quick test_real_runs_ok;
    Alcotest.test_case "Predicted downgrades to generic" `Quick
      test_predicted_downgrades;
    Alcotest.test_case "catches oversubscription" `Quick test_catches_capacity;
    Alcotest.test_case "catches start before submit" `Quick
      test_catches_start_before_submit;
    Alcotest.test_case "catches runtime tampering" `Quick
      test_catches_preemption;
    Alcotest.test_case "catches lost and phantom jobs" `Quick
      test_catches_lost_and_phantom_jobs;
    Alcotest.test_case "catches off-decision starts" `Quick
      test_catches_off_decision_start;
    Alcotest.test_case "catches too-wide jobs" `Quick test_catches_wide_job;
    Alcotest.test_case "catches impostor backfill" `Quick
      test_catches_impostor_backfill;
    QCheck_alcotest.to_alcotest prop_backfill_matches_reference;
    QCheck_alcotest.to_alcotest prop_search_matches_enumeration;
    QCheck_alcotest.to_alcotest prop_profile_trail_matches_snapshots;
  ]
