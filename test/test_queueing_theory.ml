(* Validation of the discrete-event engine against queueing theory.

   A single-node machine fed Poisson arrivals of one-node jobs with
   exponential service times under FCFS is an M/M/1 queue; the
   simulated mean wait must match the Pollaczek/Khinchine result
   W_q = rho / (mu - lambda).  This anchors the whole simulation stack
   (event order, decision points, start bookkeeping) to an analytical
   ground truth. *)

let mm1_trace ~seed ~n ~lambda ~mu =
  let rng = Simcore.Rng.create ~seed in
  let arrivals = Simcore.Rng.split rng in
  let services = Simcore.Rng.split rng in
  let clock = ref 0.0 in
  let jobs =
    List.init n (fun id ->
        clock :=
          !clock +. Simcore.Dist.exponential arrivals ~mean:(1.0 /. lambda);
        let runtime =
          Float.max 1e-3 (Simcore.Dist.exponential services ~mean:(1.0 /. mu))
        in
        Workload.Job.v ~id ~submit:!clock ~nodes:1 ~runtime
          ~requested:(runtime +. 1.0))
  in
  Workload.Trace.v jobs

let test_mm1_mean_wait () =
  let lambda = 0.8 and mu = 1.0 in
  let n = 60_000 in
  let trace = mm1_trace ~seed:271 ~n ~lambda ~mu in
  let result =
    Sim.Engine.run
      ~machine:(Cluster.Machine.v ~nodes:1)
      ~r_star:Sim.Engine.Actual ~policy:Sched.Backfill.fcfs trace
  in
  (* drop warm-up and drain tails *)
  let outcomes =
    List.filteri (fun i _ -> i > n / 10 && i < n * 9 / 10)
      result.Sim.Engine.outcomes
  in
  let mean_wait =
    List.fold_left (fun acc o -> acc +. Metrics.Outcome.wait o) 0.0 outcomes
    /. float_of_int (List.length outcomes)
  in
  let rho = lambda /. mu in
  let expected = rho /. (mu -. lambda) in
  Alcotest.(check bool)
    (Printf.sprintf "M/M/1 W_q: simulated %.3f vs theory %.3f" mean_wait
       expected)
    true
    (Float.abs (mean_wait -. expected) /. expected < 0.10)

let test_mm1_utilization () =
  let lambda = 0.5 and mu = 1.0 in
  let n = 30_000 in
  let trace = mm1_trace ~seed:272 ~n ~lambda ~mu in
  let first = (Workload.Trace.jobs trace).(0).Workload.Job.submit in
  let last =
    (Workload.Trace.jobs trace).(n - 1).Workload.Job.submit
  in
  let windowed =
    Workload.Trace.v
      (Array.to_list (Workload.Trace.jobs trace))
      ~measure_start:first ~measure_end:last
  in
  let run =
    Sim.Run.simulate
      ~machine:(Cluster.Machine.v ~nodes:1)
      ~r_star:Sim.Engine.Actual ~policy:Sched.Backfill.fcfs windowed
  in
  (* server busy fraction must approach rho = 0.5 *)
  Alcotest.(check bool)
    (Printf.sprintf "M/M/1 utilization %.3f ~ 0.5" run.Sim.Run.utilization)
    true
    (Float.abs (run.Sim.Run.utilization -. 0.5) < 0.04)

let suite =
  [
    Alcotest.test_case "M/M/1 mean wait" `Slow test_mm1_mean_wait;
    Alcotest.test_case "M/M/1 utilization" `Slow test_mm1_utilization;
  ]
