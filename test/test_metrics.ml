(* Tests for Metrics: Outcome, Excess, Aggregate, Class_matrix. *)

open Metrics

let outcome ?(id = 0) ?(submit = 0.0) ?(nodes = 1) ?(runtime = 3600.0)
    ?(wait = 0.0) () =
  let job = Helpers.job ~id ~submit ~nodes ~runtime () in
  Outcome.v ~job ~start:(submit +. wait) ~finish:(submit +. wait +. runtime)

let test_outcome_validation () =
  let job = Helpers.job ~submit:100.0 () in
  Alcotest.check_raises "start before submit"
    (Invalid_argument "Outcome.v: started before submission") (fun () ->
      ignore (Outcome.v ~job ~start:50.0 ~finish:200.0));
  Alcotest.check_raises "finish after start"
    (Invalid_argument "Outcome.v: finish <= start") (fun () ->
      ignore (Outcome.v ~job ~start:100.0 ~finish:100.0))

let test_outcome_measures () =
  let o = outcome ~wait:1800.0 ~runtime:3600.0 () in
  Alcotest.(check (float 1e-9)) "wait" 1800.0 (Outcome.wait o);
  Alcotest.(check (float 1e-9)) "turnaround" 5400.0 (Outcome.turnaround o);
  Alcotest.(check (float 1e-9)) "slowdown" 1.5 (Outcome.slowdown o);
  Alcotest.(check (float 1e-9)) "bounded slowdown" 1.5
    (Outcome.bounded_slowdown o)

let test_bounded_slowdown_short_jobs () =
  (* 10-second job waiting 120 s: raw slowdown 13, bounded 1 + 2 = 3 *)
  let o = outcome ~runtime:10.0 ~wait:120.0 () in
  Alcotest.(check (float 1e-9)) "bounded uses 1-min floor" 3.0
    (Outcome.bounded_slowdown o);
  Alcotest.(check (float 1e-9)) "raw is much larger" 13.0 (Outcome.slowdown o)

let test_excess_wait () =
  let o = outcome ~wait:7200.0 () in
  Alcotest.(check (float 1e-9)) "above threshold" 3600.0
    (Outcome.excess_wait o ~threshold:3600.0);
  Alcotest.(check (float 1e-9)) "below threshold" 0.0
    (Outcome.excess_wait o ~threshold:10000.0)

let test_excess_compute () =
  let outcomes =
    [ outcome ~id:0 ~wait:0.0 (); outcome ~id:1 ~wait:7200.0 ();
      outcome ~id:2 ~wait:10800.0 () ]
  in
  let e = Excess.compute ~threshold:3600.0 outcomes in
  Alcotest.(check int) "two jobs over" 2 e.Excess.count;
  Alcotest.(check (float 1e-9)) "total" (3600.0 +. 7200.0) e.Excess.total;
  Alcotest.(check (float 1e-9)) "average" 5400.0 e.Excess.average;
  Alcotest.(check (float 1e-9)) "total hours" 3.0 (Excess.total_hours e)

let test_excess_empty () =
  let e = Excess.compute ~threshold:0.0 [] in
  Alcotest.(check int) "count" 0 e.Excess.count;
  Alcotest.(check (float 1e-9)) "average" 0.0 e.Excess.average

let test_aggregate () =
  let outcomes =
    [ outcome ~id:0 ~wait:3600.0 (); outcome ~id:1 ~wait:7200.0 () ]
  in
  let a = Aggregate.compute ~avg_queue_length:2.5 outcomes in
  Alcotest.(check int) "n" 2 a.Aggregate.n_jobs;
  Alcotest.(check (float 1e-9)) "avg wait hours" 1.5
    (Aggregate.avg_wait_hours a);
  Alcotest.(check (float 1e-9)) "max wait hours" 2.0
    (Aggregate.max_wait_hours a);
  Alcotest.(check (float 1e-9)) "queue length" 2.5 a.Aggregate.avg_queue_length;
  Alcotest.(check (float 1e-9)) "avg bounded slowdown" 2.5
    a.Aggregate.avg_bounded_slowdown

let test_aggregate_empty () =
  let a = Aggregate.compute [] in
  Alcotest.(check int) "n" 0 a.Aggregate.n_jobs;
  Alcotest.(check (float 1e-9)) "avg" 0.0 a.Aggregate.avg_wait

let test_aggregate_p98 () =
  let outcomes =
    List.init 100 (fun i -> outcome ~id:i ~wait:(float_of_int i *. 60.0) ())
  in
  let a = Aggregate.compute outcomes in
  Alcotest.(check bool) "p98 between 97 and 99 minutes" true
    (a.Aggregate.p98_wait > 96.9 *. 60.0 && a.Aggregate.p98_wait < 99.1 *. 60.0)

let test_class_matrix () =
  let outcomes =
    [
      (* 30-min 1-node job, 1h wait: cell (runtime 10m-1h, class 1) *)
      outcome ~id:0 ~runtime:1800.0 ~nodes:1 ~wait:3600.0 ();
      outcome ~id:1 ~runtime:1800.0 ~nodes:1 ~wait:7200.0 ();
      (* 9h 64-node job: cell (>8h, 33-128) *)
      outcome ~id:2 ~runtime:(9.0 *. 3600.0) ~nodes:64 ~wait:0.0 ();
    ]
  in
  let m = Class_matrix.compute outcomes in
  Alcotest.(check int) "count cell" 2
    (Class_matrix.count m ~runtime_class:1 ~node_class:0);
  (match Class_matrix.average_wait m ~runtime_class:1 ~node_class:0 with
  | Some w -> Alcotest.(check (float 1e-9)) "avg of cell" 5400.0 w
  | None -> Alcotest.fail "expected a populated cell");
  Alcotest.(check (option (float 1e-9))) "wide long cell" (Some 0.0)
    (Class_matrix.average_wait m ~runtime_class:4 ~node_class:4);
  Alcotest.(check (option (float 1e-9))) "empty cell" None
    (Class_matrix.average_wait m ~runtime_class:0 ~node_class:2)

let prop_bounded_slowdown_at_least_one =
  QCheck.Test.make ~name:"bounded slowdown >= 1" ~count:300
    QCheck.(pair (float_bound_inclusive 1e6) (float_bound_exclusive 1e5))
    (fun (wait, runtime) ->
      let runtime = runtime +. 1.0 in
      let o = outcome ~wait ~runtime () in
      Outcome.bounded_slowdown o >= 1.0)

let suite =
  [
    Alcotest.test_case "outcome validation" `Quick test_outcome_validation;
    Alcotest.test_case "outcome measures" `Quick test_outcome_measures;
    Alcotest.test_case "bounded slowdown floors short jobs" `Quick
      test_bounded_slowdown_short_jobs;
    Alcotest.test_case "excess wait" `Quick test_excess_wait;
    Alcotest.test_case "excess compute" `Quick test_excess_compute;
    Alcotest.test_case "excess empty" `Quick test_excess_empty;
    Alcotest.test_case "aggregate" `Quick test_aggregate;
    Alcotest.test_case "aggregate empty" `Quick test_aggregate_empty;
    Alcotest.test_case "aggregate p98" `Quick test_aggregate_p98;
    Alcotest.test_case "class matrix" `Quick test_class_matrix;
    QCheck_alcotest.to_alcotest prop_bounded_slowdown_at_least_one;
  ]
