(* ISSUE satellite: rendering an experiment with REPRO_JOBS=1 and
   REPRO_JOBS=4 must produce byte-identical formatted output.  The
   pool only warms the compute-once caches; formatting always reads
   the warm cache sequentially, so parallelism must be invisible. *)

let with_env bindings f =
  let saved = List.map (fun (k, _) -> (k, Sys.getenv_opt k)) bindings in
  List.iter (fun (k, v) -> Unix.putenv k v) bindings;
  Fun.protect f ~finally:(fun () ->
      (* putenv "" behaves as unset for every REPRO_* parser *)
      List.iter
        (fun (k, v) -> Unix.putenv k (Option.value v ~default:""))
        saved)

let render experiments =
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  List.iter (fun run -> run fmt) experiments;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let test_fig3_fig6_jobs_invariant () =
  (* REPRO_MAXL=1000 keeps fig6 to a single L point; 1/04 is the month
     both figures use. *)
  with_env
    [
      ("REPRO_SCALE", "0.1");
      ("REPRO_MONTHS", "1/04");
      ("REPRO_MAXL", "1000");
    ]
    (fun () ->
      let experiments = [ Experiments.Fig3.run; Experiments.Fig6.run ] in
      let saved_jobs = Experiments.Common.jobs () in
      Fun.protect
        ~finally:(fun () ->
          Experiments.Common.set_jobs saved_jobs;
          Experiments.Common.reset_caches ();
          Experiments.Common.shutdown_pool ())
        (fun () ->
          Experiments.Common.set_jobs 1;
          Experiments.Common.reset_caches ();
          let seq = render experiments in
          Experiments.Common.set_jobs 4;
          Experiments.Common.reset_caches ();
          let par = render experiments in
          Alcotest.(check bool) "sequential render non-empty" true
            (String.length seq > 0);
          Alcotest.(check string) "jobs=1 and jobs=4 byte-identical" seq par))

let suite =
  [
    Alcotest.test_case "fig3+fig6 output independent of REPRO_JOBS" `Quick
      test_fig3_fig6_jobs_invariant;
  ]
