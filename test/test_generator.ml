(* Tests for the calibrated synthetic workload generator. *)

open Workload

let month_small ?(scale = 0.2) ?(seed = 42) label =
  let profile = Month_profile.find label in
  let config = { Generator.default_config with scale; seed } in
  (profile, Generator.month ~config profile)

let test_deterministic () =
  let _, a = month_small "7/03" in
  let _, b = month_small "7/03" in
  Alcotest.(check int) "same length" (Trace.length a) (Trace.length b);
  Array.iteri
    (fun i (ja : Job.t) ->
      let jb = (Trace.jobs b).(i) in
      Alcotest.(check (float 1e-9)) "same submit" ja.submit jb.Job.submit;
      Alcotest.(check int) "same nodes" ja.nodes jb.Job.nodes;
      Alcotest.(check (float 1e-9)) "same runtime" ja.runtime jb.Job.runtime)
    (Trace.jobs a)

let test_seed_changes_workload () =
  let _, a = month_small ~seed:1 "7/03" in
  let _, b = month_small ~seed:2 "7/03" in
  let ja = Trace.jobs a and jb = Trace.jobs b in
  let n = min (Array.length ja) (Array.length jb) in
  let differs = ref false in
  for i = 0 to n - 1 do
    if ja.(i).Job.submit <> jb.(i).Job.submit
       || ja.(i).Job.nodes <> jb.(i).Job.nodes
    then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_job_count () =
  let profile, t = month_small ~scale:0.2 "10/03" in
  let expected =
    int_of_float (Float.round (0.2 *. float_of_int profile.Month_profile.n_jobs))
  in
  let measured = List.length (Trace.measured t) in
  Alcotest.(check int) "measured job count" expected measured

let test_jobs_within_limits () =
  let profile, t = month_small "12/03" in
  Array.iter
    (fun (j : Job.t) ->
      Alcotest.(check bool) "nodes within machine" true
        (j.nodes >= 1 && j.nodes <= Month_profile.capacity);
      Alcotest.(check bool) "runtime within limit" true
        (j.runtime > 0.0
        && j.runtime <= profile.Month_profile.runtime_limit +. 1e-6);
      Alcotest.(check bool) "requested >= runtime" true
        (j.requested >= j.runtime))
    (Trace.jobs t)

let test_load_calibration () =
  List.iter
    (fun label ->
      let profile, t = month_small ~scale:0.5 label in
      let load = Trace.offered_load t ~capacity:Month_profile.capacity in
      let target = profile.Month_profile.load in
      Alcotest.(check bool)
        (Printf.sprintf "%s load %.2f within 0.02 of %.2f" label load target)
        true
        (Float.abs (load -. target) < 0.02))
    [ "6/03"; "7/03"; "1/04"; "3/04" ]

let test_mix_calibration () =
  let profile, t = month_small ~scale:0.5 "10/03" in
  let mix = Mix_report.of_trace ~capacity:Month_profile.capacity t in
  let norm arr =
    let s = Array.fold_left ( +. ) 0.0 arr in
    Array.map (fun v -> 100.0 *. v /. s) arr
  in
  let jobs_diff =
    Mix_report.max_abs_diff mix.Mix_report.jobs8
      (norm profile.Month_profile.jobs8)
  in
  Alcotest.(check bool)
    (Printf.sprintf "job-mix within 5 points (got %.1f)" jobs_diff)
    true (jobs_diff < 5.0);
  let demand_diff =
    Mix_report.max_abs_diff mix.Mix_report.demand8
      (norm profile.Month_profile.demand8)
  in
  Alcotest.(check bool)
    (Printf.sprintf "demand within 12 points (got %.1f)" demand_diff)
    true (demand_diff < 12.0)

let test_runtime_class_calibration () =
  let profile, t = month_small ~scale:0.5 "1/04" in
  let mix = Mix_report.of_trace ~capacity:Month_profile.capacity t in
  (* January 2004's signature features should survive generation: many
     long one-node jobs and many short 9-32-node jobs. *)
  Alcotest.(check bool) "1/04 long one-node jobs prominent" true
    (mix.Mix_report.long5.(0) > 12.0);
  Alcotest.(check bool) "1/04 short 9-32 jobs prominent" true
    (mix.Mix_report.short5.(3) > 10.0);
  ignore profile

let test_warmup_cooldown_windows () =
  let _, t = month_small ~scale:0.2 "6/03" in
  let start = Trace.measure_start t and stop = Trace.measure_end t in
  (* the final load correction rescales the time axis by a few percent,
     so compare proportionally *)
  Alcotest.(check bool) "warmup is about a scaled week" true
    (Float.abs ((start /. (Simcore.Units.week *. 0.2)) -. 1.0) < 0.25);
  Alcotest.(check bool) "window is about a scaled month" true
    (Float.abs (((stop -. start) /. (Month_profile.span *. 0.2)) -. 1.0) < 0.25);
  let before = ref 0 and inside = ref 0 and after = ref 0 in
  Array.iter
    (fun (j : Job.t) ->
      if j.submit < start then incr before
      else if j.submit < stop then incr inside
      else incr after)
    (Trace.jobs t);
  Alcotest.(check bool) "warmup jobs exist" true (!before > 0);
  Alcotest.(check bool) "cooldown jobs exist" true (!after > 0);
  Alcotest.(check bool) "most jobs in window" true (!inside > !before + !after)

let test_arrival_times_ordered_and_bounded () =
  let rng = Simcore.Rng.create ~seed:4 in
  let times =
    Generator.arrival_times rng ~origin:100.0 ~span:1000.0 ~count:200
  in
  Alcotest.(check int) "count" 200 (Array.length times);
  Array.iteri
    (fun i v ->
      Alcotest.(check bool) "in range" true (v >= 100.0 && v < 1100.0);
      if i > 0 then
        Alcotest.(check bool) "ascending" true (v >= times.(i - 1)))
    times

let test_draw_nodes_in_range () =
  let rng = Simcore.Rng.create ~seed:6 in
  let bounds = [| (1, 1); (2, 2); (3, 4); (5, 8); (9, 16); (17, 32);
                  (33, 64); (65, 128) |]
  in
  for range = 0 to 7 do
    let lo, hi = bounds.(range) in
    for _ = 1 to 200 do
      let n = Generator.draw_nodes rng ~range in
      Alcotest.(check bool)
        (Printf.sprintf "range %d: %d in [%d,%d]" range n lo hi)
        true
        (n >= lo && n <= hi)
    done
  done

let test_bucket_bounds () =
  let limit = Simcore.Units.hours 24.0 in
  let lo0, hi0 = Generator.bucket_bounds ~limit 0 in
  let lo1, hi1 = Generator.bucket_bounds ~limit 1 in
  let lo2, hi2 = Generator.bucket_bounds ~limit 2 in
  Alcotest.(check (float 1e-9)) "short top = 1h" Simcore.Units.hour hi0;
  Alcotest.(check (float 1e-9)) "middle spans 1h..5h" Simcore.Units.hour lo1;
  Alcotest.(check (float 1e-9)) "middle top = 5h" (Simcore.Units.hours 5.0) hi1;
  Alcotest.(check (float 1e-9)) "long spans 5h..limit"
    (Simcore.Units.hours 5.0) lo2;
  Alcotest.(check (float 1e-9)) "long top = limit" limit hi2;
  Alcotest.(check bool) "short low positive" true (lo0 > 0.0)

let suite =
  [
    Alcotest.test_case "deterministic in seed" `Quick test_deterministic;
    Alcotest.test_case "seed changes workload" `Quick test_seed_changes_workload;
    Alcotest.test_case "job count matches scale" `Quick test_job_count;
    Alcotest.test_case "jobs within limits" `Quick test_jobs_within_limits;
    Alcotest.test_case "load calibration" `Quick test_load_calibration;
    Alcotest.test_case "mix calibration" `Quick test_mix_calibration;
    Alcotest.test_case "runtime-class calibration (1/04)" `Quick
      test_runtime_class_calibration;
    Alcotest.test_case "warmup/cooldown windows" `Quick
      test_warmup_cooldown_windows;
    Alcotest.test_case "arrival times" `Quick
      test_arrival_times_ordered_and_bounded;
    Alcotest.test_case "draw_nodes ranges" `Quick test_draw_nodes_in_range;
    Alcotest.test_case "bucket bounds" `Quick test_bucket_bounds;
  ]
