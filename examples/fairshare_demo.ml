(* Fairshare demo (the paper's Section 7 future-work feature).

   Builds a month dominated by one heavy user, then compares plain
   DDS/lxf/dynB against the fairshare variant whose excessive-wait
   thresholds inflate with each user's decayed usage share.  Per-user
   service statistics and Jain's fairness index show the shift.

   Run with:  dune exec examples/fairshare_demo.exe *)

let () =
  let profile = Workload.Month_profile.find "9/03" in
  let config =
    { Workload.Generator.default_config with scale = 0.25; seed = 5; users = 6 }
  in
  let base = Workload.Generator.month ~config profile in
  let trace =
    Workload.Trace.scale_load base ~capacity:Workload.Month_profile.capacity
      ~target:0.9
  in
  Format.printf "workload: %s (6 users, Zipf demand)@."
    (Workload.Trace.concat_stats trace);

  let plain = Core.Search_policy.dds_lxf_dynb ~budget:1000 in
  let fair = { plain with Core.Search_policy.fairshare = Some 2.0 } in
  List.iter
    (fun config ->
      let policy = fst (Core.Search_policy.policy config) in
      let run = Sim.Run.simulate ~r_star:Sim.Engine.Actual ~policy trace in
      let stats = Metrics.User_stats.compute run.Sim.Run.measured in
      Format.printf "@.=== %s ===@." run.Sim.Run.policy_name;
      Format.printf "overall: %a@." Metrics.Aggregate.pp run.Sim.Run.aggregate;
      Format.printf "%a" (Metrics.User_stats.pp_top ~n:6) stats)
    [ plain; fair ];
  Format.printf
    "@.With +fair, jobs of users holding a large usage share tolerate@.\
     longer waits before counting as 'excessive', freeing the scheduler@.\
     to serve light users sooner.@."
