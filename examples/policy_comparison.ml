(* Compare the full policy zoo on one month under high load.

   Demonstrates: workload generation, load scaling (the paper's
   rho = 0.9 construction), running many policies over the same trace,
   and the excessive-wait measures relative to FCFS-backfill.

   Run with:  dune exec examples/policy_comparison.exe [month] *)

let month_label =
  if Array.length Sys.argv > 1 then Sys.argv.(1) else "10/03"

let () =
  let profile = Workload.Month_profile.find month_label in
  let config = { Workload.Generator.default_config with scale = 0.25; seed = 11 } in
  let base = Workload.Generator.month ~config profile in
  let trace =
    Workload.Trace.scale_load base ~capacity:Workload.Month_profile.capacity
      ~target:0.9
  in
  Format.printf "month %s at rho=0.9: %s@." month_label
    (Workload.Trace.concat_stats trace);

  let search config = fst (Core.Search_policy.policy config) in
  let policies =
    [
      Sched.Backfill.fcfs;
      Sched.Backfill.lxf;
      Sched.Backfill.sjf;
      Sched.Selective.policy ();
      Sched.Conservative.policy ();
      search (Core.Search_policy.dds_lxf_dynb ~budget:1000);
      search
        (Core.Search_policy.v ~algorithm:Core.Search.Lds
           ~heuristic:Core.Branching.Lxf ~bound:Core.Bound.dynamic
           ~budget:1000 ());
    ]
  in
  let runs =
    List.map
      (fun policy -> Sim.Run.simulate ~r_star:Sim.Engine.Actual ~policy trace)
      policies
  in
  (* threshold: FCFS-backfill's max wait in this month *)
  let fcfs = List.hd runs in
  let threshold = fcfs.Sim.Run.aggregate.Metrics.Aggregate.max_wait in
  Format.printf "@.%-28s %9s %9s %9s %12s %8s@." "policy" "avgW(h)" "maxW(h)"
    "avgBsld" "totExc(h)" "#exc";
  List.iter
    (fun run ->
      let agg = run.Sim.Run.aggregate in
      let excess = Sim.Run.excess run ~threshold in
      Format.printf "%-28s %9.2f %9.2f %9.1f %12.1f %8d@."
        run.Sim.Run.policy_name
        (Metrics.Aggregate.avg_wait_hours agg)
        (Metrics.Aggregate.max_wait_hours agg)
        agg.Metrics.Aggregate.avg_bounded_slowdown
        (Metrics.Excess.total_hours excess)
        excess.Metrics.Excess.count)
    runs;
  Format.printf
    "@.(totExc/#exc = total excessive wait and number of jobs waiting@.\
    \ beyond FCFS-backfill's maximum wait of %.1f hours)@."
    (Simcore.Units.to_hours threshold)
