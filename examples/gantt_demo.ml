(* Visualize how two policies schedule the same small workload.

   Renders per-job timelines (queueing vs execution) and the machine
   utilization profile for FCFS-backfill and DDS/lxf/dynB on a bursty
   16-node workload, making the search policy's reordering visible.

   Run with:  dune exec examples/gantt_demo.exe *)

let machine = Cluster.Machine.v ~nodes:16

let bursty_workload () =
  (* a morning burst of narrow jobs, one wide long job in the middle,
     then an afternoon burst of short wide jobs *)
  let jobs = ref [] in
  let add ~id ~submit ~nodes ~runtime =
    jobs :=
      Workload.Job.v ~id ~submit ~nodes ~runtime ~requested:runtime :: !jobs
  in
  for i = 0 to 7 do
    add ~id:i ~submit:(60.0 *. float_of_int i) ~nodes:2
      ~runtime:(1800.0 +. (300.0 *. float_of_int (i mod 3)))
  done;
  add ~id:8 ~submit:600.0 ~nodes:16 ~runtime:3600.0;
  for i = 9 to 14 do
    add ~id:i
      ~submit:(1200.0 +. (120.0 *. float_of_int i))
      ~nodes:8 ~runtime:900.0
  done;
  Workload.Trace.v !jobs

let () =
  let trace = bursty_workload () in
  let policies =
    [
      Sched.Backfill.fcfs;
      fst (Core.Search_policy.policy (Core.Search_policy.dds_lxf_dynb ~budget:2000));
    ]
  in
  List.iter
    (fun policy ->
      let result =
        Sim.Engine.run ~machine ~r_star:Sim.Engine.Actual ~policy trace
      in
      Format.printf "@.=== %s ===@." policy.Sched.Policy.name;
      Sim.Gantt.jobs_chart Format.std_formatter result.Sim.Engine.outcomes;
      Sim.Gantt.utilization_chart Format.std_formatter
        ~capacity:machine.Cluster.Machine.nodes result.Sim.Engine.outcomes;
      let agg = Metrics.Aggregate.compute result.Sim.Engine.outcomes in
      Format.printf "%a@." Metrics.Aggregate.pp agg)
    policies
