(* Quickstart: generate a small synthetic month, schedule it with the
   paper's headline policy (DDS/lxf/dynB) and the two backfill
   baselines, and print the headline measures.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* A scaled-down July 2003 so the example finishes in seconds. *)
  let profile = Workload.Month_profile.find "7/03" in
  let config = { Workload.Generator.default_config with scale = 0.15; seed = 7 } in
  let trace = Workload.Generator.month ~config profile in
  Format.printf "workload: %s@." (Workload.Trace.concat_stats trace);

  let search_policy, _stats =
    Core.Search_policy.policy (Core.Search_policy.dds_lxf_dynb ~budget:1000)
  in
  let policies = [ Sched.Backfill.fcfs; Sched.Backfill.lxf; search_policy ] in

  Format.printf "@.%-22s %10s %10s %10s@." "policy" "avg wait" "max wait"
    "avg bsld";
  List.iter
    (fun policy ->
      let run = Sim.Run.simulate ~r_star:Sim.Engine.Actual ~policy trace in
      let agg = run.Sim.Run.aggregate in
      Format.printf "%-22s %9.2fh %9.2fh %10.1f@." run.Sim.Run.policy_name
        (Metrics.Aggregate.avg_wait_hours agg)
        (Metrics.Aggregate.max_wait_hours agg)
        agg.Metrics.Aggregate.avg_bounded_slowdown)
    policies
