(* Explore the target-wait-bound design space of the goal-oriented
   objective (Section 5 of the paper): fixed bounds of various sizes,
   the dynamic bound, and the runtime-scaled future-work bound.

   Run with:  dune exec examples/bound_tuning.exe *)

let () =
  let profile = Workload.Month_profile.find "9/03" in
  let config = { Workload.Generator.default_config with scale = 0.25; seed = 23 } in
  let trace = Workload.Generator.month ~config profile in
  Format.printf "month 9/03 (original load): %s@."
    (Workload.Trace.concat_stats trace);

  let bounds =
    [
      ("w=0h (pure avg wait)", Core.Bound.Fixed 0.0);
      ("w=10h", Core.Bound.fixed_hours 10.0);
      ("w=50h", Core.Bound.fixed_hours 50.0);
      ("w=300h", Core.Bound.fixed_hours 300.0);
      ("dynB", Core.Bound.dynamic);
      ( "rtB(1h + 2T)",
        Core.Bound.Runtime_scaled { floor = Simcore.Units.hour; factor = 2.0 } );
    ]
  in
  Format.printf "@.%-24s %9s %9s %9s@." "bound" "avgW(h)" "maxW(h)" "avgBsld";
  List.iter
    (fun (label, bound) ->
      let config =
        Core.Search_policy.v ~algorithm:Core.Search.Dds
          ~heuristic:Core.Branching.Lxf ~bound ~budget:1000 ()
      in
      let policy = fst (Core.Search_policy.policy config) in
      let run = Sim.Run.simulate ~r_star:Sim.Engine.Actual ~policy trace in
      let agg = run.Sim.Run.aggregate in
      Format.printf "%-24s %9.2f %9.2f %9.1f@." label
        (Metrics.Aggregate.avg_wait_hours agg)
        (Metrics.Aggregate.max_wait_hours agg)
        agg.Metrics.Aggregate.avg_bounded_slowdown)
    bounds;
  Format.printf
    "@.The paper's conclusion: very small or very large fixed bounds are@.\
     detrimental; the dynamic bound adapts without manual tuning.@."
