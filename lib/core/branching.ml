type t = Fcfs | Lxf

let name = function Fcfs -> "fcfs" | Lxf -> "lxf"

let order t ~now ~r_star waiting =
  let arr = Array.of_list waiting in
  let compare =
    match t with
    | Fcfs -> Sched.Priority.fcfs.Sched.Priority.compare ~now ~r_star
    | Lxf -> Sched.Priority.lxf.Sched.Priority.compare ~now ~r_star
  in
  Array.sort compare arr;
  arr
