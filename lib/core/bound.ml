type t =
  | Fixed of float
  | Dynamic
  | Runtime_scaled of { floor : float; factor : float }

let fixed_hours h = Fixed (Simcore.Units.hours h)
let dynamic = Dynamic

let name = function
  | Fixed w -> Printf.sprintf "w=%gh" (Simcore.Units.to_hours w)
  | Dynamic -> "dynB"
  | Runtime_scaled { floor; factor } ->
      Printf.sprintf "rtB(%gh+%gT)" (Simcore.Units.to_hours floor) factor

let thresholds t ~now ~r_star jobs =
  match t with
  | Fixed w -> Array.map (fun _ -> w) jobs
  | Dynamic ->
      let longest =
        Array.fold_left
          (fun acc (j : Workload.Job.t) -> Float.max acc (now -. j.submit))
          0.0 jobs
      in
      Array.map (fun _ -> longest) jobs
  | Runtime_scaled { floor; factor } ->
      Array.map
        (fun j -> Float.max floor (factor *. r_star j))
        jobs
