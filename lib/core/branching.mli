(** Branching heuristics for the search tree (Section 2.2).

    The heuristic fixes, once per decision point, the order in which
    waiting jobs are preferred; the left-most branch at every tree node
    follows it and any other branch is a discrepancy. *)

type t = Fcfs | Lxf

val name : t -> string
(** ["fcfs"] or ["lxf"]. *)

val order :
  t ->
  now:float ->
  r_star:(Workload.Job.t -> float) ->
  Workload.Job.t list ->
  Workload.Job.t array
(** Sort the waiting jobs into heuristic preference order: [Fcfs] by
    submission time, [Lxf] by descending current expansion factor
    (ties by submission). *)
