(** Target wait bounds for the excessive-wait goal.

    The first-level objective charges a job only for wait time beyond a
    target bound.  The paper studies a fixed bound omega (Section 5.1)
    and a dynamic bound equal to the waiting time of the job that has
    currently been waiting longest (Section 5.2, "dynB").  The
    runtime-scaled bound is the future-work extension sketched in
    Section 6.1: give short jobs a tighter bound, proportional to their
    estimated runtime, with a floor. *)

type t =
  | Fixed of float  (** bound = omega seconds, same for every job *)
  | Dynamic
      (** bound = longest current wait among queued jobs at the
          decision time (zero when the queue is empty) *)
  | Runtime_scaled of { floor : float; factor : float }
      (** per-job bound = max(floor, factor x estimated runtime) *)

val fixed_hours : float -> t
(** [fixed_hours h] is [Fixed] with [h] hours. *)

val dynamic : t

val name : t -> string
(** Short name used in policy labels, e.g. "dynB", "w=50h". *)

val thresholds :
  t ->
  now:float ->
  r_star:(Workload.Job.t -> float) ->
  Workload.Job.t array ->
  float array
(** Per-job wait-time thresholds (seconds) for the given waiting jobs
    at a decision point. *)
