type backtrack = Trail | Snapshot

type t = {
  now : float;
  secondary : Objective.secondary;
  backtrack : backtrack;
  jobs : Workload.Job.t array;
  durations : float array;
  thresholds : float array;
  base : Cluster.Profile.t;
  work : Cluster.Profile.t;  (* Trail: the single mutable profile *)
  marks : Cluster.Profile.mark array;  (* Trail: one mark per depth *)
  profiles : Cluster.Profile.t array;  (* Snapshot: one snapshot per depth *)
  used : bool array;
  (* Circular doubly-linked list of unused job indices in increasing
     order, with sentinel [n]: rank-r lookup is an r-step walk and the
     heuristic child (rank 0) is O(1).  Removal and LIFO re-insertion
     are the dancing-links constant-time splices. *)
  unext : int array;
  uprev : int array;
  chosen : int array;
  starts : float array;
  (* Partial objectives as unboxed parallel arrays: the hot path writes
     two floats per placement instead of allocating an Objective.t. *)
  p_excess : float array;
  p_secondary : float array;
  on_place : (depth:int -> job:int -> start:float -> unit) option;
  mutable visited : int;
}

let reset_links t =
  let n = Array.length t.jobs in
  for i = 0 to n do
    t.unext.(i) <- (i + 1) mod (n + 1);
    t.uprev.(i) <- (i + n) mod (n + 1)
  done

let create ?(secondary = Objective.Bounded_slowdown) ?(backtrack = Trail)
    ?on_place ~now ~profile ~jobs ~durations ~thresholds () =
  let n = Array.length jobs in
  if Array.length durations <> n || Array.length thresholds <> n then
    invalid_arg "Search_state.create: array length mismatch";
  let t =
    {
      now;
      secondary;
      backtrack;
      jobs;
      durations;
      thresholds;
      base = profile;
      work =
        (match backtrack with
        | Trail -> Cluster.Profile.copy profile
        | Snapshot -> profile);
      marks = Array.make n 0;
      profiles =
        (match backtrack with
        | Trail -> [||]
        | Snapshot -> Array.init n (fun _ -> Cluster.Profile.copy profile));
      used = Array.make n false;
      unext = Array.make (n + 1) 0;
      uprev = Array.make (n + 1) 0;
      chosen = Array.make n (-1);
      starts = Array.make n 0.0;
      p_excess = Array.make n 0.0;
      p_secondary = Array.make n 0.0;
      on_place;
      visited = 0;
    }
  in
  reset_links t;
  t

let secondary t = t.secondary
let backtrack t = t.backtrack
let job_count t = Array.length t.jobs
let now t = t.now
let nodes_visited t = t.visited

let place t ~depth ~job =
  assert (not t.used.(job));
  let j = t.jobs.(job) in
  (* local compares instead of [Float.max]: its out-of-line calls box
     both float arguments and the result, three times per node *)
  let d = t.durations.(job) in
  let duration = if d > 1.0 then d else 1.0 in
  let s =
    match t.backtrack with
    | Trail ->
        t.marks.(depth) <- Cluster.Profile.mark t.work;
        Cluster.Profile.stage_duration t.work duration;
        Cluster.Profile.place_earliest_staged t.work
          ~nodes:j.Workload.Job.nodes;
        Cluster.Profile.staged_start t.work
    | Snapshot ->
        let parent = if depth = 0 then t.base else t.profiles.(depth - 1) in
        let profile = t.profiles.(depth) in
        Cluster.Profile.copy_into ~src:parent ~dst:profile;
        let s =
          Cluster.Profile.earliest_start profile ~nodes:j.Workload.Job.nodes
            ~duration
        in
        Cluster.Profile.reserve profile ~at:s ~nodes:j.Workload.Job.nodes
          ~duration;
        s
  in
  let wait = s -. j.Workload.Job.submit in
  let excess, secondary_sum =
    if depth = 0 then (0.0, 0.0)
    else (t.p_excess.(depth - 1), t.p_secondary.(depth - 1))
  in
  let over = wait -. t.thresholds.(job) in
  t.p_excess.(depth) <- (if over > 0.0 then excess +. over else excess);
  t.p_secondary.(depth) <-
    secondary_sum
    +.
    (match t.secondary with
    | Objective.Bounded_slowdown ->
        let denom = if d > Simcore.Units.minute then d else Simcore.Units.minute in
        1.0 +. (wait /. denom)
    | Objective.Avg_wait -> wait);
  t.used.(job) <- true;
  t.unext.(t.uprev.(job)) <- t.unext.(job);
  t.uprev.(t.unext.(job)) <- t.uprev.(job);
  t.chosen.(depth) <- job;
  t.starts.(depth) <- s;
  t.visited <- t.visited + 1;
  match t.on_place with
  | None -> ()
  | Some f -> f ~depth ~job ~start:s

let unplace t ~depth =
  let job = t.chosen.(depth) in
  assert (job >= 0 && t.used.(job));
  (match t.backtrack with
  | Trail -> Cluster.Profile.undo_to t.work t.marks.(depth)
  | Snapshot -> ());
  t.used.(job) <- false;
  (* dancing-links re-insertion: valid because unplacements mirror
     placements in LIFO order *)
  t.unext.(t.uprev.(job)) <- job;
  t.uprev.(t.unext.(job)) <- job;
  t.chosen.(depth) <- -1

let reset t =
  let n = Array.length t.jobs in
  Array.fill t.used 0 n false;
  Array.fill t.chosen 0 n (-1);
  Array.fill t.starts 0 n 0.0;
  Array.fill t.p_excess 0 n 0.0;
  Array.fill t.p_secondary 0 n 0.0;
  reset_links t;
  match t.backtrack with
  | Trail -> Cluster.Profile.undo_to t.work 0
  | Snapshot -> ()

let used t i = t.used.(i)
let chosen t ~depth = t.chosen.(depth)
let start_at t ~depth = t.starts.(depth)

let partial t ~depth =
  {
    Objective.excess = t.p_excess.(depth);
    secondary_sum = t.p_secondary.(depth);
    jobs = depth + 1;
  }

let leaf_objective t = partial t ~depth:(Array.length t.jobs - 1)

let nth_unused t r =
  let sentinel = Array.length t.jobs in
  let rec walk node remaining =
    if node = sentinel then None
    else if remaining = 0 then Some node
    else walk t.unext.(node) (remaining - 1)
  in
  walk t.unext.(sentinel) r

let first_unused t = t.unext.(Array.length t.jobs)
let next_unused t job = t.unext.(job)

let start_now_set t ~order ~starts =
  let eps = 1e-6 in
  let picked = ref [] in
  Array.iteri
    (fun d job ->
      if starts.(d) <= t.now +. eps then picked := t.jobs.(job) :: !picked)
    order;
  List.rev !picked
