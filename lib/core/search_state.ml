type t = {
  now : float;
  secondary : Objective.secondary;
  jobs : Workload.Job.t array;
  durations : float array;
  thresholds : float array;
  base : Cluster.Profile.t;
  profiles : Cluster.Profile.t array;  (* one snapshot per depth *)
  used : bool array;
  chosen : int array;
  starts : float array;
  partials : Objective.t array;
  mutable visited : int;
}

let create ?(secondary = Objective.Bounded_slowdown) ~now ~profile ~jobs
    ~durations ~thresholds () =
  let n = Array.length jobs in
  if Array.length durations <> n || Array.length thresholds <> n then
    invalid_arg "Search_state.create: array length mismatch";
  {
    now;
    secondary;
    jobs;
    durations;
    thresholds;
    base = profile;
    profiles = Array.init n (fun _ -> Cluster.Profile.copy profile);
    used = Array.make n false;
    chosen = Array.make n (-1);
    starts = Array.make n 0.0;
    partials = Array.make n Objective.zero;
    visited = 0;
  }

let secondary t = t.secondary
let job_count t = Array.length t.jobs
let now t = t.now
let nodes_visited t = t.visited

let place t ~depth ~job =
  assert (not t.used.(job));
  let parent = if depth = 0 then t.base else t.profiles.(depth - 1) in
  let profile = t.profiles.(depth) in
  Cluster.Profile.copy_into ~src:parent ~dst:profile;
  let j = t.jobs.(job) in
  let duration = Float.max t.durations.(job) 1.0 in
  let s =
    Cluster.Profile.earliest_start profile ~nodes:j.Workload.Job.nodes
      ~duration
  in
  Cluster.Profile.reserve profile ~at:s ~nodes:j.Workload.Job.nodes ~duration;
  let wait = s -. j.Workload.Job.submit in
  let prev = if depth = 0 then Objective.zero else t.partials.(depth - 1) in
  t.partials.(depth) <-
    Objective.add ~secondary:t.secondary prev ~wait
      ~threshold:t.thresholds.(job) ~est_runtime:t.durations.(job);
  t.used.(job) <- true;
  t.chosen.(depth) <- job;
  t.starts.(depth) <- s;
  t.visited <- t.visited + 1;
  s

let unplace t ~depth =
  let job = t.chosen.(depth) in
  assert (job >= 0 && t.used.(job));
  t.used.(job) <- false;
  t.chosen.(depth) <- -1

let reset t =
  Array.fill t.used 0 (Array.length t.used) false;
  Array.fill t.chosen 0 (Array.length t.chosen) (-1)

let used t i = t.used.(i)
let chosen t ~depth = t.chosen.(depth)
let start_at t ~depth = t.starts.(depth)
let partial t ~depth = t.partials.(depth)
let leaf_objective t = t.partials.(Array.length t.jobs - 1)

let nth_unused t r =
  let n = Array.length t.jobs in
  let rec scan i remaining =
    if i >= n then None
    else if t.used.(i) then scan (i + 1) remaining
    else if remaining = 0 then Some i
    else scan (i + 1) (remaining - 1)
  in
  scan 0 r

let start_now_set t ~order ~starts =
  let eps = 1e-6 in
  let picked = ref [] in
  Array.iteri
    (fun d job ->
      if starts.(d) <= t.now +. eps then picked := t.jobs.(job) :: !picked)
    order;
  List.rev !picked
