type config = {
  algorithm : Search.algorithm;
  heuristic : Branching.t;
  bound : Bound.t;
  budget : int;
  prune : bool;
  local_search : bool;
  fairshare : float option;
  goal : Objective.secondary;
}

let v ?(prune = false) ?(local_search = false) ?fairshare
    ?(goal = Objective.Bounded_slowdown) ~algorithm ~heuristic ~bound ~budget
    () =
  if budget < 1 then invalid_arg "Search_policy.v: budget must be >= 1";
  { algorithm; heuristic; bound; budget; prune; local_search; fairshare; goal }

let dds_lxf_dynb ~budget =
  v ~algorithm:Search.Dds ~heuristic:Branching.Lxf ~bound:Bound.dynamic
    ~budget ()

let pp_budget budget =
  if budget mod 1000 = 0 then Printf.sprintf "%dK" (budget / 1000)
  else string_of_int budget

let name config =
  Printf.sprintf "%s/%s/%s(L=%s)%s%s%s%s"
    (String.uppercase_ascii (Search.algorithm_name config.algorithm))
    (Branching.name config.heuristic)
    (Bound.name config.bound) (pp_budget config.budget)
    (if config.prune then "+bnb" else "")
    (if config.local_search then "+ls" else "")
    (match config.fairshare with
    | None -> ""
    | Some penalty -> Printf.sprintf "+fair(%g)" penalty)
    (match config.goal with
    | Objective.Bounded_slowdown -> ""
    | Objective.Avg_wait -> "@goal=avgW")

type stats = {
  decisions : int;
  total_nodes : int;
  total_leaves : int;
  max_queue : int;
}

let state_of ?usage config (ctx : Sched.Policy.context) =
  let profile = Sched.Policy.profile_of ctx in
  let jobs =
    Branching.order config.heuristic ~now:ctx.now ~r_star:ctx.r_star
      ctx.waiting
  in
  let durations = Array.map ctx.r_star jobs in
  let thresholds =
    Bound.thresholds config.bound ~now:ctx.now ~r_star:ctx.r_star jobs
  in
  (match (config.fairshare, usage) with
  | Some penalty, Some tracker ->
      Array.iteri
        (fun i (j : Workload.Job.t) ->
          thresholds.(i) <-
            thresholds.(i)
            *. Fairshare.threshold_factor tracker ~now:ctx.now ~penalty
                 j.user)
        jobs
  | _ -> ());
  Search_state.create ~secondary:config.goal ~now:ctx.now ~profile ~jobs
    ~durations ~thresholds ()

let search ?probe config state =
  let result = Search.run ~prune:config.prune ?probe config.algorithm
      ~budget:config.budget state
  in
  if config.local_search then
    Local_search.improve ~budget:(config.budget / 4) state result
  else result

let decide_detailed config ctx =
  match ctx.Sched.Policy.waiting with
  | [] -> None
  | _ :: _ -> Some (search config (state_of config ctx))

let policy config =
  let decisions = ref 0 in
  let total_nodes = ref 0 in
  let total_leaves = ref 0 in
  let max_queue = ref 0 in
  (* One preallocated probe per policy instance, overwritten at every
     decision; the engine's decision log snapshots it after [decide]. *)
  let probe = Simcore.Telemetry.Probe.create () in
  (* Policy-owned metric registry (the Sched.Policy metric hook).
     Created disabled, so recording below is a load+branch until a
     reporting surface enables it. *)
  let metrics = Simcore.Metrics.create () in
  let m_decisions =
    Simcore.Metrics.counter metrics "schedsim_search_decisions"
      ~help:"decision points at which the tree search ran"
  in
  let m_nodes =
    Simcore.Metrics.counter metrics "schedsim_search_nodes"
      ~help:"search nodes visited across all decisions"
  in
  let m_leaves =
    Simcore.Metrics.counter metrics "schedsim_search_leaves"
      ~help:"complete schedules evaluated across all decisions"
  in
  let m_exhausted =
    Simcore.Metrics.counter metrics "schedsim_search_exhausted"
      ~help:"decisions whose whole tree fit in the node budget"
  in
  let m_improvements =
    Simcore.Metrics.counter metrics "schedsim_search_improvements"
      ~help:"incumbent improvements across all decisions"
  in
  let m_nodes_per_decision =
    Simcore.Metrics.histogram metrics "schedsim_search_nodes_per_decision"
      ~help:"search nodes visited per decision point"
  in
  let usage =
    match config.fairshare with
    | None -> None
    | Some _ -> Some (Fairshare.create ())
  in
  let decide (ctx : Sched.Policy.context) =
    match ctx.waiting with
    | [] ->
        (* leave no stale effort behind for the decision log *)
        Simcore.Telemetry.Probe.reset probe;
        []
    | _ :: _ ->
        let state = state_of ?usage config ctx in
        let result = search ~probe config state in
        incr decisions;
        total_nodes := !total_nodes + result.Search.nodes_visited;
        total_leaves := !total_leaves + result.Search.leaves_evaluated;
        max_queue := Stdlib.max !max_queue (Search_state.job_count state);
        Simcore.Metrics.incr m_decisions;
        Simcore.Metrics.add m_nodes result.Search.nodes_visited;
        Simcore.Metrics.add m_leaves result.Search.leaves_evaluated;
        if result.Search.exhausted then Simcore.Metrics.incr m_exhausted;
        Simcore.Metrics.add m_improvements probe.Simcore.Telemetry.Probe.improvements;
        Simcore.Metrics.observe m_nodes_per_decision
          result.Search.nodes_visited;
        let started =
          Search_state.start_now_set state ~order:result.Search.best_order
            ~starts:result.Search.best_starts
        in
        (match usage with
        | None -> ()
        | Some tracker ->
            List.iter
              (fun (j : Workload.Job.t) ->
                Fairshare.record_start tracker ~now:ctx.now ~nodes:j.nodes
                  ~duration:(ctx.r_star j) ~user:j.user)
              started);
        started
  in
  let stats () =
    {
      decisions = !decisions;
      total_nodes = !total_nodes;
      total_leaves = !total_leaves;
      max_queue = !max_queue;
    }
  in
  ( Sched.Policy.with_metrics
      (Sched.Policy.with_probe (Sched.Policy.make ~name:(name config) ~decide)
         probe)
      metrics,
    stats )
