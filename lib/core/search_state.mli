(** Mutable search-tree state: incremental schedule construction.

    A tree node at depth [d] corresponds to having placed [d + 1] jobs
    onto the availability profile, each at its earliest feasible start
    given the running jobs and the placements above it on the path
    (Section 2.2: "the start time of each job is computed in the order
    it appears on the path").  The state keeps one profile snapshot per
    depth so that backtracking is a pointer reset, and placing a job is
    an O(segments) copy + reservation — the search hot path allocates
    nothing.

    Jobs are indexed 0 .. n-1 in *heuristic order* (see {!Branching});
    child rank 0 of any node is the lowest-indexed unused job. *)

type t

val create :
  ?secondary:Objective.secondary ->
  now:float ->
  profile:Cluster.Profile.t ->
  jobs:Workload.Job.t array ->
  durations:float array ->
  thresholds:float array ->
  unit ->
  t
(** [profile] is the availability profile of the running set at [now];
    [durations.(i)] is the scheduler-visible runtime of [jobs.(i)];
    [thresholds.(i)] its excessive-wait bound.  [secondary] selects the
    tie-breaking goal (default: the paper's bounded slowdown).
    @raise Invalid_argument on array length mismatch. *)

val secondary : t -> Objective.secondary

val job_count : t -> int
val now : t -> float

val nodes_visited : t -> int
(** Total placements performed so far (the paper's "nodes"). *)

val place : t -> depth:int -> job:int -> float
(** [place t ~depth ~job] chooses job index [job] at [depth]; places it
    at its earliest start and returns that start time.  Depths must be
    filled in order; [job] must be unused.  Counts one node visit. *)

val unplace : t -> depth:int -> unit
(** Undo the placement at [depth] (must be the deepest placement). *)

val reset : t -> unit
(** Unplace everything (used after an aborted search unwound through an
    exception).  Does not reset the node counter. *)

val used : t -> int -> bool
val chosen : t -> depth:int -> int
val start_at : t -> depth:int -> float
val partial : t -> depth:int -> Objective.t
(** Objective of the path prefix through [depth]. *)

val leaf_objective : t -> Objective.t
(** Objective of a complete path (depth [n-1] placed). *)

val nth_unused : t -> int -> int option
(** [nth_unused t r] is the index of the [r]-th unused job in
    heuristic order (rank 0 = heuristic choice), if any. *)

val start_now_set : t -> order:int array -> starts:float array -> Workload.Job.t list
(** Given a recorded best path (job indices + start times), the jobs
    whose start time equals the decision time (within 1 s), in path
    order — the jobs the policy starts immediately. *)
