(** Mutable search-tree state: incremental schedule construction.

    A tree node at depth [d] corresponds to having placed [d + 1] jobs
    onto the availability profile, each at its earliest feasible start
    given the running jobs and the placements above it on the path
    (Section 2.2: "the start time of each job is computed in the order
    it appears on the path").

    Two backtracking strategies share this interface:

    - [Trail] (default): one working profile plus a reverse-delta
      trail; {!place} marks the trail before reserving and {!unplace}
      rolls back exactly the segments the reservation touched, so a
      place/unplace pair costs O(segments touched), not O(profile).
    - [Snapshot]: the original one-profile-snapshot-per-depth scheme
      ({!Cluster.Profile.copy_into} per place), kept as a debug oracle
      — the equivalence test suite checks both strategies visit the
      same nodes and return identical results.

    The hot path allocates nothing per node either way.

    Jobs are indexed 0 .. n-1 in *heuristic order* (see {!Branching});
    child rank 0 of any node is the lowest-indexed unused job.  The
    unused set is a doubly-linked list, so the heuristic child is found
    in O(1) and rank [r] in O(r) — no per-child rescans. *)

type t

type backtrack = Trail | Snapshot
(** Backtracking strategy; [Trail] is the fast default, [Snapshot] the
    copy-based oracle. *)

val create :
  ?secondary:Objective.secondary ->
  ?backtrack:backtrack ->
  ?on_place:(depth:int -> job:int -> start:float -> unit) ->
  now:float ->
  profile:Cluster.Profile.t ->
  jobs:Workload.Job.t array ->
  durations:float array ->
  thresholds:float array ->
  unit ->
  t
(** [profile] is the availability profile of the running set at [now]
    (never mutated — the state works on copies); [durations.(i)] is the
    scheduler-visible runtime of [jobs.(i)]; [thresholds.(i)] its
    excessive-wait bound.  [secondary] selects the tie-breaking goal
    (default: the paper's bounded slowdown).  [backtrack] selects the
    strategy (default [Trail]).  [on_place] is an instrumentation hook
    invoked after every placement — used by the equivalence tests to
    record visit sequences; leave unset on the hot path.
    @raise Invalid_argument on array length mismatch. *)

val secondary : t -> Objective.secondary
val backtrack : t -> backtrack

val job_count : t -> int
val now : t -> float

val nodes_visited : t -> int
(** Total placements performed so far (the paper's "nodes"). *)

val place : t -> depth:int -> job:int -> unit
(** [place t ~depth ~job] chooses job index [job] at [depth] and places
    it at its earliest start (readable via {!start_at}).  Returning the
    start would box a float per node, so it doesn't.  Depths must be
    filled in order; [job] must be unused.  Counts one node visit. *)

val unplace : t -> depth:int -> unit
(** Undo the placement at [depth] (must be the deepest placement). *)

val reset : t -> unit
(** Unplace everything: clears used flags, chosen jobs, recorded starts
    and partial objectives, rebuilds the unused list, and (in [Trail]
    mode) rewinds the working profile to its base state — safe after a
    search unwound through an exception ({!Search.Budget_spent}) and
    left placements behind.  Does not reset the node counter. *)

val used : t -> int -> bool
val chosen : t -> depth:int -> int
val start_at : t -> depth:int -> float
val partial : t -> depth:int -> Objective.t
(** Objective of the path prefix through [depth]. *)

val leaf_objective : t -> Objective.t
(** Objective of a complete path (depth [n-1] placed). *)

val nth_unused : t -> int -> int option
(** [nth_unused t r] is the index of the [r]-th unused job in
    heuristic order (rank 0 = heuristic choice), if any.  O(r). *)

val first_unused : t -> int
(** Lowest unused job index, or [job_count t] (the sentinel) when all
    jobs are placed.  O(1) — the head of the unused list. *)

val next_unused : t -> int -> int
(** Next unused job index after [job] (which must itself be unused),
    or [job_count t] when [job] is the last.  O(1).  Together with
    {!first_unused} this iterates the children of a node without the
    O(rank) walk of {!nth_unused}. *)

val start_now_set : t -> order:int array -> starts:float array -> Workload.Job.t list
(** Given a recorded best path (job indices + start times), the jobs
    whose start time equals the decision time (within 1 s), in path
    order — the jobs the policy starts immediately. *)
