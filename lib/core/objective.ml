type secondary = Bounded_slowdown | Avg_wait

let secondary_name = function
  | Bounded_slowdown -> "bsld"
  | Avg_wait -> "avgW"

let min_contribution = function Bounded_slowdown -> 1.0 | Avg_wait -> 0.0

type t = { excess : float; secondary_sum : float; jobs : int }

let zero = { excess = 0.0; secondary_sum = 0.0; jobs = 0 }

let add ?(secondary = Bounded_slowdown) t ~wait ~threshold ~est_runtime =
  let excess = Float.max 0.0 (wait -. threshold) in
  let contribution =
    match secondary with
    | Bounded_slowdown ->
        1.0 +. (wait /. Float.max est_runtime Simcore.Units.minute)
    | Avg_wait -> wait
  in
  {
    excess = t.excess +. excess;
    secondary_sum = t.secondary_sum +. contribution;
    jobs = t.jobs + 1;
  }

let avg_secondary t =
  if t.jobs = 0 then 0.0 else t.secondary_sum /. float_of_int t.jobs

let avg_slowdown = avg_secondary

(* One float second of excess on totals of hours is noise; compare with
   a relative-plus-absolute tolerance so the second level can break
   effective ties. *)
let close a b =
  let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= 1e-9 *. scale

let compare a b =
  if close a.excess b.excess then
    if close a.secondary_sum b.secondary_sum then 0
    else Float.compare (avg_secondary a) (avg_secondary b)
  else Float.compare a.excess b.excess

let is_better ~candidate ~incumbent = compare candidate incumbent < 0

let pp fmt t =
  Format.fprintf fmt "excess=%.2fh avg_secondary=%.2f (%d jobs)"
    (Simcore.Units.to_hours t.excess)
    (avg_secondary t) t.jobs
