(** The hierarchical two-level objective (Section 2.1).

    Schedule A is better than schedule B iff A has smaller total
    excessive wait, or the totals are equal (within a float tolerance)
    and A has smaller average bounded slowdown.  Values accumulate
    per-job contributions, so partial (prefix) values are monotone:
    adding a job can only increase both components — which is what
    makes branch-and-bound pruning sound. *)

type secondary = Bounded_slowdown | Avg_wait
(** The tie-breaking goal.  [Bounded_slowdown] is the paper's choice;
    [Avg_wait] is the alternative a site preferring raw responsiveness
    would declare (goal-oriented scheduling is exactly about making
    this a configuration, not a code change). *)

val secondary_name : secondary -> string
val min_contribution : secondary -> float
(** Smallest possible per-job secondary value (1.0 for slowdown, 0.0
    for wait) — the admissible bound branch-and-bound pruning uses. *)

type t = {
  excess : float;  (** total excessive wait, seconds *)
  secondary_sum : float;  (** sum of per-job secondary values *)
  jobs : int;  (** number of jobs accumulated *)
}

val zero : t

val add :
  ?secondary:secondary ->
  t ->
  wait:float ->
  threshold:float ->
  est_runtime:float ->
  t
(** Accumulate one job that would start after [wait] seconds in queue,
    with excessive-wait threshold [threshold] and scheduler-estimated
    runtime [est_runtime].  [secondary] defaults to the paper's
    [Bounded_slowdown]. *)

val avg_secondary : t -> float

val avg_slowdown : t -> float
(** Alias of {!avg_secondary} (meaningful when accumulated with
    [Bounded_slowdown]). *)

val compare : t -> t -> int
(** Lexicographic: total excess first, then average slowdown.  Both
    comparisons use a small relative tolerance so float noise does not
    override the hierarchy. *)

val is_better : candidate:t -> incumbent:t -> bool
(** [compare candidate incumbent < 0]. *)

val pp : Format.formatter -> t -> unit
