let remaining_in_order used n =
  List.filter (fun i -> not used.(i)) (List.init n Fun.id)

let discrepancies path =
  let n = List.length path in
  let used = Array.make n false in
  List.fold_left
    (fun count choice ->
      let heuristic_choice =
        match remaining_in_order used n with
        | first :: _ -> first
        | [] -> assert false
      in
      used.(choice) <- true;
      if choice = heuristic_choice then count else count + 1)
    0 path

let deepest_discrepancy path =
  let n = List.length path in
  let used = Array.make n false in
  let deepest = ref None in
  List.iteri
    (fun depth choice ->
      let heuristic_choice =
        match remaining_in_order used n with
        | first :: _ -> first
        | [] -> assert false
      in
      used.(choice) <- true;
      if choice <> heuristic_choice then deepest := Some depth)
    path;
  !deepest

(* Enumerate all paths in left-to-right (DFS) order, then filter by the
   iteration membership predicate.  Filtering preserves the visit order
   because both LDS and DDS explore each iteration left to right. *)
let all_paths_dfs n =
  let rec go used acc =
    match remaining_in_order used n with
    | [] -> [ List.rev acc ]
    | choices ->
        List.concat_map
          (fun c ->
            used.(c) <- true;
            let sub = go used (c :: acc) in
            used.(c) <- false;
            sub)
          choices
  in
  go (Array.make n false) []

let paths_in_iteration algorithm ~n ~iteration =
  let everything = all_paths_dfs n in
  match algorithm with
  | Search.Dfs -> if iteration = 0 then everything else []
  | Search.Lds ->
      List.filter (fun p -> discrepancies p = iteration) everything
  | Search.Lds_original ->
      List.filter (fun p -> discrepancies p <= iteration) everything
  | Search.Dds ->
      List.filter
        (fun p ->
          match deepest_discrepancy p with
          | None -> iteration = 0
          | Some d -> d = iteration - 1)
        everything

let all_paths algorithm ~n =
  match algorithm with
  | Search.Dfs -> all_paths_dfs n
  | Search.Lds | Search.Lds_original | Search.Dds ->
      (* For Lds_original the concatenation contains the repeats the
         algorithm actually performs. *)
      List.concat_map
        (fun iteration -> paths_in_iteration algorithm ~n ~iteration)
        (List.init n Fun.id)

let path_count ~n =
  let rec fact k acc = if k <= 1 then acc else fact (k - 1) (acc *. float_of_int k) in
  fact n 1.0

let node_count ~n =
  (* sum_{k=1..n} n * (n-1) * ... * (n-k+1) *)
  let rec go k partial acc =
    if k > n then acc
    else
      let partial = partial *. float_of_int (n - k + 1) in
      go (k + 1) partial (acc +. partial)
  in
  go 1 1.0 0.0
