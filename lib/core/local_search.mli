(** Local-search post-pass (the future-work hybrid of Section 2.2).

    After the complete search returns its incumbent, repeatedly try
    swapping adjacent jobs in the best consideration order and keep any
    swap that improves the two-level objective (first-improvement hill
    climbing).  Each candidate evaluation replays the whole path, so
    its node cost is the path length; the pass stops when a sweep finds
    no improvement or the extra node budget is spent. *)

val improve :
  budget:int -> Search_state.t -> Search.result -> Search.result
(** [improve ~budget state result] returns a result at least as good as
    [result]; [nodes_visited] includes the evaluation cost. *)
