type algorithm = Dfs | Lds | Lds_original | Dds

let algorithm_name = function
  | Dfs -> "dfs"
  | Lds -> "lds"
  | Lds_original -> "lds0"
  | Dds -> "dds"

type result = {
  best : Objective.t;
  best_order : int array;
  best_starts : float array;
  nodes_visited : int;
  leaves_evaluated : int;
  iterations : int;
  exhausted : bool;
}

exception Budget_spent

type driver = {
  state : Search_state.t;
  n : int;
  budget : int;
  prune : bool;
  mutable enforce_budget : bool;
  mutable best : Objective.t option;
  mutable best_order : int array;
  mutable best_starts : float array;
  mutable leaves : int;
}

let record_leaf d =
  let obj = Search_state.leaf_objective d.state in
  d.leaves <- d.leaves + 1;
  let better =
    match d.best with
    | None -> true
    | Some incumbent -> Objective.is_better ~candidate:obj ~incumbent
  in
  if better then begin
    d.best <- Some obj;
    for depth = 0 to d.n - 1 do
      d.best_order.(depth) <- Search_state.chosen d.state ~depth;
      d.best_starts.(depth) <- Search_state.start_at d.state ~depth
    done
  end

let check_budget d =
  if d.enforce_budget && Search_state.nodes_visited d.state >= d.budget then
    raise Budget_spent

(* Branch-and-bound: a partial schedule is hopeless when its excess
   already exceeds the incumbent's, or ties it while even the best
   possible completion (the minimum per-job secondary contribution for
   each remaining job) cannot beat the incumbent's secondary sum. *)
let hopeless d ~depth =
  d.prune
  &&
  match d.best with
  | None -> false
  | Some best ->
      let partial = Search_state.partial d.state ~depth in
      let remaining = d.n - depth - 1 in
      if partial.Objective.excess > best.Objective.excess +. 1e-9 then true
      else if partial.Objective.excess < best.Objective.excess -. 1e-9 then
        false
      else
        partial.Objective.secondary_sum
        +. (float_of_int remaining
           *. Objective.min_contribution (Search_state.secondary d.state))
        >= best.Objective.secondary_sum -. 1e-9

(* Visit the child of rank [rank] at [depth]; run [k] on the resulting
   node; backtrack.  Returns false when no such child exists. *)
let descend d ~depth ~rank k =
  match Search_state.nth_unused d.state rank with
  | None -> false
  | Some job ->
      check_budget d;
      let (_ : float) = Search_state.place d.state ~depth ~job in
      if depth = d.n - 1 then begin
        if not (hopeless d ~depth) then record_leaf d
      end
      else if not (hopeless d ~depth) then k ();
      Search_state.unplace d.state ~depth;
      true

(* The pure heuristic path: rank 0 at every depth. *)
let heuristic_path d =
  let rec go depth =
    let (_ : bool) = descend d ~depth ~rank:0 (fun () -> go (depth + 1)) in
    ()
  in
  go 0

(* Original LDS iteration k (Harvey & Ginsberg): all paths with at
   most [k] discrepancies, left to right — earlier iterations' paths
   are re-visited, spending budget on repeats. *)
let lds_original_iteration d k =
  let rec go depth remaining =
    let children = d.n - depth in
    for rank = 0 to children - 1 do
      let cost = if rank = 0 then 0 else 1 in
      if cost <= remaining then
        let (_ : bool) =
          descend d ~depth ~rank (fun () -> go (depth + 1) (remaining - cost))
        in
        ()
    done
  in
  go 0 (min k (d.n - 1))

(* LDS iteration k: all paths with exactly [k] discrepancies, explored
   left to right. *)
let lds_iteration d k =
  let rec go depth remaining =
    (* Only descend if [remaining] discrepancies can still be consumed
       strictly below: one per level with >= 2 children. *)
    let max_below next_depth = Stdlib.max 0 (d.n - 1 - next_depth) in
    let children = d.n - depth in
    let try_rank rank =
      let cost = if rank = 0 then 0 else 1 in
      if cost <= remaining && remaining - cost <= max_below (depth + 1) then
        let (_ : bool) =
          descend d ~depth ~rank (fun () -> go (depth + 1) (remaining - cost))
        in
        ()
    in
    for rank = 0 to children - 1 do
      try_rank rank
    done
  in
  if k <= d.n - 1 then go 0 k

(* DDS iteration i >= 1: any child above choice-depth i-1, a forced
   discrepancy at i-1, heuristic only below. *)
let dds_iteration d i =
  let forced = i - 1 in
  let rec go depth =
    if depth < forced then
      for rank = 0 to d.n - depth - 1 do
        let (_ : bool) = descend d ~depth ~rank (fun () -> go (depth + 1)) in
        ()
      done
    else if depth = forced then
      for rank = 1 to d.n - depth - 1 do
        let (_ : bool) = descend d ~depth ~rank (fun () -> go (depth + 1)) in
        ()
      done
    else
      let (_ : bool) = descend d ~depth ~rank:0 (fun () -> go (depth + 1)) in
      ()
  in
  (* a discrepancy needs >= 2 children at the forced depth *)
  if forced <= d.n - 2 then go 0

let dfs_all d =
  let rec go depth =
    for rank = 0 to d.n - depth - 1 do
      let (_ : bool) = descend d ~depth ~rank (fun () -> go (depth + 1)) in
      ()
    done
  in
  go 0

let run ?(prune = false) algorithm ~budget state =
  let n = Search_state.job_count state in
  if n = 0 then invalid_arg "Search.run: no waiting jobs";
  let d =
    {
      state;
      n;
      budget;
      prune;
      enforce_budget = false;
      best = None;
      best_order = Array.make n (-1);
      best_starts = Array.make n 0.0;
      leaves = 0;
    }
  in
  (* Iteration 0 (the heuristic path) ignores the budget so the policy
     always has a complete schedule to fall back on. *)
  heuristic_path d;
  d.enforce_budget <- true;
  let iterations = ref 1 in
  let exhausted = ref false in
  begin
    try
      begin
        match algorithm with
        | Dfs ->
            (* The heuristic path was already visited; plain DFS re-walks
               it (its node count includes the repeat, as in any restart
               strategy). *)
            dfs_all d
        | Lds ->
            for k = 1 to n - 1 do
              lds_iteration d k;
              incr iterations
            done
        | Lds_original ->
            for k = 1 to n - 1 do
              lds_original_iteration d k;
              incr iterations
            done
        | Dds ->
            for i = 1 to n - 1 do
              dds_iteration d i;
              incr iterations
            done
      end;
      exhausted := true
    with Budget_spent -> Search_state.reset state
  end;
  match d.best with
  | None -> assert false (* iteration 0 always records a leaf *)
  | Some best ->
      {
        best;
        best_order = d.best_order;
        best_starts = d.best_starts;
        nodes_visited = Search_state.nodes_visited state;
        leaves_evaluated = d.leaves;
        iterations = !iterations;
        exhausted = !exhausted;
      }
