type algorithm = Dfs | Lds | Lds_original | Dds

let algorithm_name = function
  | Dfs -> "dfs"
  | Lds -> "lds"
  | Lds_original -> "lds0"
  | Dds -> "dds"

type result = {
  best : Objective.t;
  best_order : int array;
  best_starts : float array;
  nodes_visited : int;
  leaves_evaluated : int;
  iterations : int;
  exhausted : bool;
}

exception Budget_spent

type driver = {
  state : Search_state.t;
  algorithm : algorithm;
  n : int;
  budget : int;
  prune : bool;
  probe : Simcore.Telemetry.Probe.t option;
  mutable enforce_budget : bool;
  mutable forced : int;  (* DDS: choice-depth of the forced discrepancy *)
  mutable cur_iter : int;  (* discrepancy iteration being explored *)
  mutable best : Objective.t option;
  mutable best_order : int array;
  mutable best_starts : float array;
  mutable leaves : int;
}

let record_leaf d =
  let obj = Search_state.leaf_objective d.state in
  d.leaves <- d.leaves + 1;
  let better =
    match d.best with
    | None -> true
    | Some incumbent -> Objective.is_better ~candidate:obj ~incumbent
  in
  if better then begin
    d.best <- Some obj;
    for depth = 0 to d.n - 1 do
      d.best_order.(depth) <- Search_state.chosen d.state ~depth;
      d.best_starts.(depth) <- Search_state.start_at d.state ~depth
    done;
    (* Telemetry sampling happens only here — an incumbent improvement
       at a leaf — never per node; writes into a preallocated record. *)
    match d.probe with
    | None -> ()
    | Some p ->
        p.Simcore.Telemetry.Probe.improvements <-
          p.Simcore.Telemetry.Probe.improvements + 1;
        p.winner_iteration <- d.cur_iter;
        p.winner_depth <-
          (if d.algorithm = Dds && d.cur_iter >= 1 then d.forced else -1)
  end

let check_budget d =
  if d.enforce_budget && Search_state.nodes_visited d.state >= d.budget then
    raise Budget_spent

(* Branch-and-bound: a partial schedule is hopeless when its excess
   already exceeds the incumbent's, or ties it while even the best
   possible completion (the minimum per-job secondary contribution for
   each remaining job) cannot beat the incumbent's secondary sum. *)
let hopeless d ~depth =
  d.prune
  &&
  match d.best with
  | None -> false
  | Some best ->
      let partial = Search_state.partial d.state ~depth in
      let remaining = d.n - depth - 1 in
      if partial.Objective.excess > best.Objective.excess +. 1e-9 then true
      else if partial.Objective.excess < best.Objective.excess -. 1e-9 then
        false
      else
        partial.Objective.secondary_sum
        +. (float_of_int remaining
           *. Objective.min_contribution (Search_state.secondary d.state))
        >= best.Objective.secondary_sum -. 1e-9

(* Leaf visit: evaluate unless the bound prunes it.  Off the hot path
   (one leaf per [n] interior nodes). *)
let at_leaf d ~depth = if not (hopeless d ~depth) then record_leaf d

(* Each algorithm below inlines the same visit body — budget check,
   place, recurse-or-evaluate, unplace — instead of sharing it through
   a continuation parameter: a function-valued argument costs an
   indirect [caml_apply] per node, and these recursions are the
   innermost loop of the whole reproduction.  Children of a node are
   exactly the unused jobs, walked in increasing index order via
   {!Search_state.first_unused} / {!Search_state.next_unused}; the
   walk is stable across a visit because unplace restores the links it
   removed.  Nothing here allocates per node. *)

(* The pure heuristic path: rank 0 at every depth. *)
let rec heur_go d depth =
  let job = Search_state.first_unused d.state in
  if job < d.n then begin
    check_budget d;
    Search_state.place d.state ~depth ~job;
    if depth = d.n - 1 then at_leaf d ~depth
    else if not (hopeless d ~depth) then heur_go d (depth + 1);
    Search_state.unplace d.state ~depth
  end

let heuristic_path d = heur_go d 0

(* Original LDS iteration k (Harvey & Ginsberg): all paths with at
   most [k] discrepancies, left to right — earlier iterations' paths
   are re-visited, spending budget on repeats. *)
let rec lds0_go d depth remaining =
  lds0_each d depth remaining (Search_state.first_unused d.state) 0

and lds0_each d depth remaining job rank =
  if job < d.n then begin
    let cost = if rank = 0 then 0 else 1 in
    if cost <= remaining then begin
      check_budget d;
      Search_state.place d.state ~depth ~job;
      if depth = d.n - 1 then at_leaf d ~depth
      else if not (hopeless d ~depth) then
        lds0_go d (depth + 1) (remaining - cost);
      Search_state.unplace d.state ~depth
    end;
    lds0_each d depth remaining (Search_state.next_unused d.state job)
      (rank + 1)
  end

let lds_original_iteration d k = lds0_go d 0 (min k (d.n - 1))

(* LDS iteration k: all paths with exactly [k] discrepancies, explored
   left to right.  Only descend if the remaining discrepancies can
   still be consumed strictly below: one per level with >= 2
   children. *)
let rec lds_go d depth remaining =
  lds_each d depth remaining (Search_state.first_unused d.state) 0

and lds_each d depth remaining job rank =
  if job < d.n then begin
    let cost = if rank = 0 then 0 else 1 in
    let max_below = Stdlib.max 0 (d.n - 2 - depth) in
    if cost <= remaining && remaining - cost <= max_below then begin
      check_budget d;
      Search_state.place d.state ~depth ~job;
      if depth = d.n - 1 then at_leaf d ~depth
      else if not (hopeless d ~depth) then
        lds_go d (depth + 1) (remaining - cost);
      Search_state.unplace d.state ~depth
    end;
    lds_each d depth remaining (Search_state.next_unused d.state job)
      (rank + 1)
  end

let lds_iteration d k = if k <= d.n - 1 then lds_go d 0 k

(* DDS iteration i >= 1: any child above choice-depth [d.forced], a
   forced discrepancy at [d.forced], heuristic only below. *)
let rec dds_go d depth =
  if depth < d.forced then
    dds_each d depth (Search_state.first_unused d.state)
  else if depth = d.forced then begin
    (* ranks 1 and up: skip the heuristic child *)
    let job = Search_state.first_unused d.state in
    if job < d.n then dds_each d depth (Search_state.next_unused d.state job)
  end
  else begin
    let job = Search_state.first_unused d.state in
    if job < d.n then begin
      check_budget d;
      Search_state.place d.state ~depth ~job;
      if depth = d.n - 1 then at_leaf d ~depth
      else if not (hopeless d ~depth) then dds_go d (depth + 1);
      Search_state.unplace d.state ~depth
    end
  end

and dds_each d depth job =
  if job < d.n then begin
    check_budget d;
    Search_state.place d.state ~depth ~job;
    if depth = d.n - 1 then at_leaf d ~depth
    else if not (hopeless d ~depth) then dds_go d (depth + 1);
    Search_state.unplace d.state ~depth;
    dds_each d depth (Search_state.next_unused d.state job)
  end

let dds_iteration d i =
  d.forced <- i - 1;
  (* a discrepancy needs >= 2 children at the forced depth *)
  if d.forced <= d.n - 2 then dds_go d 0

let rec dfs_go d depth =
  dfs_each d depth (Search_state.first_unused d.state)

and dfs_each d depth job =
  if job < d.n then begin
    check_budget d;
    Search_state.place d.state ~depth ~job;
    if depth = d.n - 1 then at_leaf d ~depth
    else if not (hopeless d ~depth) then dfs_go d (depth + 1);
    Search_state.unplace d.state ~depth;
    dfs_each d depth (Search_state.next_unused d.state job)
  end

let dfs_all d = dfs_go d 0

let run ?(prune = false) ?probe algorithm ~budget state =
  let n = Search_state.job_count state in
  if n = 0 then invalid_arg "Search.run: no waiting jobs";
  Option.iter Simcore.Telemetry.Probe.reset probe;
  let d =
    {
      state;
      algorithm;
      n;
      budget;
      prune;
      probe;
      enforce_budget = false;
      forced = 0;
      cur_iter = 0;
      best = None;
      best_order = Array.make n (-1);
      best_starts = Array.make n 0.0;
      leaves = 0;
    }
  in
  (* Iteration 0 (the heuristic path) ignores the budget so the policy
     always has a complete schedule to fall back on. *)
  heuristic_path d;
  d.enforce_budget <- true;
  let iterations = ref 1 in
  let exhausted = ref false in
  begin
    try
      begin
        match algorithm with
        | Dfs ->
            (* The heuristic path was already visited; plain DFS re-walks
               it (its node count includes the repeat, as in any restart
               strategy). *)
            d.cur_iter <- 1;
            dfs_all d
        | Lds ->
            for k = 1 to n - 1 do
              d.cur_iter <- k;
              lds_iteration d k;
              incr iterations
            done
        | Lds_original ->
            for k = 1 to n - 1 do
              d.cur_iter <- k;
              lds_original_iteration d k;
              incr iterations
            done
        | Dds ->
            for i = 1 to n - 1 do
              d.cur_iter <- i;
              dds_iteration d i;
              incr iterations
            done
      end;
      exhausted := true
    with Budget_spent -> Search_state.reset state
  end;
  match d.best with
  | None -> assert false (* iteration 0 always records a leaf *)
  | Some best ->
      (match probe with
      | None -> ()
      | Some p ->
          p.Simcore.Telemetry.Probe.nodes <-
            Search_state.nodes_visited state;
          p.leaves <- d.leaves;
          p.iterations <- !iterations;
          p.budget <- budget;
          p.exhausted <- !exhausted);
      {
        best;
        best_order = d.best_order;
        best_starts = d.best_starts;
        nodes_visited = Search_state.nodes_visited state;
        leaves_evaluated = d.leaves;
        iterations = !iterations;
        exhausted = !exhausted;
      }
