type account = { mutable value : float; mutable updated : float }

type t = {
  half_life : float;
  accounts : (int, account) Hashtbl.t;
}

let create ?(half_life = Simcore.Units.week) () =
  if half_life <= 0.0 then invalid_arg "Fairshare.create: half_life <= 0";
  { half_life; accounts = Hashtbl.create 64 }

let decay t account ~now =
  if now > account.updated then begin
    let halvings = (now -. account.updated) /. t.half_life in
    account.value <- account.value *. (2.0 ** -.halvings);
    account.updated <- now
  end

let record_start t ~now ~nodes ~duration ~user =
  if user > 0 then begin
    let account =
      match Hashtbl.find_opt t.accounts user with
      | Some a -> a
      | None ->
          let a = { value = 0.0; updated = now } in
          Hashtbl.add t.accounts user a;
          a
    in
    decay t account ~now;
    account.value <- account.value +. (float_of_int nodes *. duration)
  end

let usage t ~now user =
  match Hashtbl.find_opt t.accounts user with
  | None -> 0.0
  | Some account ->
      decay t account ~now;
      account.value

let total t ~now =
  Hashtbl.fold
    (fun _ account acc ->
      decay t account ~now;
      acc +. account.value)
    t.accounts 0.0

let share t ~now user =
  let all = total t ~now in
  if all <= 0.0 then 0.0 else usage t ~now user /. all

let threshold_factor t ~now ~penalty user =
  1.0 +. (penalty *. share t ~now user)
