(** The goal-oriented, search-based scheduling policies (Section 2.3).

    A policy is a combination of search algorithm (DDS or LDS),
    branching heuristic (fcfs or lxf), target wait bound (fixed or
    dynamic) and node budget L, named as in the paper — e.g.
    ["DDS/lxf/dynB(L=1K)"] is the paper's headline policy.

    At each decision point the policy builds the availability profile,
    ranks the waiting jobs by the branching heuristic, searches the
    job-order tree for the schedule minimizing the two-level objective
    and starts the jobs whose best-schedule start time is *now*. *)

type config = {
  algorithm : Search.algorithm;
  heuristic : Branching.t;
  bound : Bound.t;
  budget : int;  (** the paper's L: max nodes visited per decision *)
  prune : bool;  (** branch-and-bound extension (off = paper) *)
  local_search : bool;  (** post-search swap improvement extension *)
  fairshare : float option;
      (** when [Some penalty], per-job thresholds are inflated by
          [1 + penalty * user's decayed usage share] (Section 7
          future-work extension; [None] = paper behaviour) *)
  goal : Objective.secondary;
      (** the declared second-level goal ([Bounded_slowdown] = paper) *)
}

val v :
  ?prune:bool ->
  ?local_search:bool ->
  ?fairshare:float ->
  ?goal:Objective.secondary ->
  algorithm:Search.algorithm ->
  heuristic:Branching.t ->
  bound:Bound.t ->
  budget:int ->
  unit ->
  config

val dds_lxf_dynb : budget:int -> config
(** The paper's best policy: DDS / lxf / dynamic bound. *)

val name : config -> string

type stats = {
  decisions : int;  (** decision points at which the search ran *)
  total_nodes : int;  (** nodes visited across all decisions *)
  total_leaves : int;
  max_queue : int;  (** largest waiting-queue length seen *)
}

val policy : config -> Sched.Policy.t * (unit -> stats)
(** The scheduling policy plus an accessor for cumulative search
    statistics (used by the overhead experiment).  The policy carries
    a per-instance search-effort probe and a (disabled) run-health
    metric registry of search counters — enable it via
    [Sched.Policy.metrics] to include search effort in an OpenMetrics
    exposition. *)

val decide_detailed :
  config -> Sched.Policy.context -> Search.result option
(** Run the search for one decision point and expose the raw result
    ([None] when no jobs wait).  For tests and analyses. *)
