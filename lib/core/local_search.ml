(* Evaluate a complete consideration order by replaying it. *)
let evaluate state order starts =
  let n = Array.length order in
  for depth = 0 to n - 1 do
    Search_state.place state ~depth ~job:order.(depth);
    starts.(depth) <- Search_state.start_at state ~depth
  done;
  let obj = Search_state.leaf_objective state in
  for depth = n - 1 downto 0 do
    Search_state.unplace state ~depth
  done;
  obj

let improve ~budget state (result : Search.result) =
  let n = Array.length result.Search.best_order in
  if n < 2 then result
  else begin
    let order = Array.copy result.Search.best_order in
    let starts = Array.copy result.Search.best_starts in
    let scratch = Array.make n 0.0 in
    let best = ref result.Search.best in
    let improved_any = ref false in
    let spent = ref 0 in
    let continue = ref true in
    while !continue do
      continue := false;
      let i = ref 0 in
      while !i < n - 1 && !spent < budget do
        let swap () =
          let tmp = order.(!i) in
          order.(!i) <- order.(!i + 1);
          order.(!i + 1) <- tmp
        in
        swap ();
        let candidate = evaluate state order scratch in
        spent := !spent + n;
        if Objective.is_better ~candidate ~incumbent:!best then begin
          best := candidate;
          Array.blit scratch 0 starts 0 n;
          improved_any := true;
          continue := true
        end
        else swap () (* revert *);
        incr i
      done;
      if !spent >= budget then continue := false
    done;
    if not !improved_any then result
    else
      {
        result with
        Search.best = !best;
        best_order = order;
        best_starts = starts;
        nodes_visited = Search_state.nodes_visited state;
      }
  end
