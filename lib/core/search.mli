(** Complete, anytime, discrepancy-based tree search (Section 2.2).

    All algorithms explore root-to-leaf paths of the job-order tree in
    a specific order, keep the best complete schedule seen so far under
    {!Objective.compare}, and stop when the tree is exhausted or the
    node budget is spent.  A node visit is one job placement
    ({!Search_state.place}), matching the paper's node-limit L.

    - [Dds] (depth-bounded discrepancy search, Walsh 1997): iteration
      [i] explores exactly the paths whose deepest discrepancy is at
      choice-depth [i - 1]; discrepancies are allowed above, prohibited
      below.  Iteration 0 is the pure heuristic path.
    - [Lds] (improved limited discrepancy search, Korf 1996): iteration
      [k] explores exactly the paths with [k] discrepancies.
    - [Lds_original] (Harvey & Ginsberg 1995): iteration [k] explores
      every path with at most [k] discrepancies, re-visiting the paths
      of earlier iterations — the redundancy Korf's variant removes.
      Included for the search-algorithm ablation.
    - [Dfs] is plain depth-first search, included as a baseline and for
      exhaustive-equivalence tests.

    The heuristic path (iteration 0) is always evaluated in full, even
    if it exceeds the budget, so the policy always has a schedule. *)

type algorithm = Dfs | Lds | Lds_original | Dds

val algorithm_name : algorithm -> string

type result = {
  best : Objective.t;  (** objective of the best complete schedule *)
  best_order : int array;  (** job indices in consideration order *)
  best_starts : float array;  (** start times aligned with [best_order] *)
  nodes_visited : int;
  leaves_evaluated : int;
  iterations : int;  (** completed discrepancy iterations *)
  exhausted : bool;  (** the whole tree was explored *)
}

val run :
  ?prune:bool ->
  ?probe:Simcore.Telemetry.Probe.t ->
  algorithm ->
  budget:int ->
  Search_state.t ->
  result
(** [run algo ~budget state] searches and returns the best schedule.
    [prune] enables the branch-and-bound extension: subtrees whose
    partial objective already cannot beat the incumbent are skipped
    (sound because partial objectives are monotone).  Requires at least
    one waiting job.  @raise Invalid_argument on an empty state.

    [probe], when given, is reset and then filled with this run's
    search effort: node/leaf/iteration counts, budget, the exhausted
    flag, the number of incumbent improvements and the discrepancy
    iteration (and, for DDS, forced choice-depth) of the final winner.
    Probe writes happen only at incumbent improvements (leaf
    boundaries) and once at the end of the run — never per
    {!Search_state.place} — so the hot path stays allocation-free with
    the probe on (enforced by the allocation test suite). *)
