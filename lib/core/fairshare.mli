(** Decayed per-user usage accounting (the Section 7 "fairshare"
    future-work feature).

    Tracks, for each user, an exponentially decayed sum of the
    node-seconds their started jobs consumed; the search policy can
    inflate a heavy user's excessive-wait threshold proportionally to
    their current share, so the first-level goal tolerates longer waits
    for users who already got more than their share of the machine.

    Decay uses a half-life (default one week): usage recorded [h]
    seconds ago counts at [2^(-h/half_life)] of its original weight. *)

type t

val create : ?half_life:float -> unit -> t

val record_start :
  t -> now:float -> nodes:int -> duration:float -> user:int -> unit
(** Charge a job's full estimated area to its user at start time.
    Users [<= 0] (unknown) are not tracked. *)

val usage : t -> now:float -> int -> float
(** Decayed node-seconds currently attributed to the user. *)

val share : t -> now:float -> int -> float
(** The user's fraction of all decayed usage, in [0, 1]; 0 when nothing
    has been recorded. *)

val threshold_factor : t -> now:float -> penalty:float -> int -> float
(** [1 + penalty * share]; multiply a job's excessive-wait threshold by
    this to de-prioritize heavy users. *)
