(** Symbolic enumeration of the search tree (Figure 1).

    Pure combinatorial counterparts of {!Search}'s traversal orders,
    used to reproduce Figure 1(a)-(f) (which paths each iteration of
    LDS and DDS visits, in order) and Figure 1(d) (tree sizes), and to
    property-test the real search against the specification. *)

val paths_in_iteration :
  Search.algorithm -> n:int -> iteration:int -> int list list
(** Paths (sequences of job indices, 0-based; index order = heuristic
    order) visited by the given iteration, left to right.  Iteration 0
    is the heuristic path for LDS and DDS; for DFS, iteration 0 is the
    whole tree. *)

val all_paths : Search.algorithm -> n:int -> int list list
(** Concatenation over iterations: the complete visit order. *)

val discrepancies : int list -> int
(** Number of discrepancies of a path: positions where the chosen job
    is not the smallest-index job still unused. *)

val deepest_discrepancy : int list -> int option
(** 0-based choice depth of the deepest discrepancy, if any. *)

val path_count : n:int -> float
(** n! as a float (exact for the table's range). *)

val node_count : n:int -> float
(** Number of tree nodes excluding the root:
    sum over k = 1..n of n!/(n-k)!. *)
