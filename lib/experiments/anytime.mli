(** Anytime search quality (Section 2.2's central claim, measured).

    For a pool of synthetic 30-job decision points, run each search
    algorithm at increasing node budgets and report the mean objective
    of the best schedule found — showing how quickly DDS, the two LDS
    variants and plain DFS convert nodes into schedule quality, and
    where the heuristic path already stands. *)

val run : Format.formatter -> unit
