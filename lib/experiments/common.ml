type load = Original | Rho of float

let load_label = function
  | Original -> "original"
  | Rho r -> Printf.sprintf "rho=%.2f" r

let env_float name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> (
      match float_of_string_opt s with
      | Some f when f > 0.0 -> f
      | _ -> default)

let env_int name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> Option.value (int_of_string_opt s) ~default

let scale =
  let v = lazy (env_float "REPRO_SCALE" 1.0) in
  fun () -> Lazy.force v

let seed =
  let v = lazy (env_int "REPRO_SEED" 42) in
  fun () -> Lazy.force v

let months =
  let v =
    lazy
      (match Sys.getenv_opt "REPRO_MONTHS" with
      | None | Some "" -> Array.to_list Workload.Month_profile.all
      | Some csv ->
          String.split_on_char ',' csv
          |> List.map String.trim
          |> List.filter (fun s -> s <> "")
          |> List.map Workload.Month_profile.find)
  in
  fun () -> Lazy.force v

let trace_cache : (string, Workload.Trace.t) Hashtbl.t = Hashtbl.create 32

let trace profile load =
  let key =
    Printf.sprintf "%s/%s" profile.Workload.Month_profile.label
      (load_label load)
  in
  match Hashtbl.find_opt trace_cache key with
  | Some t -> t
  | None ->
      let base =
        let config =
          { Workload.Generator.default_config with
            scale = scale ();
            seed = seed ();
          }
        in
        Workload.Generator.month ~config profile
      in
      let t =
        match load with
        | Original -> base
        | Rho r ->
            Workload.Trace.scale_load base
              ~capacity:Workload.Month_profile.capacity ~target:r
      in
      Hashtbl.add trace_cache key t;
      t

let run_cache : (string, Sim.Run.t) Hashtbl.t = Hashtbl.create 64

let simulate ~policy_key ~policy ~r_star profile load =
  let key =
    Printf.sprintf "%s/%s/%s/%s" profile.Workload.Month_profile.label
      (load_label load)
      (Sim.Engine.r_star_name r_star)
      policy_key
  in
  match Hashtbl.find_opt run_cache key with
  | Some r -> r
  | None ->
      let r =
        Sim.Run.simulate ~r_star ~policy:(policy ()) (trace profile load)
      in
      Hashtbl.add run_cache key r;
      r

let fcfs_run ~r_star profile load =
  simulate ~policy_key:"FCFS-backfill"
    ~policy:(fun () -> Sched.Backfill.fcfs)
    ~r_star profile load

let fcfs_max_threshold ~r_star profile load =
  (fcfs_run ~r_star profile load).Sim.Run.aggregate.Metrics.Aggregate.max_wait

let fcfs_p98_threshold ~r_star profile load =
  (fcfs_run ~r_star profile load).Sim.Run.aggregate.Metrics.Aggregate.p98_wait

let dds_lxf_dynb ~budget () =
  fst (Core.Search_policy.policy (Core.Search_policy.dds_lxf_dynb ~budget))

let search_policy config () = fst (Core.Search_policy.policy config)

let section fmt ~id title =
  Format.fprintf fmt "@.%s@.== %s: %s@.%s@." (String.make 72 '=') id title
    (String.make 72 '=')

let row_header fmt label = Format.fprintf fmt "%-34s" label

let pp_month_columns fmt ~months ~rows =
  Format.fprintf fmt "%-34s" "";
  List.iter
    (fun m ->
      Format.fprintf fmt " %8s" m.Workload.Month_profile.label)
    months;
  Format.pp_print_newline fmt ();
  List.iter
    (fun (label, value) ->
      row_header fmt label;
      List.iter (fun m -> Format.fprintf fmt " %8.2f" (value m)) months;
      Format.pp_print_newline fmt ())
    rows
