type load = Original | Rho of float

let load_label = function
  | Original -> "original"
  | Rho r -> Printf.sprintf "rho=%.2f" r

let env_float name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> (
      match float_of_string_opt s with
      | Some f when f > 0.0 -> f
      | _ -> default)

let env_int name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> Option.value (int_of_string_opt s) ~default

(* Env knobs are read once and cached, but the cache is resettable so
   harnesses (perf-json, determinism tests) can re-point REPRO_* and
   rerun in-process.  Concurrent first reads race benignly: both
   domains compute the same value from the same environment. *)
let cached_env read =
  let cell = ref None in
  let get () =
    match !cell with
    | Some v -> v
    | None ->
        let v = read () in
        cell := Some v;
        v
  in
  let reset () = cell := None in
  (get, reset)

let scale, reset_scale = cached_env (fun () -> env_float "REPRO_SCALE" 1.0)
let seed, reset_seed = cached_env (fun () -> env_int "REPRO_SEED" 42)

let months, reset_months =
  cached_env (fun () ->
      match Sys.getenv_opt "REPRO_MONTHS" with
      | None | Some "" -> Array.to_list Workload.Month_profile.all
      | Some csv ->
          String.split_on_char ',' csv
          |> List.map String.trim
          |> List.filter (fun s -> s <> "")
          |> List.map Workload.Month_profile.find)

(* ------------------------------------------------------------------ *)
(* Parallel execution: one process-wide domain pool                    *)

let jobs_cell = ref None

let jobs () =
  match !jobs_cell with
  | Some j -> j
  | None ->
      let j =
        match Sys.getenv_opt "REPRO_JOBS" with
        | Some s -> (
            match int_of_string_opt s with
            | Some v when v >= 1 -> v
            | _ -> Simcore.Pool.default_jobs ())
        | None -> Simcore.Pool.default_jobs ()
      in
      jobs_cell := Some j;
      j

let pool_cell = ref None

let shutdown_pool () =
  match !pool_cell with
  | None -> ()
  | Some p ->
      pool_cell := None;
      Simcore.Pool.shutdown p

let set_jobs j =
  let j = max 1 j in
  if !jobs_cell <> Some j then begin
    shutdown_pool ();
    jobs_cell := Some j
  end

let pool () =
  match !pool_cell with
  | Some p -> p
  | None ->
      let p = Simcore.Pool.create ~jobs:(jobs ()) in
      pool_cell := Some p;
      p

let par_iter f xs = Simcore.Pool.iter (pool ()) ~f xs
let par_map f xs = Simcore.Pool.map (pool ()) ~f xs
let prefetch thunks = par_iter (fun f -> f ()) thunks

(* ------------------------------------------------------------------ *)
(* Compute-once trace / run caches                                     *)

let trace_cache : (string, Workload.Trace.t) Simcore.Memo.t =
  Simcore.Memo.create ~size:32 ()

let trace profile load =
  let key =
    Printf.sprintf "%s/%s" profile.Workload.Month_profile.label
      (load_label load)
  in
  Simcore.Memo.get trace_cache key (fun () ->
      let base =
        let config =
          { Workload.Generator.default_config with
            scale = scale ();
            seed = seed ();
          }
        in
        Workload.Generator.month ~config profile
      in
      match load with
      | Original -> base
      | Rho r ->
          Workload.Trace.scale_load base
            ~capacity:Workload.Month_profile.capacity ~target:r)

let run_cache : (string, Sim.Run.t) Simcore.Memo.t =
  Simcore.Memo.create ~size:64 ()

(* Decision tracing: when on, every simulation computed into the run
   cache carries a decision log keyed by its cache key; the log rides
   in [Sim.Run.t], so cached runs keep their trace for later export.
   Runs already cached when tracing is switched on stay untraced —
   harnesses reset the caches when flipping the switch. *)
let tracing_cell = ref false
let set_tracing v = tracing_cell := v
let tracing () = !tracing_cell

(* Schedule validation: same switch pattern as tracing.  When on, every
   simulation computed into the run cache validates its finished
   schedule (differentially for the EASY backfill family, by policy
   name) and carries the report in [Sim.Run.t]. *)
let validation_cell = ref false
let set_validation v = validation_cell := v
let validation () = !validation_cell

(* Run-health series: same switch pattern again.  When on, every
   simulation computed into the run cache feeds a bounded sampler that
   rides in [Sim.Run.t] for later report rendering. *)
let series_cell = ref false
let set_series v = series_cell := v
let series_enabled () = !series_cell

let simulate ~policy_key ~policy ~r_star profile load =
  let key =
    Printf.sprintf "%s/%s/%s/%s" profile.Workload.Month_profile.label
      (load_label load)
      (Sim.Engine.r_star_name r_star)
      policy_key
  in
  Simcore.Memo.get run_cache key (fun () ->
      let log =
        if !tracing_cell then
          Some (Sim.Decision_log.create ~policy:policy_key ())
        else None
      in
      let series =
        if !series_cell then Some (Sim.Series.create ~policy:policy_key ())
        else None
      in
      let policy = policy () in
      let validate =
        if !validation_cell then
          Some
            (Schedcheck.Validator.expectation_of_policy
               policy.Sched.Policy.name)
        else None
      in
      Sim.Run.simulate ?log ?series ?validate ~r_star ~policy
        (trace profile load))

let traced_runs () =
  Simcore.Memo.bindings run_cache
  |> List.filter_map (fun (key, run) ->
         Option.map (fun log -> (key, log)) run.Sim.Run.log)
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let validation_reports () =
  Simcore.Memo.bindings run_cache
  |> List.filter_map (fun (key, run) ->
         Option.map (fun report -> (key, report)) run.Sim.Run.validation)
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let series_runs () =
  Simcore.Memo.bindings run_cache
  |> List.filter_map (fun (key, run) ->
         Option.map (fun s -> (key, s)) run.Sim.Run.series)
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let pp_series fmt =
  List.iter (fun (key, s) -> Sim.Series.pp_jsonl ~run:key fmt s)
    (series_runs ())

let pp_traces fmt =
  List.iter (fun (key, log) -> Sim.Decision_log.pp_jsonl ~run:key fmt log)
    (traced_runs ())

let chrome_trace_document () =
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  let first = ref true in
  List.iteri
    (fun i (key, log) ->
      List.iter
        (fun ev ->
          if !first then first := false else Buffer.add_string buf ",\n";
          Buffer.add_string buf ev)
        (Sim.Decision_log.chrome_events ~run:key ~pid:(i + 1) log))
    (traced_runs ());
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let reset_caches () =
  Simcore.Memo.clear trace_cache;
  Simcore.Memo.clear run_cache;
  reset_scale ();
  reset_seed ();
  reset_months ()

let prefetch_runs ~months policies =
  prefetch
    (List.concat_map
       (fun (_, runner) ->
         List.map (fun m () -> ignore (runner m : Sim.Run.t)) months)
       policies)

let fcfs_run ~r_star profile load =
  simulate ~policy_key:"FCFS-backfill"
    ~policy:(fun () -> Sched.Backfill.fcfs)
    ~r_star profile load

let fcfs_max_threshold ~r_star profile load =
  (fcfs_run ~r_star profile load).Sim.Run.aggregate.Metrics.Aggregate.max_wait

let fcfs_p98_threshold ~r_star profile load =
  (fcfs_run ~r_star profile load).Sim.Run.aggregate.Metrics.Aggregate.p98_wait

let dds_lxf_dynb ~budget () =
  fst (Core.Search_policy.policy (Core.Search_policy.dds_lxf_dynb ~budget))

let search_policy config () = fst (Core.Search_policy.policy config)

let section fmt ~id title =
  Format.fprintf fmt "@.%s@.== %s: %s@.%s@." (String.make 72 '=') id title
    (String.make 72 '=')

let row_header fmt label = Format.fprintf fmt "%-34s" label

let pp_month_columns fmt ~months ~rows =
  Format.fprintf fmt "%-34s" "";
  List.iter
    (fun m ->
      Format.fprintf fmt " %8s" m.Workload.Month_profile.label)
    months;
  Format.pp_print_newline fmt ();
  List.iter
    (fun (label, value) ->
      row_header fmt label;
      List.iter (fun m -> Format.fprintf fmt " %8.2f" (value m)) months;
      Format.pp_print_newline fmt ())
    rows
