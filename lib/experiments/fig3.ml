let policies ~load ~r_star ~budget =
  [
    ( "FCFS-backfill",
      fun m ->
        Common.simulate ~policy_key:"FCFS-backfill"
          ~policy:(fun () -> Sched.Backfill.fcfs)
          ~r_star m load );
    ( "LXF-backfill",
      fun m ->
        Common.simulate ~policy_key:"LXF-backfill"
          ~policy:(fun () -> Sched.Backfill.lxf)
          ~r_star m load );
    ( "DDS/lxf/dynB",
      fun m ->
        let config = Core.Search_policy.dds_lxf_dynb ~budget:(budget m) in
        Common.simulate
          ~policy_key:(Core.Search_policy.name config)
          ~policy:(Common.search_policy config)
          ~r_star m load );
  ]

let run fmt =
  Common.section fmt ~id:"fig3"
    "Performance comparison under original load (R*=T; L=1K)";
  let months = Common.months () in
  let policies =
    policies ~load:Common.Original ~r_star:Sim.Engine.Actual
      ~budget:(fun _ -> 1000)
  in
  Panels.table fmt ~title:"(a) avg wait (hours)" ~months ~policies
    ~value:Panels.avg_wait_hours;
  Panels.table fmt ~title:"(b) max wait (hours)" ~months ~policies
    ~value:Panels.max_wait_hours;
  Panels.table fmt ~title:"(c) avg bounded slowdown" ~months ~policies
    ~value:Panels.avg_bounded_slowdown
