let table fmt ~title ~months ~policies ~value =
  (* warm the run cache for the whole grid through the domain pool;
     the formatting loop below then only does cache lookups *)
  Common.prefetch_runs ~months policies;
  Format.fprintf fmt "@.-- %s --@." title;
  Format.fprintf fmt "%-26s" "policy";
  List.iter
    (fun m -> Format.fprintf fmt " %8s" m.Workload.Month_profile.label)
    months;
  Format.pp_print_newline fmt ();
  List.iter
    (fun (name, runner) ->
      Format.fprintf fmt "%-26s" name;
      List.iter
        (fun m -> Format.fprintf fmt " %8.2f" (value m (runner m)))
        months;
      Format.pp_print_newline fmt ())
    policies;
  if Chart.enabled () then
    Chart.grouped_bars fmt ~title
      ~groups:(List.map (fun m -> m.Workload.Month_profile.label) months)
      ~series:
        (List.map
           (fun (name, runner) ->
             (name, List.map (fun m -> value m (runner m)) months))
           policies)

let avg_wait_hours _ (run : Sim.Run.t) =
  Metrics.Aggregate.avg_wait_hours run.Sim.Run.aggregate

let max_wait_hours _ (run : Sim.Run.t) =
  Metrics.Aggregate.max_wait_hours run.Sim.Run.aggregate

let avg_bounded_slowdown _ (run : Sim.Run.t) =
  run.Sim.Run.aggregate.Metrics.Aggregate.avg_bounded_slowdown

let avg_queue_length _ (run : Sim.Run.t) =
  run.Sim.Run.aggregate.Metrics.Aggregate.avg_queue_length
