(** ASCII bar charts for the bench output.

    The paper presents most results as grouped bar charts (one group
    per month, one bar per policy).  [grouped_bars] renders the same
    shape in plain text so the bench output can be eyeballed like the
    figures.  Enabled in the panels when [REPRO_BARS=1]. *)

val grouped_bars :
  Format.formatter ->
  title:string ->
  groups:string list ->
  series:(string * float list) list ->
  unit
(** [grouped_bars fmt ~title ~groups ~series] renders one horizontal
    bar per (group, series) value, scaled to the global maximum.
    Each [series] value list must have one entry per group.
    @raise Invalid_argument on length mismatch. *)

val enabled : unit -> bool
(** Whether [REPRO_BARS] is set to a truthy value. *)
