let days = 14.0

let scenario ~seed ~rho =
  let base = Workload.Model.generate ~seed ~days () in
  Workload.Trace.scale_load base ~capacity:128 ~target:rho

(* (name, fresh policy instance) — search policies carry per-run
   mutable state, so each simulation must force its own. *)
let policies =
  [
    ("FCFS-backfill", fun () -> Sched.Backfill.fcfs);
    ("LXF-backfill", fun () -> Sched.Backfill.lxf);
    ( "DDS/lxf/dynB",
      fun () ->
        fst
          (Core.Search_policy.policy
             (Core.Search_policy.dds_lxf_dynb ~budget:1000)) );
  ]

let run fmt =
  Common.section fmt ~id:"robustness"
    "Headline relationships on an uncalibrated parametric workload model";
  let scenarios =
    [ ("seed=1 rho=0.85", (1, 0.85));
      ("seed=2 rho=0.90", (2, 0.90));
      ("seed=3 rho=0.95", (3, 0.95)) ]
  in
  (* plan: generate the scenario traces, then every (scenario, policy)
     run, through the pool; formatting reads the results in order *)
  let traces =
    Common.par_map
      (fun (label, (seed, rho)) -> (label, scenario ~seed ~rho))
      scenarios
  in
  let results =
    Common.par_map
      (fun ((label, trace), (name, make_policy)) ->
        ( label,
          (name, Sim.Run.simulate ~r_star:Sim.Engine.Actual
                   ~policy:(make_policy ()) trace) ))
      (List.concat_map
         (fun scenario -> List.map (fun p -> (scenario, p)) policies)
         traces)
  in
  List.iter
    (fun (label, trace) ->
      Format.fprintf fmt "@.--- %s: %s ---@." label
        (Workload.Trace.concat_stats trace);
      let runs = List.filter_map
          (fun (l, r) -> if String.equal l label then Some r else None)
          results
      in
      let agg name = (List.assoc name runs).Sim.Run.aggregate in
      Format.fprintf fmt "%-16s %9s %9s %9s@." "policy" "avgW(h)" "maxW(h)"
        "avgBsld";
      List.iter
        (fun (name, run) ->
          let a = run.Sim.Run.aggregate in
          Format.fprintf fmt "%-16s %9.2f %9.2f %9.1f@." name
            (Metrics.Aggregate.avg_wait_hours a)
            (Metrics.Aggregate.max_wait_hours a)
            a.Metrics.Aggregate.avg_bounded_slowdown)
        runs;
      let fcfs = agg "FCFS-backfill"
      and lxf = agg "LXF-backfill"
      and dds = agg "DDS/lxf/dynB" in
      let check label ok =
        Format.fprintf fmt "[%s] %s@." (if ok then "PASS" else "FAIL") label
      in
      check "LXF slowdown < FCFS slowdown"
        (lxf.Metrics.Aggregate.avg_bounded_slowdown
        < fcfs.Metrics.Aggregate.avg_bounded_slowdown);
      check "DDS max wait <= 1.15 x FCFS max wait"
        (dds.Metrics.Aggregate.max_wait
        <= 1.15 *. fcfs.Metrics.Aggregate.max_wait);
      check "DDS slowdown < FCFS slowdown"
        (dds.Metrics.Aggregate.avg_bounded_slowdown
        < fcfs.Metrics.Aggregate.avg_bounded_slowdown))
    traces
