let days = 14.0

let scenario ~seed ~rho =
  let base = Workload.Model.generate ~seed ~days () in
  Workload.Trace.scale_load base ~capacity:128 ~target:rho

let policies () =
  [
    ("FCFS-backfill", Sched.Backfill.fcfs);
    ("LXF-backfill", Sched.Backfill.lxf);
    ( "DDS/lxf/dynB",
      fst (Core.Search_policy.policy (Core.Search_policy.dds_lxf_dynb ~budget:1000)) );
  ]

let run fmt =
  Common.section fmt ~id:"robustness"
    "Headline relationships on an uncalibrated parametric workload model";
  let scenarios =
    [ ("seed=1 rho=0.85", scenario ~seed:1 ~rho:0.85);
      ("seed=2 rho=0.90", scenario ~seed:2 ~rho:0.90);
      ("seed=3 rho=0.95", scenario ~seed:3 ~rho:0.95) ]
  in
  List.iter
    (fun (label, trace) ->
      Format.fprintf fmt "@.--- %s: %s ---@." label
        (Workload.Trace.concat_stats trace);
      let runs =
        List.map
          (fun (name, policy) ->
            (name, Sim.Run.simulate ~r_star:Sim.Engine.Actual ~policy trace))
          (policies ())
      in
      let agg name = (List.assoc name runs).Sim.Run.aggregate in
      Format.fprintf fmt "%-16s %9s %9s %9s@." "policy" "avgW(h)" "maxW(h)"
        "avgBsld";
      List.iter
        (fun (name, run) ->
          let a = run.Sim.Run.aggregate in
          Format.fprintf fmt "%-16s %9.2f %9.2f %9.1f@." name
            (Metrics.Aggregate.avg_wait_hours a)
            (Metrics.Aggregate.max_wait_hours a)
            a.Metrics.Aggregate.avg_bounded_slowdown)
        runs;
      let fcfs = agg "FCFS-backfill"
      and lxf = agg "LXF-backfill"
      and dds = agg "DDS/lxf/dynB" in
      let check label ok =
        Format.fprintf fmt "[%s] %s@." (if ok then "PASS" else "FAIL") label
      in
      check "LXF slowdown < FCFS slowdown"
        (lxf.Metrics.Aggregate.avg_bounded_slowdown
        < fcfs.Metrics.Aggregate.avg_bounded_slowdown);
      check "DDS max wait <= 1.15 x FCFS max wait"
        (dds.Metrics.Aggregate.max_wait
        <= 1.15 *. fcfs.Metrics.Aggregate.max_wait);
      check "DDS slowdown < FCFS slowdown"
        (dds.Metrics.Aggregate.avg_bounded_slowdown
        < fcfs.Metrics.Aggregate.avg_bounded_slowdown))
    scenarios
