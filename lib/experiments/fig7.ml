let load = Common.Rho 0.9

let variant ~algorithm ~heuristic name =
  let config =
    Core.Search_policy.v ~algorithm ~heuristic ~bound:Core.Bound.dynamic
      ~budget:2000 ()
  in
  ( name,
    fun m ->
      Common.simulate
        ~policy_key:(Core.Search_policy.name config)
        ~policy:(Common.search_policy config)
        ~r_star:Sim.Engine.Actual m load )

let run fmt =
  Common.section fmt ~id:"fig7"
    "Search algorithms and branching heuristics (rho=0.9; R*=T; L=2K)";
  let months = Common.months () in
  let policies =
    [
      variant ~algorithm:Core.Search.Dds ~heuristic:Core.Branching.Fcfs
        "DDS/fcfs/dynB";
      variant ~algorithm:Core.Search.Dds ~heuristic:Core.Branching.Lxf
        "DDS/lxf/dynB";
      variant ~algorithm:Core.Search.Lds ~heuristic:Core.Branching.Lxf
        "LDS/lxf/dynB";
      (* extensions beyond the paper's comparison: the original
         (revisiting) LDS and plain chronological DFS *)
      variant ~algorithm:Core.Search.Lds_original ~heuristic:Core.Branching.Lxf
        "LDS0/lxf/dynB (ext)";
      variant ~algorithm:Core.Search.Dfs ~heuristic:Core.Branching.Lxf
        "DFS/lxf/dynB (ext)";
    ]
  in
  Panels.table fmt ~title:"(a) avg bounded slowdown" ~months ~policies
    ~value:Panels.avg_bounded_slowdown;
  Panels.table fmt
    ~title:"(b) total excessive wait w.r.t. FCFS-BF max (hours)" ~months
    ~policies
    ~value:(fun m run ->
      let threshold =
        Common.fcfs_max_threshold ~r_star:Sim.Engine.Actual m load
      in
      Metrics.Excess.total_hours (Sim.Run.excess run ~threshold))
