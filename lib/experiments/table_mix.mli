(** Tables 3 and 4: generated workload job mix versus the published
    NCSA IA-64 targets, month by month. *)

val run : Format.formatter -> unit
