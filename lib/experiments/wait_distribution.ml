let load = Common.Rho 0.9
let percentiles = [ 50.0; 75.0; 90.0; 95.0; 98.0; 99.0; 100.0 ]

let run fmt =
  Common.section fmt ~id:"wait-distribution"
    "Wait-time percentiles per policy (rho=0.9; R*=T; hours)";
  let months = Common.months () in
  let policies =
    Fig3.policies ~load ~r_star:Sim.Engine.Actual ~budget:Fig4.budget_for
  in
  Common.prefetch_runs ~months policies;
  List.iter
    (fun m ->
      Format.fprintf fmt "@.--- %s ---@." m.Workload.Month_profile.label;
      Format.fprintf fmt "%-16s" "policy";
      List.iter (fun p -> Format.fprintf fmt " %7.0f%%" p) percentiles;
      Format.pp_print_newline fmt ();
      List.iter
        (fun (name, runner) ->
          let run = runner m in
          let waits =
            Array.of_list
              (List.map Metrics.Outcome.wait run.Sim.Run.measured)
          in
          Format.fprintf fmt "%-16s" name;
          List.iter
            (fun p ->
              let v =
                if Array.length waits = 0 then 0.0
                else Simcore.Stats.percentile waits p
              in
              Format.fprintf fmt " %8.2f" (Simcore.Units.to_hours v))
            percentiles;
          Format.pp_print_newline fmt ())
        policies)
    months
