(** Scheduling overhead (Section 2.3): wall-clock time to visit
    1K - 8K nodes in a tree of 30 waiting jobs.  The paper's Java
    simulator took 30-65 ms on a 2 GHz Pentium 4. *)

val synthetic_state :
  ?n_waiting:int -> seed:int -> unit -> Core.Search_state.t
(** A fresh decision-point state with [n_waiting] queued jobs (default
    30) over a realistically loaded 128-node machine.  Each call
    returns an independent state (search consumes it). *)

val run : Format.formatter -> unit
