(** Scheduling overhead (Section 2.3): wall-clock time to visit
    1K - 8K nodes in a tree of 30 waiting jobs.  The paper's Java
    simulator took 30-65 ms on a 2 GHz Pentium 4.  All timing uses
    the monotonic clock ([Simcore.Clock]), never [Unix.gettimeofday]. *)

val synthetic_state :
  ?n_waiting:int ->
  ?backtrack:Core.Search_state.backtrack ->
  seed:int ->
  unit ->
  Core.Search_state.t
(** A fresh decision-point state with [n_waiting] queued jobs (default
    30) over a realistically loaded 128-node machine.  [backtrack]
    selects the profile backtracking strategy (default
    {!Core.Search_state.Trail}).  Each call returns an independent
    state (search consumes it). *)

val nodes_per_ms :
  ?n_waiting:int ->
  ?backtrack:Core.Search_state.backtrack ->
  ?repeats:int ->
  budget:int ->
  unit ->
  float
(** Search throughput of DDS/lxf on the synthetic decision point:
    nodes visited per millisecond, averaged over [repeats] (default
    20) independently seeded states at node budget L = [budget].  The
    quantity tracked by BENCH_search_hotpath.json and the @perf-smoke
    alias. *)

val run : Format.formatter -> unit
