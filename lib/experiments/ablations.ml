let load = Common.Rho 0.9
let r_star = Sim.Engine.Actual

let runner ~policy_key ~policy m =
  Common.simulate ~policy_key ~policy ~r_star m load

let simple name policy =
  (name, runner ~policy_key:name ~policy:(fun () -> policy))

let search name config =
  ( name,
    runner
      ~policy_key:(Core.Search_policy.name config)
      ~policy:(Common.search_policy config) )

let three_panels fmt ~months ~policies =
  Panels.table fmt ~title:"avg wait (hours)" ~months ~policies
    ~value:Panels.avg_wait_hours;
  Panels.table fmt ~title:"max wait (hours)" ~months ~policies
    ~value:Panels.max_wait_hours;
  Panels.table fmt ~title:"avg bounded slowdown" ~months ~policies
    ~value:Panels.avg_bounded_slowdown

let extra_baselines fmt =
  Common.section fmt ~id:"ablation-baselines"
    "Related-work baselines (rho=0.9; R*=T)";
  let months = Common.months () in
  let policies =
    [
      simple "FCFS-backfill" Sched.Backfill.fcfs;
      simple "LXF-backfill" Sched.Backfill.lxf;
      simple "SJF-backfill" Sched.Backfill.sjf;
      simple "selective-backfill" (Sched.Selective.policy ());
      simple "conservative-fcfs" (Sched.Conservative.policy ());
      simple "lookahead-backfill" (Sched.Lookahead.policy ());
      simple "relaxed-backfill" (Sched.Relaxed.policy ());
      simple "multi-queue-backfill" (Sched.Multi_queue.policy ());
      simple "run-now (greedy)" Sched.Policy.run_now;
      search "DDS/lxf/dynB(1K)" (Core.Search_policy.dds_lxf_dynb ~budget:1000);
    ]
  in
  three_panels fmt ~months ~policies;
  Panels.table fmt ~title:"utilization (% of node-time)" ~months ~policies
    ~value:(fun _ run -> 100.0 *. run.Sim.Run.utilization)

let reservations fmt =
  Common.section fmt ~id:"ablation-reservations"
    "FCFS-backfill reservation count (rho=0.9; R*=T)";
  let months = Common.months () in
  let policies =
    List.map
      (fun k ->
        simple
          (Printf.sprintf "FCFS-backfill res=%d" k)
          (Sched.Backfill.policy ~reservations:k Sched.Priority.fcfs))
      [ 1; 2; 4 ]
  in
  three_panels fmt ~months ~policies

let pruning fmt =
  Common.section fmt ~id:"ablation-bnb"
    "Branch-and-bound pruning in DDS/lxf/dynB (rho=0.9; R*=T; L=1K)";
  let months = Common.months () in
  let base = Core.Search_policy.dds_lxf_dynb ~budget:1000 in
  let policies =
    [
      search "DDS/lxf/dynB" base;
      search "DDS/lxf/dynB+bnb" { base with Core.Search_policy.prune = true };
    ]
  in
  three_panels fmt ~months ~policies

let hybrid_local_search fmt =
  Common.section fmt ~id:"ablation-localsearch"
    "Local-search post-pass on DDS/lxf/dynB (rho=0.9; R*=T; L=1K)";
  let months = Common.months () in
  let base = Core.Search_policy.dds_lxf_dynb ~budget:1000 in
  let policies =
    [
      search "DDS/lxf/dynB" base;
      search "DDS/lxf/dynB+ls"
        { base with Core.Search_policy.local_search = true };
    ]
  in
  three_panels fmt ~months ~policies

let prediction fmt =
  Common.section fmt ~id:"ablation-prediction"
    "On-line runtime prediction (Sec 7 future work): DDS/lxf/dynB, rho=0.9, L=4K";
  let months = Common.months () in
  let config = Core.Search_policy.dds_lxf_dynb ~budget:4000 in
  let with_estimator label r_star =
    ( label,
      fun m ->
        Common.simulate
          ~policy_key:(Core.Search_policy.name config)
          ~policy:(Common.search_policy config)
          ~r_star m load )
  in
  let policies =
    [
      with_estimator "DDS (R*=T, oracle)" Sim.Engine.Actual;
      with_estimator "DDS (R*=R, user estimates)" Sim.Engine.Requested;
      with_estimator "DDS (R*=pred, corrected)" Sim.Engine.Predicted;
    ]
  in
  three_panels fmt ~months ~policies

let fairshare fmt =
  Common.section fmt ~id:"ablation-fairshare"
    "Fairshare thresholds (Sec 7 future work): DDS/lxf/dynB, rho=0.9, L=1K";
  let months = Common.months () in
  let base = Core.Search_policy.dds_lxf_dynb ~budget:1000 in
  let fair = { base with Core.Search_policy.fairshare = Some 2.0 } in
  let policies = [ search "DDS/lxf/dynB" base; search "DDS/lxf/dynB+fair" fair ] in
  three_panels fmt ~months ~policies;
  Panels.table fmt ~title:"Jain fairness over per-user slowdowns" ~months
    ~policies
    ~value:(fun _ run ->
      Metrics.User_stats.jain_index
        (Metrics.User_stats.compute run.Sim.Run.measured));
  (* per-user detail for one month *)
  match months with
  | [] -> ()
  | m :: _ ->
      List.iter
        (fun (label, runner) ->
          let run = runner m in
          Format.fprintf fmt "@.-- %s, month %s: heaviest users --@.%a" label
            m.Workload.Month_profile.label
            (Metrics.User_stats.pp_top ~n:5)
            (Metrics.User_stats.compute run.Sim.Run.measured))
        policies

let objective_goal fmt =
  Common.section fmt ~id:"ablation-goal"
    "Declared second-level goal: bounded slowdown (paper) vs avg wait (rho=0.9; L=1K)";
  let months = Common.months () in
  let base = Core.Search_policy.dds_lxf_dynb ~budget:1000 in
  let wait_goal = { base with Core.Search_policy.goal = Core.Objective.Avg_wait } in
  let policies =
    [ search "DDS/lxf/dynB (bsld)" base;
      search "DDS/lxf/dynB (avgW)" wait_goal ]
  in
  three_panels fmt ~months ~policies

let runtime_bound fmt =
  Common.section fmt ~id:"ablation-rtbound"
    "Runtime-scaled target bound vs dynB (rho=0.9; R*=T; L=1K)";
  let months = Common.months () in
  let rt_bound =
    Core.Bound.Runtime_scaled { floor = Simcore.Units.hour; factor = 2.0 }
  in
  let policies =
    [
      search "DDS/lxf/dynB" (Core.Search_policy.dds_lxf_dynb ~budget:1000);
      search "DDS/lxf/rtB"
        (Core.Search_policy.v ~algorithm:Core.Search.Dds
           ~heuristic:Core.Branching.Lxf ~bound:rt_bound ~budget:1000 ());
    ]
  in
  three_panels fmt ~months ~policies
