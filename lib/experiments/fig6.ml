(* read per call, not at module init, so harnesses can re-point
   REPRO_MAXL in-process (perf-json quick config, determinism tests) *)
let budgets () =
  let all = [ 1000; 2000; 4000; 8000; 10_000; 100_000 ] in
  match Sys.getenv_opt "REPRO_MAXL" with
  | None -> all
  | Some s -> (
      match int_of_string_opt s with
      | Some cap -> List.filter (fun b -> b <= cap) all
      | None -> all)

let load = Common.Rho 0.9

let run fmt =
  Common.section fmt ~id:"fig6"
    "January 2004: impact of node budget L on DDS/lxf/dynB (rho=0.9; R*=T)";
  match
    List.find_opt
      (fun m -> String.equal m.Workload.Month_profile.label "1/04")
      (Common.months ())
  with
  | None ->
      Format.fprintf fmt "1/04 not in REPRO_MONTHS selection; skipped.@."
  | Some month ->
      let r_star = Sim.Engine.Actual in
      (* the run set as data: one entry per L plus the two baselines *)
      let plan =
        List.map
          (fun budget ->
            let config = Core.Search_policy.dds_lxf_dynb ~budget in
            ( Printf.sprintf "L=%dK" (budget / 1000),
              fun () ->
                Common.simulate
                  ~policy_key:(Core.Search_policy.name config)
                  ~policy:(Common.search_policy config)
                  ~r_star month load ))
          (budgets ())
        @ [
            ("FCFS-BF", fun () -> Common.fcfs_run ~r_star month load);
            ( "LXF-BF",
              fun () ->
                Common.simulate ~policy_key:"LXF-backfill"
                  ~policy:(fun () -> Sched.Backfill.lxf)
                  ~r_star month load );
          ]
      in
      Common.prefetch
        (List.map (fun (_, force) () -> ignore (force () : Sim.Run.t)) plan);
      let threshold = Common.fcfs_max_threshold ~r_star month load in
      let runs = List.map (fun (label, force) -> (label, force ())) plan in
      Format.fprintf fmt "%-10s %12s %10s %10s %10s@." "L"
        "totExcess(h)" "maxWait(h)" "avgWait(h)" "avgBsld";
      List.iter
        (fun (label, run) ->
          let agg = run.Sim.Run.aggregate in
          let excess = Sim.Run.excess run ~threshold in
          Format.fprintf fmt "%-10s %12.1f %10.2f %10.2f %10.2f@." label
            (Metrics.Excess.total_hours excess)
            (Metrics.Aggregate.max_wait_hours agg)
            (Metrics.Aggregate.avg_wait_hours agg)
            agg.Metrics.Aggregate.avg_bounded_slowdown)
        runs
