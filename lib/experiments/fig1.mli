(** Figure 1: search-tree structure, LDS/DDS visit orders for four
    jobs, and tree sizes as a function of the number of waiting jobs. *)

val run : Format.formatter -> unit
