(** Figure 7: effect of search algorithm (DDS vs LDS) and branching
    heuristic (lxf vs fcfs) with the dynamic bound, rho = 0.9, L = 2K,
    R* = T. *)

val run : Format.formatter -> unit
