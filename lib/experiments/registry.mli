(** Index of all reproduction experiments, for the CLI and the bench
    harness. *)

type t = {
  id : string;  (** e.g. "fig4" *)
  title : string;
  run : Format.formatter -> unit;
}

val all : t list
(** Paper experiments first (fig1..fig8, table3+4, overhead), then the
    ablations. *)

val paper : t list
(** Only the experiments reproducing a paper table or figure. *)

val find : string -> t option
