let known =
  [
    "fcfs-bf"; "lxf-bf"; "sjf-bf"; "lxfw-bf"; "conservative"; "selective";
    "lookahead"; "relaxed"; "multi-queue"; "run-now"; "dds/lxf/dynb"; "dds/fcfs/dynb"; "lds/lxf/dynb";
    "dds/lxf/w=50"; "dds/lxf/rt=1:2"; "dds/lxf/dynb+bnb"; "dds/lxf/dynb+ls"; "dds/lxf/dynb+fair";
  ]

let ( let* ) = Result.bind

let parse_algorithm = function
  | "dds" -> Ok Core.Search.Dds
  | "lds" -> Ok Core.Search.Lds
  | "lds0" -> Ok Core.Search.Lds_original
  | "dfs" -> Ok Core.Search.Dfs
  | s -> Error (Printf.sprintf "unknown search algorithm %S" s)

let parse_heuristic = function
  | "fcfs" -> Ok Core.Branching.Fcfs
  | "lxf" -> Ok Core.Branching.Lxf
  | s -> Error (Printf.sprintf "unknown branching heuristic %S" s)

let parse_bound s =
  if s = "dynb" then Ok Core.Bound.dynamic
  else if String.length s > 2 && String.sub s 0 2 = "w=" then
    match float_of_string_opt (String.sub s 2 (String.length s - 2)) with
    | Some hours when hours >= 0.0 -> Ok (Core.Bound.fixed_hours hours)
    | _ -> Error (Printf.sprintf "bad fixed bound %S (want w=<hours>)" s)
  else if String.length s > 3 && String.sub s 0 3 = "rt=" then begin
    match
      String.split_on_char ':' (String.sub s 3 (String.length s - 3))
    with
    | [ floor; factor ] -> (
        match (float_of_string_opt floor, float_of_string_opt factor) with
        | Some floor_h, Some factor when floor_h >= 0.0 && factor >= 0.0 ->
            Ok
              (Core.Bound.Runtime_scaled
                 { floor = Simcore.Units.hours floor_h; factor })
        | _ -> Error (Printf.sprintf "bad runtime bound %S" s))
    | _ -> Error (Printf.sprintf "bad runtime bound %S (want rt=<h>:<f>)" s)
  end
  else Error (Printf.sprintf "unknown bound %S (dynb, w=<hours>, rt=<h>:<f>)" s)

(* Strip one "+opt" suffix at a time. *)
let rec strip_options spec prune local_search fairshare =
  let suffix tag = Filename.check_suffix spec tag in
  if suffix "+bnb" then
    strip_options (Filename.chop_suffix spec "+bnb") true local_search fairshare
  else if suffix "+ls" then
    strip_options (Filename.chop_suffix spec "+ls") prune true fairshare
  else if suffix "+fair" then
    strip_options (Filename.chop_suffix spec "+fair") prune local_search
      (Some 2.0)
  else (spec, prune, local_search, fairshare)

let parse_search ~budget spec =
  let spec, prune, local_search, fairshare = strip_options spec false false None in
  match String.split_on_char '/' spec with
  | [ algo; heuristic; bound ] ->
      let* algorithm = parse_algorithm algo in
      let* heuristic = parse_heuristic heuristic in
      let* bound = parse_bound bound in
      let config =
        Core.Search_policy.v ~prune ~local_search ?fairshare ~algorithm
          ~heuristic ~bound ~budget ()
      in
      Ok (fst (Core.Search_policy.policy config))
  | _ ->
      Error
        (Printf.sprintf "bad policy spec %S (examples: %s)" spec
           (String.concat ", " known))

let parse ~budget spec =
  match String.lowercase_ascii (String.trim spec) with
  | "fcfs-bf" -> Ok Sched.Backfill.fcfs
  | "lxf-bf" -> Ok Sched.Backfill.lxf
  | "sjf-bf" -> Ok Sched.Backfill.sjf
  | "lxfw-bf" ->
      Ok (Sched.Backfill.policy (Sched.Priority.lxf_w ~weight_per_hour:0.01))
  | "conservative" -> Ok (Sched.Conservative.policy ())
  | "selective" -> Ok (Sched.Selective.policy ())
  | "lookahead" -> Ok (Sched.Lookahead.policy ())
  | "relaxed" -> Ok (Sched.Relaxed.policy ())
  | "multi-queue" -> Ok (Sched.Multi_queue.policy ())
  | "run-now" -> Ok Sched.Policy.run_now
  | lowered -> parse_search ~budget lowered
