(** Automated shape checks: the paper's key qualitative claims,
    evaluated over the same (memoized) simulation runs the figures use.
    Prints one PASS/FAIL line per claim — absolute numbers differ from
    the paper (synthetic workloads), but these relationships must
    hold for the reproduction to count. *)

val run : Format.formatter -> unit

val evaluate : unit -> (string * bool) list
(** (claim description, holds?) pairs, for tests. *)
