type t = {
  id : string;
  title : string;
  run : Format.formatter -> unit;
}

let paper =
  [
    { id = "fig1"; title = "Search tree and LDS/DDS visit orders"; run = Fig1.run };
    { id = "table3+4"; title = "Workload job mix vs published targets";
      run = Table_mix.run };
    { id = "fig2"; title = "Sensitivity to fixed target bound"; run = Fig2.run };
    { id = "fig3"; title = "Policy comparison, original load"; run = Fig3.run };
    { id = "fig4"; title = "Policy comparison, rho=0.9"; run = Fig4.run };
    { id = "fig5"; title = "Per-class average wait, July 2003"; run = Fig5.run };
    { id = "fig6"; title = "Impact of node budget, January 2004"; run = Fig6.run };
    { id = "fig7"; title = "Search algorithms and heuristics"; run = Fig7.run };
    { id = "fig8"; title = "Inaccurate requested runtimes"; run = Fig8.run };
    { id = "overhead"; title = "Scheduling overhead"; run = Overhead.run };
    { id = "claims"; title = "Automated shape checks of the key findings";
      run = Claims.run };
  ]

let ablations =
  [
    { id = "ablation-baselines"; title = "Related-work baselines";
      run = Ablations.extra_baselines };
    { id = "ablation-reservations"; title = "Backfill reservation count";
      run = Ablations.reservations };
    { id = "ablation-bnb"; title = "Branch-and-bound pruning";
      run = Ablations.pruning };
    { id = "ablation-localsearch"; title = "Local-search post-pass";
      run = Ablations.hybrid_local_search };
    { id = "ablation-rtbound"; title = "Runtime-scaled target bound";
      run = Ablations.runtime_bound };
    { id = "ablation-prediction"; title = "On-line runtime prediction";
      run = Ablations.prediction };
    { id = "ablation-goal"; title = "Second-level goal variants";
      run = Ablations.objective_goal };
    { id = "ablation-fairshare"; title = "Fairshare-inflated thresholds";
      run = Ablations.fairshare };
    { id = "robustness"; title = "Uncalibrated-workload robustness check";
      run = Robustness.run };
    { id = "seeds"; title = "Generator-seed sensitivity"; run = Seeds.run };
    { id = "wait-distribution"; title = "Wait-time percentile ladders";
      run = Wait_distribution.run };
    { id = "backlog"; title = "Daily backlog dynamics (1/04)";
      run = Backlog.run };
    { id = "anytime"; title = "Anytime search-quality curves";
      run = Anytime.run };
  ]

let all = paper @ ablations
let find id = List.find_opt (fun e -> String.equal e.id id) all
