let run fmt =
  Common.section fmt ~id:"fig5"
    "Average wait (hours) per job class, July 2003 (rho=0.9; R*=T; L=1K)";
  match
    List.find_opt
      (fun m -> String.equal m.Workload.Month_profile.label "7/03")
      (Common.months ())
  with
  | None ->
      Format.fprintf fmt "7/03 not in REPRO_MONTHS selection; skipped.@."
  | Some month ->
      let policies =
        Fig3.policies ~load:(Common.Rho 0.9) ~r_star:Sim.Engine.Actual
          ~budget:(fun _ -> 1000)
      in
      Common.prefetch_runs ~months:[ month ] policies;
      List.iter
        (fun (name, runner) ->
          let run = runner month in
          Format.fprintf fmt "@.-- %s --@.%a" name Metrics.Class_matrix.pp
            run.Sim.Run.class_matrix)
        policies
