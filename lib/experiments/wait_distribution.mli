(** Wait-time distribution deep dive (extension).

    The paper reports averages, maxima, a 98th percentile and excess
    measures; this experiment prints the full per-policy wait
    percentile ladder for each month under high load, showing *where*
    in the distribution each policy wins. *)

val run : Format.formatter -> unit
