(** Robustness check: do the headline relationships survive on a
    workload that is *not* calibrated to the paper's tables?

    Uses {!Workload.Model} (a literature-style parametric rigid-job
    model) at several seeds and loads, runs the three headline
    policies, and prints the same measures as Figure 4 plus PASS/FAIL
    shape checks. *)

val run : Format.formatter -> unit
