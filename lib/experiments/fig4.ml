let budget_for (m : Workload.Month_profile.t) =
  if String.equal m.Workload.Month_profile.label "1/04" then 8000 else 1000

let load = Common.Rho 0.9

let excess_table fmt ~title ~months ~policies ~threshold_of
    ~(value : Metrics.Excess.t -> float) =
  Panels.table fmt ~title ~months ~policies ~value:(fun m run ->
      value (Sim.Run.excess run ~threshold:(threshold_of m)))

let run fmt =
  Common.section fmt ~id:"fig4"
    "Performance comparison under high load (rho=0.9; R*=T; L=1K, 8K for 1/04)";
  let months = Common.months () in
  let r_star = Sim.Engine.Actual in
  let policies = Fig3.policies ~load ~r_star ~budget:budget_for in
  let max_threshold m = Common.fcfs_max_threshold ~r_star m load in
  let p98_threshold m = Common.fcfs_p98_threshold ~r_star m load in
  Panels.table fmt ~title:"(a) avg wait (hours)" ~months ~policies
    ~value:Panels.avg_wait_hours;
  Panels.table fmt ~title:"(b) max wait (hours)" ~months ~policies
    ~value:Panels.max_wait_hours;
  Panels.table fmt ~title:"(c) avg bounded slowdown" ~months ~policies
    ~value:Panels.avg_bounded_slowdown;
  Panels.table fmt ~title:"(d) avg queue length" ~months ~policies
    ~value:Panels.avg_queue_length;
  excess_table fmt
    ~title:"(e) total excessive wait w.r.t. FCFS-BF 98th pct (hours)" ~months
    ~policies ~threshold_of:p98_threshold ~value:Metrics.Excess.total_hours;
  excess_table fmt
    ~title:"(f) total excessive wait w.r.t. FCFS-BF max (hours)" ~months
    ~policies ~threshold_of:max_threshold ~value:Metrics.Excess.total_hours;
  excess_table fmt ~title:"(g) # jobs with excessive wait (w.r.t. FCFS-BF max)"
    ~months ~policies ~threshold_of:max_threshold
    ~value:(fun e -> float_of_int e.Metrics.Excess.count);
  excess_table fmt
    ~title:"(h) avg excessive wait over such jobs (w.r.t. FCFS-BF max, hours)"
    ~months ~policies ~threshold_of:max_threshold
    ~value:Metrics.Excess.average_hours
