let enabled () =
  match Sys.getenv_opt "REPRO_BARS" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let bar_width = 40

let grouped_bars fmt ~title ~groups ~series =
  List.iter
    (fun (name, values) ->
      if List.length values <> List.length groups then
        invalid_arg
          (Printf.sprintf "Chart.grouped_bars: series %S has %d values for %d groups"
             name (List.length values) (List.length groups)))
    series;
  let maximum =
    List.fold_left
      (fun acc (_, values) -> List.fold_left Float.max acc values)
      0.0 series
  in
  Format.fprintf fmt "@.   %s@." title;
  if maximum <= 0.0 then Format.fprintf fmt "   (all values zero)@."
  else
    List.iteri
      (fun gi group ->
        List.iteri
          (fun si (name, values) ->
            let v = List.nth values gi in
            let filled =
              max 0
                (min bar_width
                   (int_of_float
                      (Float.round (float_of_int bar_width *. v /. maximum))))
            in
            Format.fprintf fmt "   %-6s %-22s |%s%s %g@."
              (if si = 0 then group else "")
              name
              (String.make filled '#')
              (String.make (bar_width - filled) ' ')
              v)
          series)
      groups
