(** Seed sensitivity: the headline comparison re-run on independently
    generated workloads.

    The synthetic months are random; the reproduction only stands if
    the policy relationships are stable across generator seeds, not a
    fluke of seed 42.  Runs the three headline policies on one month at
    rho = 0.9 for several seeds and reports the per-seed measures plus
    PASS/FAIL stability checks. *)

val run : Format.formatter -> unit
