(** Figure 3: FCFS-backfill vs LXF-backfill vs DDS/lxf/dynB under the
    original load (R* = T, L = 1K). *)

val run : Format.formatter -> unit

val policies :
  load:Common.load ->
  r_star:Sim.Engine.r_star ->
  budget:(Workload.Month_profile.t -> int) ->
  (string * (Workload.Month_profile.t -> Sim.Run.t)) list
(** The paper's three headline policies as memoized per-month runners;
    shared with Figures 4, 5 and 8. *)
