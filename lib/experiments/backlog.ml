let load = Common.Rho 0.9
let month_label = "1/04"

let run fmt =
  Common.section fmt ~id:"backlog"
    (Printf.sprintf
       "Backlog dynamics: daily average queue length, %s at rho=0.9"
       month_label);
  match
    List.find_opt
      (fun m -> String.equal m.Workload.Month_profile.label month_label)
      (Common.months ())
  with
  | None ->
      Format.fprintf fmt "%s not in REPRO_MONTHS selection; skipped.@."
        month_label
  | Some month ->
      let policies =
        Fig3.policies ~load ~r_star:Sim.Engine.Actual ~budget:Fig4.budget_for
      in
      Common.prefetch_runs ~months:[ month ] policies;
      let trace = Common.trace month load in
      let start = Workload.Trace.measure_start trace in
      let stop = Workload.Trace.measure_end trace in
      let n_days =
        int_of_float (Float.ceil ((stop -. start) /. Simcore.Units.day))
      in
      Format.fprintf fmt "%-16s" "policy";
      for d = 1 to n_days do
        Format.fprintf fmt " %5s" (Printf.sprintf "d%d" d)
      done;
      Format.pp_print_newline fmt ();
      List.iter
        (fun (name, runner) ->
          let run = runner month in
          Format.fprintf fmt "%-16s" name;
          for d = 0 to n_days - 1 do
            let from_ = start +. (float_of_int d *. Simcore.Units.day) in
            let upto = Float.min stop (from_ +. Simcore.Units.day) in
            Format.fprintf fmt " %5.0f"
              (Sim.Engine.windowed_queue_average run.Sim.Run.queue_samples
                 ~from_ ~upto)
          done;
          Format.pp_print_newline fmt ())
        policies
