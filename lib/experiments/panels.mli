(** Rendering of the paper's per-month bar-chart panels as tables:
    one column per month, one row per policy.

    [table] first submits the full (policy x month) run grid to the
    shared domain pool ([Common.prefetch_runs]) and then formats from
    the warm cache, so rendering is deterministic for every jobs
    setting. *)

val table :
  Format.formatter ->
  title:string ->
  months:Workload.Month_profile.t list ->
  policies:(string * (Workload.Month_profile.t -> Sim.Run.t)) list ->
  value:(Workload.Month_profile.t -> Sim.Run.t -> float) ->
  unit

val avg_wait_hours : 'a -> Sim.Run.t -> float
val max_wait_hours : 'a -> Sim.Run.t -> float
val avg_bounded_slowdown : 'a -> Sim.Run.t -> float
val avg_queue_length : 'a -> Sim.Run.t -> float
