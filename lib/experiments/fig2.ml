let policy_for omega =
  let config =
    Core.Search_policy.v ~algorithm:Core.Search.Dds
      ~heuristic:Core.Branching.Lxf
      ~bound:(Core.Bound.fixed_hours omega)
      ~budget:1000 ()
  in
  ( Printf.sprintf "DDS/lxf w=%gh" omega,
    fun m ->
      Common.simulate
        ~policy_key:(Core.Search_policy.name config)
        ~policy:(Common.search_policy config)
        ~r_star:Sim.Engine.Actual m Common.Original )

let run fmt =
  Common.section fmt ~id:"fig2"
    "Sensitivity to fixed target bound (DDS/lxf; R*=T; original load; L=1K)";
  let months = Common.months () in
  let policies = List.map policy_for [ 50.0; 100.0; 300.0 ] in
  Panels.table fmt ~title:"(a) max wait (hours)" ~months ~policies
    ~value:Panels.max_wait_hours;
  Panels.table fmt ~title:"(b) avg bounded slowdown" ~months ~policies
    ~value:Panels.avg_bounded_slowdown;
  Panels.table fmt ~title:"(extra) avg wait (hours)" ~months ~policies
    ~value:Panels.avg_wait_hours
