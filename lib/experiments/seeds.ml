let month_label = "9/03"
let seeds = [ 42; 1001; 2002; 3003 ]

let trace_for seed =
  let profile = Workload.Month_profile.find month_label in
  let config =
    { Workload.Generator.default_config with
      seed;
      scale = Common.scale ();
    }
  in
  let base = Workload.Generator.month ~config profile in
  Workload.Trace.scale_load base ~capacity:Workload.Month_profile.capacity
    ~target:0.9

let run fmt =
  Common.section fmt ~id:"seeds"
    (Printf.sprintf
       "Seed sensitivity: month %s at rho=0.9 across generator seeds"
       month_label);
  let policies =
    [
      ("FCFS-backfill", fun () -> Sched.Backfill.fcfs);
      ("LXF-backfill", fun () -> Sched.Backfill.lxf);
      ( "DDS/lxf/dynB",
        fun () ->
          fst
            (Core.Search_policy.policy
               (Core.Search_policy.dds_lxf_dynb ~budget:1000)) );
    ]
  in
  (* plan: traces per seed, then every (seed, policy) run, via the pool *)
  let traces =
    Common.par_map (fun seed -> (seed, trace_for seed)) seeds
  in
  let results =
    Common.par_map
      (fun ((seed, trace), (name, make)) ->
        ( seed,
          ( name,
            Sim.Run.simulate ~r_star:Sim.Engine.Actual ~policy:(make ())
              trace ) ))
      (List.concat_map
         (fun st -> List.map (fun p -> (st, p)) policies)
         traces)
  in
  let all_pass = ref true in
  List.iter
    (fun seed ->
      let runs =
        List.filter_map
          (fun (s, r) -> if s = seed then Some r else None)
          results
      in
      Format.fprintf fmt "@.seed %d:@." seed;
      Format.fprintf fmt "%-16s %9s %9s %9s@." "policy" "avgW(h)" "maxW(h)"
        "avgBsld";
      List.iter
        (fun (name, run) ->
          let a = run.Sim.Run.aggregate in
          Format.fprintf fmt "%-16s %9.2f %9.2f %9.1f@." name
            (Metrics.Aggregate.avg_wait_hours a)
            (Metrics.Aggregate.max_wait_hours a)
            a.Metrics.Aggregate.avg_bounded_slowdown)
        runs;
      let agg name = (List.assoc name runs).Sim.Run.aggregate in
      let fcfs = agg "FCFS-backfill"
      and lxf = agg "LXF-backfill"
      and dds = agg "DDS/lxf/dynB" in
      let stable =
        lxf.Metrics.Aggregate.avg_bounded_slowdown
          < fcfs.Metrics.Aggregate.avg_bounded_slowdown
        && dds.Metrics.Aggregate.max_wait
           <= 1.15 *. fcfs.Metrics.Aggregate.max_wait
        && dds.Metrics.Aggregate.avg_bounded_slowdown
           < fcfs.Metrics.Aggregate.avg_bounded_slowdown
      in
      if not stable then all_pass := false;
      Format.fprintf fmt "[%s] headline ordering holds for seed %d@."
        (if stable then "PASS" else "FAIL")
        seed)
    seeds;
  Format.fprintf fmt "@.[%s] ordering stable across all %d seeds@."
    (if !all_pass then "PASS" else "FAIL")
    (List.length seeds)
