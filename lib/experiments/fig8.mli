(** Figure 8: impact of inaccurate user-requested runtimes (R* = R),
    rho = 0.9, L = 4K. *)

val run : Format.formatter -> unit
