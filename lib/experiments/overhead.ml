open Simcore

let synthetic_state ?(n_waiting = 30) ?backtrack ~seed () =
  let rng = Rng.create ~seed in
  let now = Units.days 100.0 in
  let capacity = 128 in
  (* ~16 running jobs filling most of the machine, releasing over the
     next twelve hours. *)
  let releases = ref [] in
  let busy = ref 0 in
  let stop = ref false in
  while not !stop do
    let nodes = 1 + Rng.int rng 16 in
    if !busy + nodes > capacity - 4 then stop := true
    else begin
      busy := !busy + nodes;
      let end_time = now +. Dist.log_uniform rng ~lo:Units.minute ~hi:(Units.hours 12.0) in
      releases := (end_time, nodes) :: !releases
    end
  done;
  let profile = Cluster.Profile.of_running ~now ~capacity !releases in
  let jobs =
    Array.init n_waiting (fun id ->
        let nodes = 1 + Rng.int rng 64 in
        let runtime = Dist.log_uniform rng ~lo:Units.minute ~hi:(Units.hours 12.0) in
        let submit = now -. Rng.float rng (Units.hours 5.0) in
        Workload.Job.v ~id ~submit:(Float.max 0.0 submit) ~nodes ~runtime
          ~requested:runtime)
  in
  let r_star (j : Workload.Job.t) = j.runtime in
  let ordered =
    Core.Branching.order Core.Branching.Lxf ~now ~r_star
      (Array.to_list jobs)
  in
  let durations = Array.map r_star ordered in
  let thresholds =
    Core.Bound.thresholds Core.Bound.dynamic ~now ~r_star ordered
  in
  Core.Search_state.create ?backtrack ~now ~profile ~jobs:ordered ~durations
    ~thresholds ()

let monotonic_s = Simcore.Clock.monotonic_s

let time_one ?n_waiting ?backtrack ~budget ~seed () =
  let state = synthetic_state ?n_waiting ?backtrack ~seed () in
  let t0 = monotonic_s () in
  let result = Core.Search.run Core.Search.Dds ~budget state in
  let elapsed = monotonic_s () -. t0 in
  (elapsed, result.Core.Search.nodes_visited)

let nodes_per_ms ?n_waiting ?backtrack ?(repeats = 20) ~budget () =
  let total_time = ref 0.0 in
  let total_nodes = ref 0 in
  for i = 1 to repeats do
    let elapsed, nodes =
      time_one ?n_waiting ?backtrack ~budget ~seed:(1000 + i) ()
    in
    total_time := !total_time +. elapsed;
    total_nodes := !total_nodes + nodes
  done;
  float_of_int !total_nodes /. Float.max (1000.0 *. !total_time) 1e-9

let run fmt =
  Common.section fmt ~id:"overhead"
    "Scheduling overhead: DDS/lxf on a 30-job tree (paper: 30-65 ms for 1K-8K nodes)";
  Format.fprintf fmt "%-10s %12s %14s %14s@." "L" "nodes" "time (ms)"
    "nodes/ms";
  List.iter
    (fun budget ->
      let repeats = 20 in
      let total_time = ref 0.0 in
      let total_nodes = ref 0 in
      for i = 1 to repeats do
        let elapsed, nodes = time_one ~budget ~seed:(1000 + i) () in
        total_time := !total_time +. elapsed;
        total_nodes := !total_nodes + nodes
      done;
      let ms = 1000.0 *. !total_time /. float_of_int repeats in
      let nodes = float_of_int !total_nodes /. float_of_int repeats in
      Format.fprintf fmt "%-10d %12.0f %14.3f %14.0f@." budget nodes ms
        (nodes /. Float.max ms 1e-9))
    [ 1000; 2000; 4000; 8000 ]
