(** Ablation studies beyond the paper's figures.

    - [extra_baselines]: SJF-backfill, Selective-backfill, conservative
      backfill and the greedy run-now policy next to the paper's three
      (the related-work comparison of Section 3.2).
    - [reservations]: FCFS-backfill with 1, 2 and 4 reservations (the
      paper notes more reservations did not help).
    - [pruning]: DDS/lxf/dynB with and without the branch-and-bound
      extension, at equal node budget.
    - [hybrid_local_search]: DDS/lxf/dynB with and without the
      local-search post-pass (the Section 2.2 future-work hybrid).
    - [runtime_bound]: the Section 6.1 future-work idea — a target
      bound that scales with job runtime — against dynB. *)

val extra_baselines : Format.formatter -> unit
val reservations : Format.formatter -> unit
val pruning : Format.formatter -> unit
val hybrid_local_search : Format.formatter -> unit
val runtime_bound : Format.formatter -> unit

val prediction : Format.formatter -> unit
(** The Section 7 future-work experiment: perfect runtimes vs raw user
    estimates vs on-line corrected estimates, for DDS/lxf/dynB. *)

val objective_goal : Format.formatter -> unit
(** Second-level goal as configuration: the paper's average bounded
    slowdown versus plain average wait. *)

val fairshare : Format.formatter -> unit
(** The Section 7 fairshare experiment: usage-share-inflated thresholds
    vs plain dynB, with per-user fairness measures. *)
