(** Shared plumbing for the paper-reproduction experiments.

    Environment knobs (read once at first use):
    - [REPRO_SCALE]  — workload scale factor (default 1.0; smaller
      values shrink both job counts and the time axis, preserving
      load, for CI-sized runs);
    - [REPRO_MONTHS] — comma-separated month labels (default: all ten);
    - [REPRO_SEED]   — generator seed (default 42).

    Traces and simulation runs are memoized per process so that every
    figure sharing a (month, load, policy, estimator) combination pays
    for it once. *)

type load = Original | Rho of float

val load_label : load -> string

val scale : unit -> float
val seed : unit -> int
val months : unit -> Workload.Month_profile.t list

val trace : Workload.Month_profile.t -> load -> Workload.Trace.t
(** Generated (and, for [Rho r], load-scaled) trace; memoized. *)

val simulate :
  policy_key:string ->
  policy:(unit -> Sched.Policy.t) ->
  r_star:Sim.Engine.r_star ->
  Workload.Month_profile.t ->
  load ->
  Sim.Run.t
(** Memoized simulation.  [policy_key] must uniquely identify the
    policy configuration; [policy] is forced only on a cache miss. *)

val fcfs_run :
  r_star:Sim.Engine.r_star -> Workload.Month_profile.t -> load -> Sim.Run.t
(** The month's FCFS-backfill run (the reference for excessive-wait
    thresholds). *)

val fcfs_max_threshold :
  r_star:Sim.Engine.r_star -> Workload.Month_profile.t -> load -> float
(** FCFS-backfill maximum wait of the month, seconds. *)

val fcfs_p98_threshold :
  r_star:Sim.Engine.r_star -> Workload.Month_profile.t -> load -> float
(** FCFS-backfill 98th-percentile wait of the month, seconds. *)

val dds_lxf_dynb : budget:int -> unit -> Sched.Policy.t
(** Fresh instance of the paper's headline policy. *)

val search_policy : Core.Search_policy.config -> unit -> Sched.Policy.t

val section : Format.formatter -> id:string -> string -> unit
(** Print a section banner. *)

val row_header : Format.formatter -> string -> unit

val pp_month_columns :
  Format.formatter ->
  months:Workload.Month_profile.t list ->
  rows:(string * (Workload.Month_profile.t -> float)) list ->
  unit
(** Table with one column per month and one line per (label, value)
    row. *)
