(** Shared plumbing for the paper-reproduction experiments.

    Environment knobs (read once at first use):
    - [REPRO_SCALE]  — workload scale factor (default 1.0; smaller
      values shrink both job counts and the time axis, preserving
      load, for CI-sized runs);
    - [REPRO_MONTHS] — comma-separated month labels (default: all ten);
    - [REPRO_SEED]   — generator seed (default 42).

    Traces and simulation runs are memoized per process so that every
    figure sharing a (month, load, policy, estimator) combination pays
    for it once.  The memo tables are domain-safe and compute-once
    ([Simcore.Memo]): concurrent requests for one key force the policy
    thunk and run the simulation exactly once, everyone else blocks on
    the promise.  Figure harnesses enumerate their run sets up front
    and warm the cache through a shared domain pool ([prefetch] /
    [prefetch_runs]); formatting then reads the warm cache
    sequentially, so output is byte-identical for every [jobs]
    setting. *)

type load = Original | Rho of float

val load_label : load -> string

val scale : unit -> float
val seed : unit -> int
val months : unit -> Workload.Month_profile.t list

(** {2 Parallel execution}

    One process-wide domain pool, sized by the [REPRO_JOBS] environment
    variable (or a [-j] flag via [set_jobs]; default:
    [Domain.recommended_domain_count () - 1], at least 1).  [jobs = 1]
    preserves the sequential path exactly: no domain is spawned and
    work runs in submission order in the caller. *)

val jobs : unit -> int
(** The resolved concurrency width. *)

val set_jobs : int -> unit
(** Override the width (clamped to >= 1); shuts down and re-creates
    the shared pool on the next use if the width changed. *)

val pool : unit -> Simcore.Pool.t
(** The shared pool, created on first use. *)

val shutdown_pool : unit -> unit
(** Join the pool's worker domains (recreated on next [pool ()]). *)

val par_iter : ('a -> unit) -> 'a list -> unit
val par_map : ('a -> 'b) -> 'a list -> 'b list
(** Run over the shared pool; [par_map] preserves input order. *)

val prefetch : (unit -> unit) list -> unit
(** Execute a plan — the enumerated run set of a figure — through the
    pool.  Thunks typically force [trace]/[simulate] cache entries;
    the compute-once tables absorb duplicates between overlapping
    plans. *)

val prefetch_runs :
  months:Workload.Month_profile.t list ->
  (string * (Workload.Month_profile.t -> Sim.Run.t)) list ->
  unit
(** [prefetch_runs ~months policies] warms the run cache for the full
    (policy x month) grid of a figure panel. *)

val reset_caches : unit -> unit
(** Drop the trace/run caches and re-read the [REPRO_*] environment
    knobs on next use.  For harnesses that rerun experiments in-process
    (determinism tests, perf measurement); not needed in normal runs. *)

(** {2 Decision tracing}

    When tracing is on, every simulation computed into the run cache
    records a {!Sim.Decision_log.t} (one event per scheduling
    decision) labelled by its cache key.  The exporters below list
    runs in sorted-key order, so their output is byte-identical for
    every [jobs] setting, exactly like rendered experiment output.
    Flip the switch {e before} warming the cache (or after
    [reset_caches]) — already-cached runs stay untraced. *)

val set_tracing : bool -> unit
val tracing : unit -> bool

val traced_runs : unit -> (string * Sim.Decision_log.t) list
(** Cached runs that carry a decision log, sorted by cache key. *)

val pp_traces : Format.formatter -> unit
(** JSONL ([decision_trace/1]) of every traced cached run. *)

val chrome_trace_document : unit -> string
(** One Chrome [{"traceEvents":[...]}] document over every traced
    cached run (one pid per run, simulated-time axis). *)

(** {2 Schedule validation}

    Same switch pattern as tracing: when on, every simulation computed
    into the run cache validates its finished schedule
    ({!Schedcheck.Validator}) — differentially for the EASY backfill
    family (selected by policy name), machine-level invariants for
    everything else — and carries the {!Schedcheck.Report.t} in
    {!Sim.Run.t}.  Flip the switch {e before} warming the cache. *)

val set_validation : bool -> unit
val validation : unit -> bool

val validation_reports : unit -> (string * Schedcheck.Report.t) list
(** Cached runs that carry a validation report, sorted by cache key. *)

(** {2 Run-health series}

    Same switch pattern as tracing: when on, every simulation computed
    into the run cache feeds a bounded {!Sim.Series.t} sampler (one
    run-health observation per decision point) that rides in
    {!Sim.Run.t}.  The exporters list runs in sorted-key order, so
    output is byte-identical for every [jobs] setting.  Flip the
    switch {e before} warming the cache. *)

val set_series : bool -> unit
val series_enabled : unit -> bool

val series_runs : unit -> (string * Sim.Series.t) list
(** Cached runs that carry a run-health series, sorted by cache key. *)

val pp_series : Format.formatter -> unit
(** JSONL ([run_series/1]) of every sampled cached run. *)

val trace : Workload.Month_profile.t -> load -> Workload.Trace.t
(** Generated (and, for [Rho r], load-scaled) trace; memoized. *)

val simulate :
  policy_key:string ->
  policy:(unit -> Sched.Policy.t) ->
  r_star:Sim.Engine.r_star ->
  Workload.Month_profile.t ->
  load ->
  Sim.Run.t
(** Memoized simulation.  [policy_key] must uniquely identify the
    policy configuration; [policy] is forced only on a cache miss. *)

val fcfs_run :
  r_star:Sim.Engine.r_star -> Workload.Month_profile.t -> load -> Sim.Run.t
(** The month's FCFS-backfill run (the reference for excessive-wait
    thresholds). *)

val fcfs_max_threshold :
  r_star:Sim.Engine.r_star -> Workload.Month_profile.t -> load -> float
(** FCFS-backfill maximum wait of the month, seconds. *)

val fcfs_p98_threshold :
  r_star:Sim.Engine.r_star -> Workload.Month_profile.t -> load -> float
(** FCFS-backfill 98th-percentile wait of the month, seconds. *)

val dds_lxf_dynb : budget:int -> unit -> Sched.Policy.t
(** Fresh instance of the paper's headline policy. *)

val search_policy : Core.Search_policy.config -> unit -> Sched.Policy.t

val section : Format.formatter -> id:string -> string -> unit
(** Print a section banner. *)

val row_header : Format.formatter -> string -> unit

val pp_month_columns :
  Format.formatter ->
  months:Workload.Month_profile.t list ->
  rows:(string * (Workload.Month_profile.t -> float)) list ->
  unit
(** Table with one column per month and one line per (label, value)
    row. *)
