(** Figure 5: average wait per job class (actual runtime x requested
    nodes) under each policy, July 2003, rho = 0.9, R* = T. *)

val run : Format.formatter -> unit
