(** Figure 6: impact of the node budget L (1K .. 100K) on
    DDS/lxf/dynB, January 2004, rho = 0.9, R* = T. *)

val run : Format.formatter -> unit

val budgets : unit -> int list
(** The swept budgets; [REPRO_MAXL] truncates the sweep (e.g.
    REPRO_MAXL=10000 drops the 100K point for quick runs). *)
