(** Figure 4: performance comparison under high load (rho = 0.9,
    R* = T; DDS/lxf/dynB uses L = 1K except January 2004 where L = 8K),
    including the excessive-wait panels. *)

val run : Format.formatter -> unit

val budget_for : Workload.Month_profile.t -> int
(** The paper's per-month node budget: 8K for 1/04, 1K otherwise. *)
