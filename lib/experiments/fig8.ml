let load = Common.Rho 0.9

let run fmt =
  Common.section fmt ~id:"fig8"
    "Using inaccurate requested runtimes (R*=R; rho=0.9; L=4K)";
  let months = Common.months () in
  let r_star = Sim.Engine.Requested in
  let policies = Fig3.policies ~load ~r_star ~budget:(fun _ -> 4000) in
  Panels.table fmt ~title:"(a) avg wait (hours)" ~months ~policies
    ~value:Panels.avg_wait_hours;
  Panels.table fmt ~title:"(b) max wait (hours)" ~months ~policies
    ~value:Panels.max_wait_hours;
  Panels.table fmt ~title:"(c) avg bounded slowdown" ~months ~policies
    ~value:Panels.avg_bounded_slowdown;
  Panels.table fmt
    ~title:"(d) total excessive wait w.r.t. FCFS-BF max (hours)" ~months
    ~policies
    ~value:(fun m run ->
      let threshold = Common.fcfs_max_threshold ~r_star m load in
      Metrics.Excess.total_hours (Sim.Run.excess run ~threshold))
