(** Figure 2: sensitivity of DDS/lxf to the fixed target wait bound
    (omega = 50, 100, 300 hours), original load, L = 1K, actual
    runtimes. *)

val run : Format.formatter -> unit
