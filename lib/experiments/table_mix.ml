let normalized_pct arr =
  let sum = Array.fold_left ( +. ) 0.0 arr in
  if sum <= 0.0 then arr else Array.map (fun v -> 100.0 *. v /. sum) arr

let run fmt =
  Common.section fmt ~id:"table3+4"
    "Monthly job mix: generated workload vs published targets";
  Format.fprintf fmt
    "Each month: first line = generated, second = paper target.@.";
  Format.fprintf fmt
    "Columns: node ranges 1 | 2 | 3-4 | 5-8 | 9-16 | 17-32 | 33-64 | 65-128@.";
  let months = Common.months () in
  (* generate all month traces in parallel; the report loops below
     format from the warm trace cache *)
  Common.prefetch
    (List.map
       (fun m () -> ignore (Common.trace m Common.Original : Workload.Trace.t))
       months);
  Format.fprintf fmt "@.--- Table 3: %% of jobs per node-size range ---@.";
  List.iter
    (fun m ->
      let mix =
        Workload.Mix_report.of_trace ~capacity:Workload.Month_profile.capacity
          (Common.trace m Common.Original)
      in
      let label = m.Workload.Month_profile.label in
      Format.fprintf fmt "%-6s gen  n=%5d load=%3.0f%% |" label
        mix.Workload.Mix_report.n_jobs
        (100.0 *. mix.Workload.Mix_report.load);
      Array.iter (fun v -> Format.fprintf fmt " %5.1f" v)
        mix.Workload.Mix_report.jobs8;
      Format.fprintf fmt "@.%-6s tgt  n=%5.0f load=%3.0f%% |" label
        (float_of_int m.Workload.Month_profile.n_jobs *. Common.scale ())
        (100.0 *. m.Workload.Month_profile.load);
      Array.iter (fun v -> Format.fprintf fmt " %5.1f" v)
        (normalized_pct m.Workload.Month_profile.jobs8);
      Format.fprintf fmt "@.")
    months;
  Format.fprintf fmt "@.--- Table 3: %% of processor demand per range ---@.";
  List.iter
    (fun m ->
      let mix =
        Workload.Mix_report.of_trace ~capacity:Workload.Month_profile.capacity
          (Common.trace m Common.Original)
      in
      let label = m.Workload.Month_profile.label in
      Format.fprintf fmt "%-6s gen |" label;
      Array.iter (fun v -> Format.fprintf fmt " %5.1f" v)
        mix.Workload.Mix_report.demand8;
      Format.fprintf fmt "@.%-6s tgt |" label;
      Array.iter (fun v -> Format.fprintf fmt " %5.1f" v)
        (normalized_pct m.Workload.Month_profile.demand8);
      Format.fprintf fmt "@.")
    months;
  Format.fprintf fmt
    "@.--- Table 4: %% of all jobs, T<=1h and T>5h, per node class ---@.";
  Format.fprintf fmt "Columns: node classes 1 | 2 | 3-8 | 9-32 | 33-128@.";
  List.iter
    (fun m ->
      let mix =
        Workload.Mix_report.of_trace ~capacity:Workload.Month_profile.capacity
          (Common.trace m Common.Original)
      in
      let label = m.Workload.Month_profile.label in
      let pair name gen tgt =
        Format.fprintf fmt "%-6s %s gen |" label name;
        Array.iter (fun v -> Format.fprintf fmt " %5.1f" v) gen;
        Format.fprintf fmt "   tgt |";
        Array.iter (fun v -> Format.fprintf fmt " %5.1f" v) tgt;
        Format.fprintf fmt "@."
      in
      pair "T<=1h" mix.Workload.Mix_report.short5
        m.Workload.Month_profile.short5;
      pair "T>5h " mix.Workload.Mix_report.long5 m.Workload.Month_profile.long5)
    months;
  Format.fprintf fmt
    "@.--- Arrival modulation (generated; diurnal peak/trough and weekend/weekday ratios) ---@.";
  List.iter
    (fun m ->
      let stats =
        Workload.Arrival_stats.of_trace (Common.trace m Common.Original)
      in
      Format.fprintf fmt "%-6s peak/trough %5.2f  weekend/weekday %5.2f@."
        m.Workload.Month_profile.label
        (Workload.Arrival_stats.peak_to_trough stats)
        (Workload.Arrival_stats.weekend_weekday_ratio stats))
    months
