(** Textual policy specifications for the command-line tools.

    Grammar (case-insensitive):
    - backfill family: ["fcfs-bf"], ["lxf-bf"], ["sjf-bf"],
      ["lxfw-bf"], ["conservative"], ["selective"], ["run-now"];
    - search family: ["ALGO/HEUR/BOUND"], e.g. ["dds/lxf/dynb"],
      ["lds/fcfs/w=50"] (fixed bound in hours), ["dds/lxf/rt=1:2"]
      (runtime-scaled bound: floor hours and factor).  Suffix options
      ["+bnb"] (pruning), ["+ls"] (local search) and ["+fair"]
      (fairshare thresholds, penalty 2.0) may be appended.

    The node budget L comes from the separate [~budget] argument. *)

val parse : budget:int -> string -> (Sched.Policy.t, string) result

val known : string list
(** Example specs for help output. *)
