let load = Common.Rho 0.9
let r_star = Sim.Engine.Actual

let runs_for months =
  let policies = Fig3.policies ~load ~r_star ~budget:Fig4.budget_for in
  Common.prefetch_runs ~months policies;
  let get name =
    match List.assoc_opt name policies with
    | Some runner -> List.map (fun m -> (m, runner m)) months
    | None -> invalid_arg ("Claims.runs_for: " ^ name)
  in
  (get "FCFS-backfill", get "LXF-backfill", get "DDS/lxf/dynB")

(* how many months satisfy [p] *)
let count_months runs p = List.length (List.filter p runs)

let agg (run : Sim.Run.t) = run.Sim.Run.aggregate
let max_wait r = (agg r).Metrics.Aggregate.max_wait
let avg_wait r = (agg r).Metrics.Aggregate.avg_wait
let slowdown r = (agg r).Metrics.Aggregate.avg_bounded_slowdown

let total_excess_vs_fcfs_max m r =
  let threshold = Common.fcfs_max_threshold ~r_star m load in
  (Sim.Run.excess r ~threshold).Metrics.Excess.total

let evaluate () =
  let months = Common.months () in
  let n = List.length months in
  let fcfs, lxf, dds = runs_for months in
  let paired a b = List.combine a b in
  let most = max 1 (n - 2) in
  [
    ( "LXF-backfill beats FCFS-backfill on avg bounded slowdown (most months)",
      count_months (paired fcfs lxf) (fun ((_, f), (_, l)) ->
          slowdown l < slowdown f)
      >= most );
    ( "FCFS-backfill max wait below LXF-backfill's (most months)",
      count_months (paired fcfs lxf) (fun ((_, f), (_, l)) ->
          max_wait f <= max_wait l +. 1.0)
      >= most );
    ( "DDS/lxf/dynB max wait within 1.10x of FCFS-backfill (most months)",
      count_months (paired fcfs dds) (fun ((_, f), (_, d)) ->
          max_wait d <= 1.10 *. max_wait f)
      >= most );
    ( "DDS/lxf/dynB avg wait below FCFS-backfill's (most months)",
      count_months (paired fcfs dds) (fun ((_, f), (_, d)) ->
          avg_wait d < avg_wait f)
      >= most );
    ( "DDS/lxf/dynB slowdown much closer to LXF than FCFS (most months)",
      count_months (paired (paired fcfs lxf) dds)
        (fun (((_, f), (_, l)), (_, d)) ->
          slowdown f -. slowdown d > slowdown d -. slowdown l)
      >= most );
    ( "DDS/lxf/dynB total excess w.r.t. FCFS max is ~zero (most months)",
      count_months dds (fun (m, d) ->
          total_excess_vs_fcfs_max m d < 5.0 *. Simcore.Units.hour)
      >= most );
    ( "LXF-backfill strands jobs beyond FCFS's max wait (most months)",
      count_months lxf (fun (m, l) ->
          total_excess_vs_fcfs_max m l > Simcore.Units.hour)
      >= most );
  ]

let run fmt =
  Common.section fmt ~id:"claims"
    "Automated shape checks of the paper's key findings (rho=0.9; R*=T)";
  let results = evaluate () in
  List.iter
    (fun (claim, ok) ->
      Format.fprintf fmt "[%s] %s@." (if ok then "PASS" else "FAIL") claim)
    results;
  let passed = List.length (List.filter snd results) in
  Format.fprintf fmt "%d/%d claims hold@." passed (List.length results)
