(** Backlog dynamics (extension of Figure 4(d)).

    The paper reports the month-average queue length; this experiment
    prints the *daily* average queue length per policy for the hardest
    month (1/04), exposing how each policy drains (or accumulates) a
    backlog wave over time. *)

val run : Format.formatter -> unit
