let pp_path fmt path =
  Format.fprintf fmt "0";
  (* print 1-based job numbers as in the paper's figure *)
  List.iter (fun i -> Format.fprintf fmt "-%d" (i + 1)) path

let pp_iteration fmt algo ~n ~iteration =
  let paths = Core.Tree_enum.paths_in_iteration algo ~n ~iteration in
  Format.fprintf fmt "  %s iteration %d (%d paths):@."
    (String.uppercase_ascii (Core.Search.algorithm_name algo))
    iteration (List.length paths);
  List.iter (fun p -> Format.fprintf fmt "    %a@." pp_path p) paths

let run fmt =
  Common.section fmt ~id:"fig1"
    "Search tree: LDS and DDS visit orders (4 jobs) and tree sizes";
  Format.fprintf fmt "Figure 1(a)-(c): LDS@.";
  List.iter
    (fun k -> pp_iteration fmt Core.Search.Lds ~n:4 ~iteration:k)
    [ 0; 1; 2 ];
  Format.fprintf fmt "Figure 1(a),(e),(f): DDS@.";
  List.iter
    (fun i -> pp_iteration fmt Core.Search.Dds ~n:4 ~iteration:i)
    [ 0; 1; 2 ];
  Format.fprintf fmt "@.Figure 1(d): tree size vs number of waiting jobs@.";
  Format.fprintf fmt "  %8s %18s %18s@." "# jobs" "# paths" "# nodes";
  List.iter
    (fun n ->
      Format.fprintf fmt "  %8d %18.4g %18.4g@." n
        (Core.Tree_enum.path_count ~n)
        (Core.Tree_enum.node_count ~n))
    [ 1; 2; 3; 4; 10; 15 ]
