let budgets = [ 60; 125; 250; 500; 1000; 2000; 4000; 8000 ]
let seeds = List.init 20 (fun i -> 500 + i)

let algorithms =
  [
    (Core.Search.Dds, "DDS");
    (Core.Search.Lds, "LDS");
    (Core.Search.Lds_original, "LDS0");
    (Core.Search.Dfs, "DFS");
  ]

let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let run fmt =
  Common.section fmt ~id:"anytime"
    "Anytime search quality on 30-job decision points (mean over 20 states)";
  (* mean objective of the heuristic path alone, as the baseline *)
  let heuristic_excess =
    mean
      (Common.par_map
         (fun seed ->
           let state = Overhead.synthetic_state ~seed () in
           let r = Core.Search.run Core.Search.Dds ~budget:1 state in
           Simcore.Units.to_hours r.Core.Search.best.Core.Objective.excess)
         seeds)
  in
  Format.fprintf fmt
    "heuristic path alone: mean total excess %.1f h (budget too small to improve)@."
    heuristic_excess;
  Format.fprintf fmt "@.mean total excess (hours) of best schedule found:@.";
  Format.fprintf fmt "%-8s" "algo";
  List.iter (fun b -> Format.fprintf fmt " %8d" b) budgets;
  Format.pp_print_newline fmt ();
  let excess_of (algo, budget, seed) =
    let state = Overhead.synthetic_state ~seed () in
    let r = Core.Search.run algo ~budget state in
    Simcore.Units.to_hours r.Core.Search.best.Core.Objective.excess
  in
  (* every (algo, budget, seed) search is independent: one flat plan
     over the pool, means folded per (algo, budget) cell afterwards *)
  let grid =
    List.concat_map
      (fun (algo, _) ->
        List.map (fun budget -> (algo, budget)) budgets)
      algorithms
  in
  let cells =
    Common.par_map
      (fun (algo, budget) ->
        mean (List.map (fun seed -> excess_of (algo, budget, seed)) seeds))
      grid
  in
  let value =
    let table = List.combine grid cells in
    fun algo budget -> List.assoc (algo, budget) table
  in
  List.iter
    (fun (algo, name) ->
      Format.fprintf fmt "%-8s" name;
      List.iter
        (fun budget -> Format.fprintf fmt " %8.1f" (value algo budget))
        budgets;
      Format.pp_print_newline fmt ())
    algorithms;
  Format.fprintf fmt
    "@.(lower is better; every algorithm starts from the same heuristic path,@.\
    \ so differences are purely in which discrepancies each explores first.@.\
    \ Note: on isolated decision points LDS's deep, local swaps often pay@.\
    \ off sooner, yet end-to-end DDS yields lower total excessive wait --@.\
    \ see fig7 -- because closed-loop scheduling compounds decisions; this@.\
    \ is exactly the paper's 'heuristic dominates algorithm' observation.)@."
