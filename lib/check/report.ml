type violation = {
  invariant : string;
  time : float;
  jobs : int list;
  detail : string;
}

type t = {
  subject : string;
  jobs_checked : int;
  decisions_checked : int;
  violations : violation list;
}

let ok t = t.violations = []

let v ~subject ~jobs_checked ~decisions_checked violations =
  { subject; jobs_checked; decisions_checked; violations }

let pp_violation fmt v =
  Format.fprintf fmt "[%s] t=%.0f jobs=[%s]: %s" v.invariant v.time
    (String.concat "," (List.map string_of_int v.jobs))
    v.detail

let summary t =
  Printf.sprintf "%s: %d jobs, %d decisions, %d violations" t.subject
    t.jobs_checked t.decisions_checked
    (List.length t.violations)

let pp fmt t =
  Format.fprintf fmt "%s" (summary t);
  List.iter (fun v -> Format.fprintf fmt "@.  %a" pp_violation v) t.violations
