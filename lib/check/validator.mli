(** Schedule validator: machine-level invariants by replay.

    Given a trace and the per-job outcomes a simulation produced, the
    validator replays the schedule and checks that it is {e legal} —
    independent of the policy that produced it — and, for the EASY
    backfill family, that it is the schedule the reference
    implementation would have produced (a differential replay).

    Invariant inventory (the [invariant] field of each violation):

    Generic (every expectation):
    - ["job-completeness"]: every trace job has exactly one outcome,
      and no outcome is for an unknown job;
    - ["job-fits-machine"]: no job is wider than the machine;
    - ["start-after-submit"]: no job starts before its arrival;
    - ["exact-runtime"]: a started job holds its nodes for exactly
      [min(T, R)] seconds — non-preemption, no early kill, no overrun;
    - ["capacity"]: instantaneous node usage never exceeds machine
      capacity (releases at an instant free nodes for starts at the
      same instant, matching the engine's event draining);
    - ["start-at-decision-point"]: every start happens at a scheduling
      decision point (a job arrival or departure) — the paper's
      decision model.

    [Easy_backfill] additionally replays {!Sched.Backfill.plan} at
    every decision point with a reconstructed context and checks:
    - ["backfill-differential"]: the jobs started at each decision are
      exactly the reference plan's start-now set, {e in the same
      order} — which subsumes FIFO ordering of equal-priority ties
      under fcfs;
    - ["easy-reservation-monotone"] (fcfs priority only): a reserved
      job's promised start never slips later across decisions (sound
      because fcfs order is stable and the estimates the profile is
      built from never under-estimate);
    - ["easy-reservation-bound"] (fcfs priority only): no reserved job
      starts later than its promised start — the one-reservation EASY
      guarantee Dutot & Mounié's bi-criteria analysis relies on;
    - ["replay-failed"]: the differential replay itself raised (a
      schedule so malformed the running set rejects it) — reported as
      a violation rather than escaping as an exception.

    The replay runs only when every generic invariant passed: an
    illegal schedule cannot be reconstructed faithfully, and the
    generic violations already locate the fault.

    The replay reconstructs contexts exactly as {!Sim.Engine} builds
    them (same event order, same 1 ns same-instant drain window), so
    on a faithful run the differential comparison is bit-exact.  The
    stateful [R* = pred] estimator cannot be replayed after the fact;
    callers must downgrade to [Generic] for predicted runtimes (the
    engine wiring does). *)

type expectation =
  | Generic  (** machine-level invariants only *)
  | Easy_backfill of { reservations : int; priority : Sched.Priority.t }
      (** also replay the EASY backfill engine differentially *)

val expectation_of_policy : string -> expectation
(** Derive the expectation from a policy name: ["FCFS-backfill"],
    ["LXF-backfill"], ["SJF-backfill"] (optionally with a ["/res=K"]
    suffix) map to [Easy_backfill]; everything else — search policies,
    conservative/selective/lookahead variants, unknown names — maps to
    [Generic]. *)

val validate :
  ?machine:Cluster.Machine.t ->
  ?expect:expectation ->
  ?r_star:(Workload.Job.t -> float) ->
  subject:string ->
  trace:Workload.Trace.t ->
  outcomes:Metrics.Outcome.t list ->
  unit ->
  Report.t
(** [validate ~trace ~outcomes ()] checks the schedule described by
    [outcomes] (every job of the trace, chronological start order or
    any stable order — the validator sorts stably by start time)
    against the invariants above.  [machine] defaults to
    {!Cluster.Machine.titan}; [expect] to [Generic]; [r_star] — the
    scheduler-visible runtime used to rebuild availability profiles
    during differential replay — to actual runtimes
    ([min(T, R)], the engine's [R* = T]). *)
