(** Differential oracles: independent re-implementations to test the
    optimized subsystems against.

    Each oracle is deliberately naive — small enough to audit by eye —
    and structurally different from the implementation it checks:

    - {!enumerate_best} re-derives the optimal schedule objective by
      evaluating {e every} job order with a fresh placement per path,
      against which {!Core.Search}'s complete algorithms (DFS, LDS,
      DDS) must agree exactly when exhausted;
    - {!reference_backfill} re-plans an EASY backfill decision on a
      plain busy-interval list (no availability profile, no segment
      merging), against which {!Sched.Backfill.plan} must agree
      exactly;
    - the trail-vs-snapshot profile oracle lives in
      {!Core.Search_state} itself (the [Snapshot] backtracking
      strategy); the qcheck suites drive both strategies over
      randomized workloads and compare visit sequences.

    The qcheck suites in [test/test_check.ml] wire these to random
    workload generators. *)

val enumerate_best : Core.Search_state.t -> Core.Objective.t
(** Best objective over all [n!] complete job orders, evaluated one
    path at a time through {!Core.Tree_enum.all_paths}.  The state is
    reset before and after.  Intended for tiny queues.
    @raise Invalid_argument if the state has no jobs or more than 8
    (factorial blow-up). *)

type reference_plan = {
  start_now : Workload.Job.t list;  (** decision order, like the real plan *)
  reserved : (Workload.Job.t * float) list;
}

val reference_backfill :
  reservations:int ->
  priority:Sched.Priority.t ->
  Sched.Policy.context ->
  reference_plan
(** Same contract as {!Sched.Backfill.plan}, computed naively: node
    usage is a list of busy [(from, until, nodes)] intervals (running
    jobs and carved reservations); a job fits at [t] iff at every
    interval boundary within its span the summed overlap leaves enough
    free nodes; the earliest start is found by trying [now] and every
    interval boundary in increasing order.  Candidate starts are
    boundaries in both implementations, so agreement is exact (same
    floats), not approximate. *)
