let sprintf = Printf.sprintf

(* The engine treats events within 1 ns of the first popped event as
   simultaneous (Engine.drain_instant); the replay must group identically
   or differential comparison sees phantom decisions. *)
let drain_window = 1e-9

(* Comparison slack for derived quantities (durations, promised starts).
   Start/finish times themselves are compared through [drain_window]
   because the engine computes them by pure addition. *)
let tol = 1e-6

type expectation =
  | Generic
  | Easy_backfill of { reservations : int; priority : Sched.Priority.t }

let expectation_of_policy name =
  let name = String.lowercase_ascii name in
  let base, reservations =
    match String.index_opt name '/' with
    | Some i
      when String.length name >= i + 6
           && String.sub name (i + 1) 4 = "res=" -> (
        let k = String.sub name (i + 5) (String.length name - i - 5) in
        match int_of_string_opt k with
        | Some r when r >= 1 -> (String.sub name 0 i, Some r)
        | _ -> (name, None))
    | _ -> (name, Some 1)
  in
  match (reservations, base) with
  | Some reservations, "fcfs-backfill" ->
      Easy_backfill { reservations; priority = Sched.Priority.fcfs }
  | Some reservations, "lxf-backfill" ->
      Easy_backfill { reservations; priority = Sched.Priority.lxf }
  | Some reservations, "sjf-backfill" ->
      Easy_backfill { reservations; priority = Sched.Priority.sjf }
  | _ -> Generic

(* Replay events, exactly the engine's two kinds. *)
type event = Arrive of Workload.Job.t | Depart of Metrics.Outcome.t

let pp_ids ids = String.concat "," (List.map string_of_int ids)

let validate ?(machine = Cluster.Machine.titan) ?(expect = Generic)
    ?(r_star =
      fun (j : Workload.Job.t) -> Float.min j.runtime j.requested)
    ~subject ~trace ~(outcomes : Metrics.Outcome.t list) () =
  let capacity = machine.Cluster.Machine.nodes in
  let violations = ref [] in
  let violate invariant ~time ~jobs detail =
    violations := { Report.invariant; time; jobs; detail } :: !violations
  in
  let jobs = Workload.Trace.jobs trace in
  (* --- job-completeness: trace jobs <-> outcomes is a bijection --- *)
  let by_id = Hashtbl.create (List.length outcomes) in
  List.iter
    (fun (o : Metrics.Outcome.t) ->
      let id = o.job.Workload.Job.id in
      if Hashtbl.mem by_id id then
        violate "job-completeness" ~time:o.start ~jobs:[ id ]
          "job has more than one outcome"
      else Hashtbl.add by_id id o)
    outcomes;
  let in_trace = Hashtbl.create (Array.length jobs) in
  Array.iter
    (fun (j : Workload.Job.t) ->
      Hashtbl.replace in_trace j.id ();
      if not (Hashtbl.mem by_id j.id) then
        violate "job-completeness" ~time:j.submit ~jobs:[ j.id ]
          "trace job has no outcome")
    jobs;
  List.iter
    (fun (o : Metrics.Outcome.t) ->
      if not (Hashtbl.mem in_trace o.job.id) then
        violate "job-completeness" ~time:o.start ~jobs:[ o.job.id ]
          "outcome for a job that is not in the trace")
    outcomes;
  (* --- per-outcome invariants --- *)
  List.iter
    (fun (o : Metrics.Outcome.t) ->
      let j = o.job in
      if j.nodes > capacity then
        violate "job-fits-machine" ~time:o.start ~jobs:[ j.id ]
          (sprintf "needs %d nodes on a %d-node machine" j.nodes capacity);
      if o.start < j.submit -. drain_window then
        violate "start-after-submit" ~time:o.start ~jobs:[ j.id ]
          (sprintf "started %.3f s before its submission" (j.submit -. o.start));
      let duration = Float.min j.runtime j.requested in
      if Float.abs (o.finish -. o.start -. duration) > tol then
        violate "exact-runtime" ~time:o.start ~jobs:[ j.id ]
          (sprintf "held its nodes for %.3f s, expected min(T, R) = %.3f s"
             (o.finish -. o.start) duration))
    outcomes;
  (* --- capacity: sweep node-usage deltas; at equal times releases
     (negative deltas) apply before acquisitions, as the engine drains
     all departures before deciding. --- *)
  let deltas =
    List.concat_map
      (fun (o : Metrics.Outcome.t) ->
        [
          (o.start, o.job.Workload.Job.nodes, o.job.id);
          (o.finish, -o.job.Workload.Job.nodes, o.job.id);
        ])
      outcomes
    |> List.sort (fun (t1, d1, _) (t2, d2, _) ->
           match Float.compare t1 t2 with 0 -> compare d1 d2 | c -> c)
  in
  let (_ : int) =
    List.fold_left
      (fun used (time, delta, id) ->
        let used = used + delta in
        if delta > 0 && used > capacity then
          violate "capacity" ~time ~jobs:[ id ]
            (sprintf "%d nodes in use on a %d-node machine" used capacity);
        used)
      0 deltas
  in
  (* --- decision points: arrivals and departures, grouped as the
     engine's drain loop groups them. --- *)
  let n = Array.length jobs in
  let events =
    let arrivals =
      Array.to_list
        (Array.mapi
           (fun i (j : Workload.Job.t) -> (j.submit, i, Arrive j))
           jobs)
    in
    let departures =
      List.mapi
        (fun i (o : Metrics.Outcome.t) -> (o.finish, n + i, Depart o))
        outcomes
    in
    List.sort
      (fun (t1, s1, _) (t2, s2, _) ->
        match Float.compare t1 t2 with 0 -> compare s1 s2 | c -> c)
      (arrivals @ departures)
  in
  let groups =
    List.fold_left
      (fun acc (t, _, e) ->
        match acc with
        | (leader, es) :: rest when t <= leader +. drain_window ->
            (leader, e :: es) :: rest
        | _ -> (t, [ e ]) :: acc)
      [] events
    |> List.rev_map (fun (leader, es) -> (leader, List.rev es))
  in
  let decisions = List.length groups in
  let leaders = Array.of_list (List.map fst groups) in
  (* start-at-decision-point: every start time must be the leader time of
     some decision group. *)
  let starts_at_leader s =
    let m = Array.length leaders in
    if m = 0 then false
    else
      let rec bs lo hi =
        if hi - lo <= 1 then lo
        else
          let mid = (lo + hi) / 2 in
          if leaders.(mid) <= s then bs mid hi else bs lo mid
      in
      let i = bs 0 m in
      Float.abs (leaders.(i) -. s) <= drain_window
      || (i + 1 < m && Float.abs (leaders.(i + 1) -. s) <= drain_window)
  in
  List.iter
    (fun (o : Metrics.Outcome.t) ->
      if not (starts_at_leader o.start) then
        violate "start-at-decision-point" ~time:o.start ~jobs:[ o.job.id ]
          "started between decision points (no arrival or departure there)")
    outcomes;
  let legal = !violations = [] in
  (* --- differential replay of the EASY backfill engine --- *)
  (match expect with
  | Generic -> ()
  | Easy_backfill _ when not legal ->
      (* An illegal schedule cannot be replayed faithfully (the running
         set would reject it); the generic violations already tell the
         story. *)
      ()
  | Easy_backfill { reservations; priority } -> (
      let track_promises = priority.Sched.Priority.name = "fcfs" in
      let running = Cluster.Running_set.create ~machine in
      let waiting = ref [] in
      let promises : (int, float) Hashtbl.t = Hashtbl.create 64 in
      let started =
        Array.of_list
          (List.stable_sort
             (fun (a : Metrics.Outcome.t) (b : Metrics.Outcome.t) ->
               Float.compare a.start b.start)
             outcomes)
      in
      let cursor = ref 0 in
      try
        List.iter
          (fun (now, es) ->
            List.iter
              (function
                | Arrive j -> waiting := !waiting @ [ j ]
                | Depart (o : Metrics.Outcome.t) ->
                    let (_ : Cluster.Running_set.entry) =
                      Cluster.Running_set.remove running ~id:o.job.id
                    in
                    ())
              es;
            let ctx =
              { Sched.Policy.now; waiting = !waiting; running; r_star }
            in
            let plan = Sched.Backfill.plan ~reservations ~priority ctx in
            let actual = ref [] in
            while
              !cursor < Array.length started
              && started.(!cursor).Metrics.Outcome.start <= now +. drain_window
            do
              actual := started.(!cursor) :: !actual;
              incr cursor
            done;
            let actual = List.rev !actual in
            let planned_ids =
              List.map
                (fun (j : Workload.Job.t) -> j.id)
                plan.Sched.Backfill.start_now
            in
            let actual_ids =
              List.map (fun (o : Metrics.Outcome.t) -> o.job.id) actual
            in
            if planned_ids <> actual_ids then
              violate "backfill-differential" ~time:now
                ~jobs:(List.sort_uniq compare (planned_ids @ actual_ids))
                (sprintf "reference plan starts [%s], schedule starts [%s]"
                   (pp_ids planned_ids) (pp_ids actual_ids));
            if track_promises then
              List.iter
                (fun ((j : Workload.Job.t), promised) ->
                  match Hashtbl.find_opt promises j.id with
                  | None -> Hashtbl.replace promises j.id promised
                  | Some p ->
                      if promised > p +. tol then
                        violate "easy-reservation-monotone" ~time:now
                          ~jobs:[ j.id ]
                          (sprintf
                             "promised start slipped from %.3f to %.3f" p
                             promised);
                      Hashtbl.replace promises j.id (Float.min p promised))
                plan.Sched.Backfill.reserved;
            List.iter
              (fun (o : Metrics.Outcome.t) ->
                let j = o.job in
                waiting :=
                  List.filter
                    (fun (w : Workload.Job.t) -> w.id <> j.id)
                    !waiting;
                Cluster.Running_set.add running
                  {
                    job = j;
                    start = o.start;
                    finish = o.finish;
                    est_finish = o.start +. r_star j;
                  };
                if track_promises then
                  match Hashtbl.find_opt promises j.id with
                  | None -> ()
                  | Some p ->
                      if o.start > p +. tol then
                        violate "easy-reservation-bound" ~time:now
                          ~jobs:[ j.id ]
                          (sprintf
                             "reserved job started %.3f s after its \
                              promised start %.3f"
                             (o.start -. p) p);
                      Hashtbl.remove promises j.id)
              actual)
          groups
      with exn ->
        violate "replay-failed" ~time:0.0 ~jobs:[]
          (sprintf "differential replay raised: %s" (Printexc.to_string exn))));
  Report.v ~subject ~jobs_checked:(List.length outcomes)
    ~decisions_checked:decisions
    (List.rev !violations)
