let enumerate_best state =
  let n = Core.Search_state.job_count state in
  if n < 1 || n > 8 then
    invalid_arg (Printf.sprintf "Oracle.enumerate_best: %d jobs" n);
  Core.Search_state.reset state;
  let best = ref None in
  List.iter
    (fun path ->
      List.iteri
        (fun depth job -> Core.Search_state.place state ~depth ~job)
        path;
      let obj = Core.Search_state.leaf_objective state in
      (match !best with
      | None -> best := Some obj
      | Some incumbent ->
          if Core.Objective.is_better ~candidate:obj ~incumbent then
            best := Some obj);
      Core.Search_state.reset state)
    (Core.Tree_enum.all_paths Core.Search.Dfs ~n);
  Option.get !best

type reference_plan = {
  start_now : Workload.Job.t list;
  reserved : (Workload.Job.t * float) list;
}

(* Busy intervals [(from, until, nodes)], half-open [from, until). *)

let reference_backfill ~reservations ~priority (ctx : Sched.Policy.context) =
  let capacity =
    (Cluster.Running_set.machine ctx.running).Cluster.Machine.nodes
  in
  let now = ctx.now in
  let intervals =
    ref
      (List.map
         (fun (release, nodes) -> (now, release, nodes))
         (Cluster.Running_set.releases ctx.running ~now))
  in
  let used_at t =
    List.fold_left
      (fun acc (from, until, nodes) ->
        if from <= t && t < until then acc + nodes else acc)
      0 !intervals
  in
  (* Usage is a step function changing only at interval boundaries, so
     checking [at] plus every boundary inside the span is exhaustive. *)
  let fits ~at ~duration ~nodes =
    let until = at +. duration in
    used_at at + nodes <= capacity
    && List.for_all
         (fun (from, til, _) ->
           (not (at < from && from < until) || used_at from + nodes <= capacity)
           && (not (at < til && til < until) || used_at til + nodes <= capacity))
         !intervals
  in
  let earliest_start ~duration ~nodes =
    let candidates =
      now
      :: List.concat_map (fun (from, until, _) -> [ from; until ]) !intervals
      |> List.filter (fun t -> t >= now)
      |> List.sort_uniq Float.compare
    in
    List.find (fun t -> fits ~at:t ~duration ~nodes) candidates
  in
  let ordered =
    List.stable_sort
      (priority.Sched.Priority.compare ~now ~r_star:ctx.r_star)
      ctx.waiting
  in
  let remaining = ref reservations in
  let start_now = ref [] in
  let reserved = ref [] in
  List.iter
    (fun (j : Workload.Job.t) ->
      let duration = Float.max (ctx.r_star j) 1.0 in
      if fits ~at:now ~duration ~nodes:j.nodes then begin
        intervals := (now, now +. duration, j.nodes) :: !intervals;
        start_now := j :: !start_now
      end
      else if !remaining > 0 then begin
        let s = earliest_start ~duration ~nodes:j.nodes in
        intervals := (s, s +. duration, j.nodes) :: !intervals;
        reserved := (j, s) :: !reserved;
        decr remaining
      end)
    ordered;
  { start_now = List.rev !start_now; reserved = List.rev !reserved }
