(** Structured invariant-violation reports.

    Every check in this library renders its findings as a {!t}: which
    schedule was validated, how much of it was covered, and one
    {!violation} per broken invariant — the invariant's name, the
    decision time at which it was detected, and the offending job ids.
    Reports are plain data so callers decide the severity: the CLI
    prints them and exits non-zero, the bench harness aggregates them
    across the run cache, tests assert on individual fields. *)

type violation = {
  invariant : string;
      (** stable identifier, e.g. ["capacity"], ["start-after-submit"],
          ["exact-runtime"], ["backfill-differential"],
          ["easy-reservation-bound"] (see {!Validator} for the full
          inventory) *)
  time : float;  (** simulated decision time of the detection, seconds *)
  jobs : int list;  (** offending job ids (may be empty) *)
  detail : string;  (** human-readable specifics *)
}

type t = {
  subject : string;  (** what was validated, e.g. the policy name *)
  jobs_checked : int;  (** outcomes examined *)
  decisions_checked : int;  (** decision points replayed *)
  violations : violation list;  (** detection order *)
}

val ok : t -> bool
(** No violations. *)

val v :
  subject:string ->
  jobs_checked:int ->
  decisions_checked:int ->
  violation list ->
  t

val pp_violation : Format.formatter -> violation -> unit
(** One line: [[invariant] t=<time> jobs=[..]: detail]. *)

val pp : Format.formatter -> t -> unit
(** Header line plus one line per violation. *)

val summary : t -> string
(** The header line alone, e.g.
    ["FCFS-backfill: 40 jobs, 78 decisions, 0 violations"]. *)
