(** Per-job scheduling outcome.

    The simulator produces one outcome per completed job; every
    reported measure in the paper derives from these records. *)

type t = {
  job : Workload.Job.t;
  start : float;  (** time the job began executing *)
  finish : float;  (** time the job completed *)
}

val v : job:Workload.Job.t -> start:float -> finish:float -> t
(** @raise Invalid_argument unless [submit <= start < finish]. *)

val wait : t -> float
(** Queueing delay, seconds. *)

val turnaround : t -> float
(** Submit-to-completion time, seconds. *)

val slowdown : t -> float
(** Turnaround divided by actual runtime. *)

val bounded_slowdown : t -> float
(** The paper's measure: actual runtime is lower-bounded by one minute,
    so very short jobs do not blow up the average.  For a job with
    T <= 1 min this equals [1 + wait in minutes]. *)

val excess_wait : t -> threshold:float -> float
(** Wait time in excess of [threshold] (>= 0), seconds. *)

val pp : Format.formatter -> t -> unit
