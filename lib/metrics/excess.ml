type t = { threshold : float; total : float; count : int; average : float }

let compute ~threshold outcomes =
  let total, count =
    List.fold_left
      (fun (total, count) o ->
        let e = Outcome.excess_wait o ~threshold in
        if e > 0.0 then (total +. e, count + 1) else (total, count))
      (0.0, 0) outcomes
  in
  let average = if count = 0 then 0.0 else total /. float_of_int count in
  { threshold; total; count; average }

let total_hours t = Simcore.Units.to_hours t.total
let average_hours t = Simcore.Units.to_hours t.average
