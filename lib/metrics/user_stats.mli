(** Per-user performance and fairness measures (for the fairshare
    extension).

    Aggregates outcomes by submitting user and summarizes how evenly
    service quality is spread with Jain's fairness index over the
    per-user average bounded slowdowns: 1.0 = perfectly even,
    [1/n] = one user gets everything. *)

type t

val compute : Outcome.t list -> t
(** Jobs with user [<= 0] are ignored. *)

val user_count : t -> int
val users : t -> int list
(** Users sorted by descending processor demand. *)

val job_count : t -> user:int -> int
val demand_share : t -> user:int -> float
(** The user's fraction of total node-seconds demand. *)

val avg_wait : t -> user:int -> float
val avg_bounded_slowdown : t -> user:int -> float

val jain_index : t -> float
(** Jain's index over per-user average bounded slowdowns; 0 when there
    are no users. *)

val pp_top : n:int -> Format.formatter -> t -> unit
(** Table of the [n] heaviest users. *)
