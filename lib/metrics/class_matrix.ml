type t = {
  totals : float array array;  (* total wait seconds *)
  counts : int array array;
}

let compute outcomes =
  let totals = Array.make_matrix 5 5 0.0 in
  let counts = Array.make_matrix 5 5 0 in
  List.iter
    (fun (o : Outcome.t) ->
      let r = Workload.Job.runtime_class5 o.job.Workload.Job.runtime in
      let c = Workload.Job.node_class5 o.job.Workload.Job.nodes in
      totals.(r).(c) <- totals.(r).(c) +. Outcome.wait o;
      counts.(r).(c) <- counts.(r).(c) + 1)
    outcomes;
  { totals; counts }

let average_wait t ~runtime_class ~node_class =
  let n = t.counts.(runtime_class).(node_class) in
  if n = 0 then None
  else Some (t.totals.(runtime_class).(node_class) /. float_of_int n)

let count t ~runtime_class ~node_class = t.counts.(runtime_class).(node_class)

let pp fmt t =
  Format.fprintf fmt "%-8s" "T \\ N";
  for c = 0 to 4 do
    Format.fprintf fmt " %8s" (Workload.Job.node_class5_label c)
  done;
  Format.pp_print_newline fmt ();
  for r = 0 to 4 do
    Format.fprintf fmt "%-8s" (Workload.Job.runtime_class5_label r);
    for c = 0 to 4 do
      match average_wait t ~runtime_class:r ~node_class:c with
      | None -> Format.fprintf fmt " %8s" "-"
      | Some w -> Format.fprintf fmt " %8.1f" (Simcore.Units.to_hours w)
    done;
    Format.pp_print_newline fmt ()
  done
