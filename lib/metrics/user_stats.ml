type entry = {
  mutable jobs : int;
  mutable demand : float;
  mutable wait_sum : float;
  mutable slowdown_sum : float;
}

type t = { table : (int, entry) Hashtbl.t; mutable total_demand : float }

let compute outcomes =
  let t = { table = Hashtbl.create 32; total_demand = 0.0 } in
  List.iter
    (fun (o : Outcome.t) ->
      let user = o.job.Workload.Job.user in
      if user > 0 then begin
        let entry =
          match Hashtbl.find_opt t.table user with
          | Some e -> e
          | None ->
              let e =
                { jobs = 0; demand = 0.0; wait_sum = 0.0; slowdown_sum = 0.0 }
              in
              Hashtbl.add t.table user e;
              e
        in
        entry.jobs <- entry.jobs + 1;
        entry.demand <- entry.demand +. Workload.Job.area o.job;
        entry.wait_sum <- entry.wait_sum +. Outcome.wait o;
        entry.slowdown_sum <- entry.slowdown_sum +. Outcome.bounded_slowdown o;
        t.total_demand <- t.total_demand +. Workload.Job.area o.job
      end)
    outcomes;
  t

let user_count t = Hashtbl.length t.table

let users t =
  Hashtbl.fold (fun user e acc -> (user, e.demand) :: acc) t.table []
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
  |> List.map fst

let find t user =
  match Hashtbl.find_opt t.table user with
  | Some e -> e
  | None -> raise Not_found

let job_count t ~user = (find t user).jobs

let demand_share t ~user =
  if t.total_demand <= 0.0 then 0.0 else (find t user).demand /. t.total_demand

let avg_wait t ~user =
  let e = find t user in
  if e.jobs = 0 then 0.0 else e.wait_sum /. float_of_int e.jobs

let avg_bounded_slowdown t ~user =
  let e = find t user in
  if e.jobs = 0 then 0.0 else e.slowdown_sum /. float_of_int e.jobs

let jain_index t =
  let values =
    Hashtbl.fold
      (fun _ e acc ->
        (if e.jobs = 0 then 0.0 else e.slowdown_sum /. float_of_int e.jobs)
        :: acc)
      t.table []
  in
  match values with
  | [] -> 0.0
  | _ ->
      let n = float_of_int (List.length values) in
      let sum = List.fold_left ( +. ) 0.0 values in
      let sum_sq = List.fold_left (fun acc v -> acc +. (v *. v)) 0.0 values in
      if sum_sq <= 0.0 then 1.0 else sum *. sum /. (n *. sum_sq)

let pp_top ~n fmt t =
  Format.fprintf fmt "%8s %6s %9s %10s %10s@." "user" "jobs" "demand%"
    "avgW(h)" "avgBsld";
  List.iteri
    (fun i user ->
      if i < n then
        Format.fprintf fmt "%8d %6d %9.1f %10.2f %10.1f@." user
          (job_count t ~user)
          (100.0 *. demand_share t ~user)
          (Simcore.Units.to_hours (avg_wait t ~user))
          (avg_bounded_slowdown t ~user))
    (users t);
  Format.fprintf fmt "Jain fairness index over per-user slowdowns: %.3f@."
    (jain_index t)
