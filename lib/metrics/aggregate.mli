(** Whole-run summary statistics.

    Aggregates per-job {!Outcome} records into the measures reported in
    the paper's figures: average and maximum wait, average bounded
    slowdown, wait percentiles, plus the time-averaged queue length
    supplied by the simulation engine. *)

type t = {
  n_jobs : int;
  avg_wait : float;  (** seconds *)
  max_wait : float;  (** seconds; 0 when no jobs *)
  p98_wait : float;  (** 98th-percentile wait, seconds; 0 when no jobs *)
  avg_bounded_slowdown : float;
  max_bounded_slowdown : float;
  avg_queue_length : float;
}

val compute : ?avg_queue_length:float -> Outcome.t list -> t

val avg_wait_hours : t -> float
val max_wait_hours : t -> float
val p98_wait_hours : t -> float

val pp : Format.formatter -> t -> unit
