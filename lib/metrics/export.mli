(** Export simulation outcomes for external analysis.

    Two formats:
    - CSV with one row per job (id, user, nodes, submit, start, finish,
      runtime, requested, wait, bounded slowdown) — for notebooks;
    - SWF with the wait-time field filled from the simulation — so a
      simulated schedule can be fed to any SWF-consuming tool. *)

val to_csv : string -> Outcome.t list -> unit
(** Write outcomes to a CSV file (header included), in submit order. *)

val csv_header : string

val csv_row : Outcome.t -> string

val to_swf : ?comments:string list -> string -> Outcome.t list -> unit
(** Write outcomes as SWF, wait field = simulated wait. *)
