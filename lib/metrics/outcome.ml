type t = { job : Workload.Job.t; start : float; finish : float }

let v ~job ~start ~finish =
  if start < job.Workload.Job.submit then
    invalid_arg "Outcome.v: started before submission";
  if finish <= start then invalid_arg "Outcome.v: finish <= start";
  { job; start; finish }

let wait t = t.start -. t.job.Workload.Job.submit
let turnaround t = t.finish -. t.job.Workload.Job.submit
let slowdown t = turnaround t /. t.job.Workload.Job.runtime

(* 1 + wait / max(T, 1min): for T >= 1 min this is turnaround / T; for
   shorter jobs it degrades to 1 + wait-in-minutes, exactly the paper's
   convention. *)
let bounded_slowdown t =
  let floor_runtime = Float.max t.job.Workload.Job.runtime Simcore.Units.minute in
  1.0 +. (wait t /. floor_runtime)

let excess_wait t ~threshold = Float.max 0.0 (wait t -. threshold)

let pp fmt t =
  Format.fprintf fmt "%a wait=%a slowdown=%.2f" Workload.Job.pp t.job
    Simcore.Units.pp_duration (wait t) (bounded_slowdown t)
