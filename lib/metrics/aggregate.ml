type t = {
  n_jobs : int;
  avg_wait : float;
  max_wait : float;
  p98_wait : float;
  avg_bounded_slowdown : float;
  max_bounded_slowdown : float;
  avg_queue_length : float;
}

let compute ?(avg_queue_length = 0.0) outcomes =
  let n = List.length outcomes in
  if n = 0 then
    {
      n_jobs = 0;
      avg_wait = 0.0;
      max_wait = 0.0;
      p98_wait = 0.0;
      avg_bounded_slowdown = 0.0;
      max_bounded_slowdown = 0.0;
      avg_queue_length;
    }
  else begin
    let waits = Array.of_list (List.map Outcome.wait outcomes) in
    let slowdowns = Array.of_list (List.map Outcome.bounded_slowdown outcomes) in
    {
      n_jobs = n;
      avg_wait = Simcore.Stats.mean waits;
      max_wait = Simcore.Stats.max waits;
      p98_wait = Simcore.Stats.percentile waits 98.0;
      avg_bounded_slowdown = Simcore.Stats.mean slowdowns;
      max_bounded_slowdown = Simcore.Stats.max slowdowns;
      avg_queue_length;
    }
  end

let avg_wait_hours t = Simcore.Units.to_hours t.avg_wait
let max_wait_hours t = Simcore.Units.to_hours t.max_wait
let p98_wait_hours t = Simcore.Units.to_hours t.p98_wait

let pp fmt t =
  Format.fprintf fmt
    "n=%d avg_wait=%.2fh max_wait=%.2fh p98_wait=%.2fh avg_bsld=%.1f qlen=%.1f"
    t.n_jobs (avg_wait_hours t) (max_wait_hours t) (p98_wait_hours t)
    t.avg_bounded_slowdown t.avg_queue_length
