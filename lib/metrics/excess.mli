(** Normalized excessive-wait measures.

    The paper evaluates how well policies avoid "unfortunate" jobs by
    the wait in excess of a threshold [t], where [t] is taken from the
    FCFS-backfill run of the same month: either its maximum wait
    (E^max_fcfs-bf) or its 98th-percentile wait (E^98%_fcfs-bf).
    By construction FCFS-backfill has zero total E^max in any month. *)

type t = {
  threshold : float;  (** seconds *)
  total : float;  (** sum of per-job excess, seconds *)
  count : int;  (** number of jobs with a positive excess *)
  average : float;  (** mean excess over jobs with positive excess, s *)
}

val compute : threshold:float -> Outcome.t list -> t

val total_hours : t -> float
val average_hours : t -> float
