let csv_header =
  "id,user,nodes,submit,start,finish,runtime,requested,wait,bounded_slowdown"

let csv_row (o : Outcome.t) =
  let j = o.job in
  Printf.sprintf "%d,%d,%d,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f,%.4f"
    j.Workload.Job.id j.Workload.Job.user j.Workload.Job.nodes
    j.Workload.Job.submit o.start o.finish j.Workload.Job.runtime
    j.Workload.Job.requested (Outcome.wait o) (Outcome.bounded_slowdown o)

let sorted outcomes =
  List.stable_sort
    (fun (a : Outcome.t) (b : Outcome.t) ->
      Workload.Job.compare_submit a.job b.job)
    outcomes

let with_file path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let to_csv path outcomes =
  with_file path (fun oc ->
      output_string oc (csv_header ^ "\n");
      List.iter
        (fun o -> output_string oc (csv_row o ^ "\n"))
        (sorted outcomes))

let to_swf ?(comments = []) path outcomes =
  with_file path (fun oc ->
      List.iter (fun c -> output_string oc (c ^ "\n")) comments;
      List.iter
        (fun (o : Outcome.t) ->
          output_string oc
            (Workload.Swf.job_line ~wait:(Outcome.wait o) o.job ^ "\n"))
        (sorted outcomes))
