(** Average wait per job class (Figure 5).

    Jobs are partitioned by five actual-runtime ranges and five
    node-count classes; each cell holds the average wait of its jobs.
    Row index = runtime class ({!Workload.Job.runtime_class5}), column
    index = node class ({!Workload.Job.node_class5}). *)

type t

val compute : Outcome.t list -> t

val average_wait : t -> runtime_class:int -> node_class:int -> float option
(** Average wait (seconds) of the cell, or [None] if it has no jobs. *)

val count : t -> runtime_class:int -> node_class:int -> int

val pp : Format.formatter -> t -> unit
(** Render as a 5x5 table of average waits in hours ("-" for empty
    cells). *)
