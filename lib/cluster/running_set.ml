type entry = {
  job : Workload.Job.t;
  start : float;
  finish : float;
  est_finish : float;
}

type t = {
  machine : Machine.t;
  table : (int, entry) Hashtbl.t;
  mutable busy : int;
}

let create ~machine = { machine; table = Hashtbl.create 64; busy = 0 }
let machine t = t.machine
let busy_nodes t = t.busy
let free_nodes t = t.machine.Machine.nodes - t.busy
let count t = Hashtbl.length t.table
let is_empty t = count t = 0

let add t entry =
  let id = entry.job.Workload.Job.id in
  if Hashtbl.mem t.table id then
    invalid_arg (Printf.sprintf "Running_set.add: job %d already running" id);
  if entry.job.Workload.Job.nodes > free_nodes t then
    invalid_arg
      (Printf.sprintf "Running_set.add: job %d oversubscribes machine" id);
  Hashtbl.add t.table id entry;
  t.busy <- t.busy + entry.job.Workload.Job.nodes

let remove t ~id =
  match Hashtbl.find_opt t.table id with
  | None -> raise Not_found
  | Some entry ->
      Hashtbl.remove t.table id;
      t.busy <- t.busy - entry.job.Workload.Job.nodes;
      entry

let entries t = Hashtbl.fold (fun _ e acc -> e :: acc) t.table []

(* A job that outlives its estimate (possible only with an
   undershooting predictor, R*=pred) still holds its nodes: report its
   release as [overdue_grace] after [now].  The grace must be strictly
   larger than any start-now tolerance a policy applies (the search's
   [Search_state.start_now_set] uses 1e-6 s), or a policy will try to
   start a job on nodes that are still physically occupied and the
   engine will reject the start as oversubscription. *)
let overdue_grace = 1e-3

let releases t ~now =
  Hashtbl.fold
    (fun _ e acc ->
      let finish = Float.max e.est_finish (now +. overdue_grace) in
      (finish, e.job.Workload.Job.nodes) :: acc)
    t.table []

let next_finish t =
  Hashtbl.fold
    (fun _ e acc ->
      match acc with
      | None -> Some e.finish
      | Some best -> Some (Float.min best e.finish))
    t.table None
