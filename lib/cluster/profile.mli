(** Availability profile: free nodes as a step function of time.

    The profile is the shared substrate of both the backfill schedulers
    and the search policies' path builder: it answers "when is the
    earliest time a job of width [nodes] can run for [duration]?" and
    records tentative placements.

    Segment [i] spans [time i, time (i+1)) with [free i] nodes free;
    the last segment extends to infinity.  The representation is a pair
    of flat arrays and every operation mutates in place; tree search
    backtracks by restoring an O(segments) snapshot via {!copy_into},
    which keeps the hot path allocation-free. *)

type t

val create : now:float -> capacity:int -> t
(** Fully-free machine from [now] onward. *)

val of_running :
  now:float -> capacity:int -> (float * int) list -> t
(** [of_running ~now ~capacity releases] builds the profile implied by
    the currently running jobs; [releases] are [(end_time, nodes)]
    pairs (estimated ends).  End times at or before [now] release
    immediately.  @raise Invalid_argument if running jobs oversubscribe
    the machine. *)

val capacity : t -> int
val segment_count : t -> int

val start_time : t -> float
(** Time at which the profile begins (the [now] it was built for). *)

val free_at : t -> float -> int
(** Free nodes at a given instant (>= start time). *)

val segments : t -> (float * int) list
(** [(start, free)] list for inspection and tests. *)

val earliest_start : t -> nodes:int -> duration:float -> float
(** First time [s >= start_time] such that at least [nodes] nodes are
    free during the whole of [\[s, s + duration)].
    @raise Invalid_argument if [nodes] exceeds capacity or
    [duration <= 0]. *)

val fits_at : t -> at:float -> nodes:int -> duration:float -> bool
(** Whether [nodes] nodes are free during [\[at, at + duration)]. *)

val reserve : t -> at:float -> nodes:int -> duration:float -> unit
(** Subtract [nodes] from the free count during [\[at, at+duration)].
    @raise Invalid_argument if this would drive any segment negative
    (i.e. the caller did not check {!fits_at} / {!earliest_start}). *)

val copy : t -> t
val copy_into : src:t -> dst:t -> unit
(** Restore [dst] to the state of [src]; both must share a capacity.
    Grows [dst]'s buffers if needed. *)

val pp : Format.formatter -> t -> unit
(** Render the step function, e.g. ["[0s:12 3600s:64 7200s:128]"]. *)

val invariant : t -> bool
(** Structural invariant: times strictly increasing, free counts within
    [\[0, capacity\]], adjacent segments with equal free counts merged.
    Used by tests. *)
