(** Availability profile: free nodes as a step function of time.

    The profile is the shared substrate of both the backfill schedulers
    and the search policies' path builder: it answers "when is the
    earliest time a job of width [nodes] can run for [duration]?" and
    records tentative placements.

    Segment [i] spans [time i, time (i+1)) with [free i] nodes free;
    the last segment extends to infinity.  The representation is a pair
    of flat arrays and every operation mutates in place.  Tree search
    backtracks through a reverse-delta {e trail}: {!mark} the profile
    before a reservation, and {!undo_to} rolls back exactly the
    segments that reservation touched — O(touched), not O(segments).
    The snapshot path ({!copy_into}) remains available as an oracle.
    Both paths keep the hot loop allocation-free (trail buffers grow
    geometrically, off the hot path). *)

type t

val create : now:float -> capacity:int -> t
(** Fully-free machine from [now] onward. *)

val of_running :
  now:float -> capacity:int -> (float * int) list -> t
(** [of_running ~now ~capacity releases] builds the profile implied by
    the currently running jobs; [releases] are [(end_time, nodes)]
    pairs (estimated ends).  End times at or before [now] release
    immediately.  @raise Invalid_argument if running jobs oversubscribe
    the machine. *)

val capacity : t -> int
val segment_count : t -> int

val start_time : t -> float
(** Time at which the profile begins (the [now] it was built for). *)

val free_at : t -> float -> int
(** Free nodes at a given instant (>= start time). *)

val segments : t -> (float * int) list
(** [(start, free)] list for inspection and tests. *)

val earliest_start : t -> nodes:int -> duration:float -> float
(** First time [s >= start_time] such that at least [nodes] nodes are
    free during the whole of [\[s, s + duration)].
    @raise Invalid_argument if [nodes] exceeds capacity or
    [duration <= 0]. *)

val fits_at : t -> at:float -> nodes:int -> duration:float -> bool
(** Whether [nodes] nodes are free during [\[at, at + duration)]. *)

val place_earliest : t -> nodes:int -> duration:float -> float
(** Fused {!earliest_start} + {!reserve}: find the earliest feasible
    start, reserve there, and return the start time — one pass over
    the profile, no re-location, and (starts being segment boundaries)
    no start-side split.  Equivalent to
    [let s = earliest_start t ... in reserve t ~at:s ...; s].
    The search hot path. *)

val stage_duration : t -> float -> unit
(** Stage the duration for {!place_earliest_staged}.  One expression,
    so it inlines at call sites and the float crosses without being
    boxed. *)

val place_earliest_staged : t -> nodes:int -> unit
(** Exactly {!place_earliest} with the duration read from
    {!stage_duration} and the start time delivered through
    {!staged_start}.  This staged triple exists for the innermost
    search loop: float arguments and results of out-of-line calls are
    boxed, and at millions of nodes per decision those allocations
    dominate.  Anywhere else, call {!place_earliest}. *)

val staged_start : t -> float
(** Start time chosen by the last {!place_earliest_staged}. *)

val reserve : t -> at:float -> nodes:int -> duration:float -> unit
(** Subtract [nodes] from the free count during [\[at, at+duration)].
    Merges equal-free neighbours locally (O(segments touched), no full
    renormalization); when trailing is on, every mutation is recorded
    so the reservation can be undone exactly.
    @raise Invalid_argument if this would drive any segment negative
    (i.e. the caller did not check {!fits_at} / {!earliest_start}). *)

(** {2 Trail-based backtracking}

    Discipline: take a {!mark} before each reservation and {!undo_to}
    the marks in reverse (LIFO) order — exactly the shape of a
    depth-first search.  Recording starts at the first [mark]; profiles
    that never mark (the backfill engines) pay one branch per mutation
    and nothing else. *)

type mark = int
(** A position on the undo trail, as returned by {!mark}.  Mark [0] is
    the state at the first {!mark} call. *)

val mark : t -> mark
(** Enable trailing (idempotent) and return the current trail
    position. *)

val undo_to : t -> mark -> unit
(** Roll back every mutation recorded since the mark was taken, in
    reverse order.  Cost is proportional to the number of recorded
    mutations, i.e. to the segments touched — not to the profile size.
    @raise Invalid_argument if the mark is not on the current trail
    (e.g. already undone past, or invalidated by {!copy_into}). *)

val trail_length : t -> int
(** Number of recorded mutations (0 when trailing is off or fully
    undone).  For tests and instrumentation. *)

val copy : t -> t
(** Independent copy of the segments.  The copy starts with an empty
    trail and trailing off. *)

val copy_into : src:t -> dst:t -> unit
(** Restore [dst] to the state of [src]; both must share a capacity.
    Grows [dst]'s buffers if needed.  Clears [dst]'s trail and turns
    trailing off: marks taken before a [copy_into] are invalid. *)

val pp : Format.formatter -> t -> unit
(** Render the step function, e.g. ["[0s:12 3600s:64 7200s:128]"]. *)

val invariant : t -> bool
(** Structural invariant: times strictly increasing, free counts within
    [\[0, capacity\]], adjacent segments with equal free counts merged.
    Used by tests. *)
