type t = { nodes : int }

let v ~nodes =
  if nodes < 1 then invalid_arg "Machine.v: nodes must be >= 1";
  { nodes }

let titan = v ~nodes:128
let fits t (j : Workload.Job.t) = j.nodes <= t.nodes
