(** Static description of the parallel machine.

    The NCSA IA-64 cluster is modelled as in the paper: a pool of
    identical nodes, with the node as the smallest allocation unit and
    space sharing only (a node runs one job at a time). *)

type t = { nodes : int }

val v : nodes:int -> t
(** @raise Invalid_argument if [nodes < 1]. *)

val titan : t
(** The paper's machine: 128 nodes (Table 2). *)

val fits : t -> Workload.Job.t -> bool
(** Whether the job can ever run on this machine. *)
