type t = {
  capacity : int;
  mutable times : float array;
  mutable free : int array;
  mutable len : int;
}

let capacity t = t.capacity
let segment_count t = t.len
let start_time t = t.times.(0)

let create ~now ~capacity =
  if capacity < 1 then invalid_arg "Profile.create: capacity < 1";
  {
    capacity;
    times = Array.make 16 now;
    free = Array.make 16 capacity;
    len = 1;
  }

let ensure_capacity t needed =
  let cap = Array.length t.times in
  if needed > cap then begin
    let cap' = max needed (cap * 2) in
    let times' = Array.make cap' 0.0 in
    let free' = Array.make cap' 0 in
    Array.blit t.times 0 times' 0 t.len;
    Array.blit t.free 0 free' 0 t.len;
    t.times <- times';
    t.free <- free'
  end

(* Insert a segment boundary at position [idx]. *)
let insert t idx time free =
  ensure_capacity t (t.len + 1);
  Array.blit t.times idx t.times (idx + 1) (t.len - idx);
  Array.blit t.free idx t.free (idx + 1) (t.len - idx);
  t.times.(idx) <- time;
  t.free.(idx) <- free;
  t.len <- t.len + 1

(* Merge adjacent segments with equal free counts (in place, O(n)). *)
let normalize t =
  let w = ref 0 in
  for r = 1 to t.len - 1 do
    if t.free.(r) <> t.free.(!w) then begin
      incr w;
      t.times.(!w) <- t.times.(r);
      t.free.(!w) <- t.free.(r)
    end
  done;
  t.len <- !w + 1

let of_running ~now ~capacity releases =
  let t = create ~now ~capacity in
  let live =
    List.filter (fun (end_time, _) -> end_time > now) releases
    |> List.sort (fun (a, _) (b, _) -> Float.compare a b)
  in
  let busy = List.fold_left (fun acc (_, n) -> acc + n) 0 live in
  if busy > capacity then
    invalid_arg "Profile.of_running: running jobs exceed capacity";
  (* Build segments left to right: free grows at each release. *)
  let current = ref (capacity - busy) in
  t.free.(0) <- !current;
  List.iter
    (fun (end_time, nodes) ->
      current := !current + nodes;
      if t.times.(t.len - 1) = end_time then t.free.(t.len - 1) <- !current
      else begin
        ensure_capacity t (t.len + 1);
        t.times.(t.len) <- end_time;
        t.free.(t.len) <- !current;
        t.len <- t.len + 1
      end)
    live;
  normalize t;
  t

let segments t =
  List.init t.len (fun i -> (t.times.(i), t.free.(i)))

(* Index of the segment containing [time]. *)
let locate t time =
  if time < t.times.(0) then
    invalid_arg "Profile.locate: time before profile start";
  let rec search lo hi =
    (* invariant: times.(lo) <= time and (hi = len or times.(hi) > time) *)
    if hi - lo <= 1 then lo
    else
      let mid = (lo + hi) / 2 in
      if t.times.(mid) <= time then search mid hi else search lo mid
  in
  search 0 t.len

let free_at t time = t.free.(locate t time)

let fits_at t ~at ~nodes ~duration =
  let finish = at +. duration in
  let rec check k =
    if k >= t.len || t.times.(k) >= finish then true
    else t.free.(k) >= nodes && check (k + 1)
  in
  let i = locate t at in
  t.free.(i) >= nodes && check (i + 1)

let earliest_start t ~nodes ~duration =
  if nodes > t.capacity then
    invalid_arg "Profile.earliest_start: job wider than machine";
  if duration <= 0.0 then
    invalid_arg "Profile.earliest_start: duration must be positive";
  (* Candidate starts are segment boundaries where enough nodes are
     free; on failure inside the window, resume from the segment that
     failed. *)
  let rec from i =
    if i >= t.len then t.times.(t.len - 1)
    else if t.free.(i) < nodes then from (i + 1)
    else begin
      let s = t.times.(i) in
      let finish = s +. duration in
      let rec check k =
        if k >= t.len || t.times.(k) >= finish then `Fits
        else if t.free.(k) >= nodes then check (k + 1)
        else `Blocked k
      in
      match check (i + 1) with `Fits -> s | `Blocked k -> from (k + 1)
    end
  in
  from 0

let reserve t ~at ~nodes ~duration =
  if duration <= 0.0 then invalid_arg "Profile.reserve: duration <= 0";
  let finish = at +. duration in
  let i = locate t at in
  let i =
    if t.times.(i) < at then begin
      insert t (i + 1) at t.free.(i);
      i + 1
    end
    else i
  in
  (* Walk segments covered by [at, finish), splitting the last one. *)
  let rec claim k =
    if k >= t.len then
      (* reservation extends past the last boundary: split the final
         infinite segment at [finish] *)
      insert t t.len finish t.free.(t.len - 1)
    else if t.times.(k) < finish then claim (k + 1)
    else if t.times.(k) > finish then insert t k finish t.free.(k - 1)
  in
  claim (i + 1);
  let rec subtract k =
    if k < t.len && t.times.(k) < finish then begin
      if t.free.(k) < nodes then
        invalid_arg "Profile.reserve: insufficient free nodes";
      t.free.(k) <- t.free.(k) - nodes;
      subtract (k + 1)
    end
  in
  subtract i;
  normalize t

let copy t =
  {
    capacity = t.capacity;
    times = Array.sub t.times 0 t.len;
    free = Array.sub t.free 0 t.len;
    len = t.len;
  }

let copy_into ~src ~dst =
  if src.capacity <> dst.capacity then
    invalid_arg "Profile.copy_into: capacity mismatch";
  ensure_capacity dst src.len;
  Array.blit src.times 0 dst.times 0 src.len;
  Array.blit src.free 0 dst.free 0 src.len;
  dst.len <- src.len

let pp fmt t =
  Format.fprintf fmt "[";
  for i = 0 to t.len - 1 do
    if i > 0 then Format.fprintf fmt " ";
    Format.fprintf fmt "%a:%d" Simcore.Units.pp_duration t.times.(i)
      t.free.(i)
  done;
  Format.fprintf fmt "]"

let invariant t =
  let ok = ref (t.len >= 1) in
  for i = 0 to t.len - 1 do
    if t.free.(i) < 0 || t.free.(i) > t.capacity then ok := false;
    if i > 0 && t.times.(i) <= t.times.(i - 1) then ok := false;
    if i > 0 && t.free.(i) = t.free.(i - 1) then ok := false
  done;
  !ok
