type t = {
  capacity : int;
  mutable times : float array;
  mutable free : int array;
  mutable len : int;
  (* Reverse-delta trail: every structural mutation performed while
     [trailing] is on appends one inverse record, so [undo_to] can roll
     the profile back in O(mutations) instead of restoring an
     O(segments) snapshot.  Parallel arrays keep the records unboxed;
     [t_op] packs [(index lsl 2) lor opcode]. *)
  mutable trailing : bool;
  mutable t_op : int array;
  mutable t_time : float array;
  mutable t_free : int array;
  mutable t_len : int;
  (* Scratch cells for the placement scan ([scratch.(0)] = staged
     duration, [scratch.(1)] = window finish, [scratch.(2)] = resulting
     start) plus the stop segment of the last successful scan.  They
     let the scan run as top-level recursive functions over int
     arguments only and let callers pass the duration / read the start
     through tiny always-inlined accessors — a local [let rec]
     capturing floats costs a closure allocation per call in
     non-flambda builds, and float arguments and results of
     out-of-line calls are boxed. *)
  scratch : float array;
  mutable scan_stop : int;
}

type mark = int

let capacity t = t.capacity
let segment_count t = t.len
let start_time t = t.times.(0)

let create ~now ~capacity =
  if capacity < 1 then invalid_arg "Profile.create: capacity < 1";
  {
    capacity;
    times = Array.make 16 now;
    free = Array.make 16 capacity;
    len = 1;
    trailing = false;
    t_op = [||];
    t_time = [||];
    t_free = [||];
    t_len = 0;
    scratch = Array.make 3 0.0;
    scan_stop = 0;
  }

let ensure_capacity t needed =
  let cap = Array.length t.times in
  if needed > cap then begin
    let cap' = max needed (cap * 2) in
    let times' = Array.make cap' 0.0 in
    let free' = Array.make cap' 0 in
    Array.blit t.times 0 times' 0 t.len;
    Array.blit t.free 0 free' 0 t.len;
    t.times <- times';
    t.free <- free'
  end

(* --- trail ----------------------------------------------------------- *)

let op_insert = 0
let op_delete = 1
let op_range_sub = 2

(* Claim the next trail slot and return its index; the caller fills the
   parallel arrays directly (array-to-array stores keep floats
   unboxed).  Growth is off the hot path: once sized for the deepest
   search seen, claims never allocate again. *)
let trail_slot t =
  let cap = Array.length t.t_op in
  if t.t_len >= cap then begin
    let cap' = max 64 (cap * 2) in
    let op' = Array.make cap' 0 in
    let time' = Array.make cap' 0.0 in
    let free' = Array.make cap' 0 in
    Array.blit t.t_op 0 op' 0 t.t_len;
    Array.blit t.t_time 0 time' 0 t.t_len;
    Array.blit t.t_free 0 free' 0 t.t_len;
    t.t_op <- op';
    t.t_time <- time';
    t.t_free <- free'
  end;
  let pos = t.t_len in
  t.t_len <- pos + 1;
  pos

let mark t =
  t.trailing <- true;
  t.t_len

let trail_length t = t.t_len

(* --- primitive mutations (trail-recorded) ---------------------------- *)

(* Insert a segment boundary at position [idx]. *)
let insert_raw t idx time free =
  ensure_capacity t (t.len + 1);
  Array.blit t.times idx t.times (idx + 1) (t.len - idx);
  Array.blit t.free idx t.free (idx + 1) (t.len - idx);
  t.times.(idx) <- time;
  t.free.(idx) <- free;
  t.len <- t.len + 1

let insert t idx time free =
  insert_raw t idx time free;
  if t.trailing then begin
    let pos = trail_slot t in
    t.t_op.(pos) <- (idx lsl 2) lor op_insert
  end

(* Remove the segment boundary at position [idx]. *)
let delete_raw t idx =
  Array.blit t.times (idx + 1) t.times idx (t.len - idx - 1);
  Array.blit t.free (idx + 1) t.free idx (t.len - idx - 1);
  t.len <- t.len - 1

let delete t idx =
  if t.trailing then begin
    let pos = trail_slot t in
    t.t_op.(pos) <- (idx lsl 2) lor op_delete;
    t.t_time.(pos) <- t.times.(idx);
    t.t_free.(pos) <- t.free.(idx)
  end;
  delete_raw t idx

(* Subtract [nodes] from segments [lo, hi); one trail record for the
   whole run.  Bounds are established by the caller, so the loop uses
   unchecked accesses (this is the single hottest loop of the tree
   search). *)
let range_subtract t lo hi nodes =
  if t.trailing then begin
    let pos = trail_slot t in
    t.t_op.(pos) <- (lo lsl 2) lor op_range_sub;
    t.t_time.(pos) <- float_of_int nodes;
    t.t_free.(pos) <- hi
  end;
  for k = lo to hi - 1 do
    Array.unsafe_set t.free k (Array.unsafe_get t.free k - nodes)
  done

let undo_to t m =
  if m < 0 || m > t.t_len then
    invalid_arg "Profile.undo_to: mark not on the current trail";
  for k = t.t_len - 1 downto m do
    let packed = t.t_op.(k) in
    let idx = packed lsr 2 in
    let op = packed land 3 in
    if op = op_range_sub then begin
      let nodes = int_of_float t.t_time.(k) in
      let hi = t.t_free.(k) in
      for j = idx to hi - 1 do
        Array.unsafe_set t.free j (Array.unsafe_get t.free j + nodes)
      done
    end
    else if op = op_insert then delete_raw t idx
    else begin
      (* [insert_raw] inlined so the boundary time moves float-array to
         float-array without crossing a function boundary (which would
         box it — this loop runs once per backtracked node) *)
      ensure_capacity t (t.len + 1);
      Array.blit t.times idx t.times (idx + 1) (t.len - idx);
      Array.blit t.free idx t.free (idx + 1) (t.len - idx);
      t.times.(idx) <- t.t_time.(k);
      t.free.(idx) <- t.t_free.(k);
      t.len <- t.len + 1
    end
  done;
  t.t_len <- m

(* Merge adjacent segments with equal free counts (in place, O(n)).
   Only used off the hot path ([of_running]); [reserve] merges locally
   and records its merges on the trail. *)
let normalize t =
  let w = ref 0 in
  for r = 1 to t.len - 1 do
    if t.free.(r) <> t.free.(!w) then begin
      incr w;
      t.times.(!w) <- t.times.(r);
      t.free.(!w) <- t.free.(r)
    end
  done;
  t.len <- !w + 1

let of_running ~now ~capacity releases =
  let t = create ~now ~capacity in
  let live =
    List.filter (fun (end_time, _) -> end_time > now) releases
    |> List.sort (fun (a, _) (b, _) -> Float.compare a b)
  in
  let busy = List.fold_left (fun acc (_, n) -> acc + n) 0 live in
  if busy > capacity then
    invalid_arg "Profile.of_running: running jobs exceed capacity";
  (* Build segments left to right: free grows at each release. *)
  let current = ref (capacity - busy) in
  t.free.(0) <- !current;
  List.iter
    (fun (end_time, nodes) ->
      current := !current + nodes;
      if t.times.(t.len - 1) = end_time then t.free.(t.len - 1) <- !current
      else begin
        ensure_capacity t (t.len + 1);
        t.times.(t.len) <- end_time;
        t.free.(t.len) <- !current;
        t.len <- t.len + 1
      end)
    live;
  normalize t;
  t

let segments t =
  List.init t.len (fun i -> (t.times.(i), t.free.(i)))

(* Index of the segment containing [time]. *)
let locate t time =
  if time < t.times.(0) then
    invalid_arg "Profile.locate: time before profile start";
  let rec search lo hi =
    (* invariant: times.(lo) <= time and (hi = len or times.(hi) > time) *)
    if hi - lo <= 1 then lo
    else
      let mid = (lo + hi) / 2 in
      if t.times.(mid) <= time then search mid hi else search lo mid
  in
  search 0 t.len

let free_at t time = t.free.(locate t time)

let fits_at t ~at ~nodes ~duration =
  let finish = at +. duration in
  let rec check k =
    if k >= t.len || t.times.(k) >= finish then true
    else t.free.(k) >= nodes && check (k + 1)
  in
  let i = locate t at in
  t.free.(i) >= nodes && check (i + 1)

let earliest_start t ~nodes ~duration =
  if nodes > t.capacity then
    invalid_arg "Profile.earliest_start: job wider than machine";
  if duration <= 0.0 then
    invalid_arg "Profile.earliest_start: duration must be positive";
  (* Candidate starts are segment boundaries where enough nodes are
     free; on failure inside the window, resume from the segment that
     failed. *)
  (* [check] returns the window's end segment (>= 0) on success or
     [-k - 1] when segment [k] blocks — an int either way, so the scan
     allocates nothing. *)
  let rec from i =
    if i >= t.len then t.times.(t.len - 1)
    else if Array.unsafe_get t.free i < nodes then from (i + 1)
    else begin
      let finish = Array.unsafe_get t.times i +. duration in
      let rec check k =
        if k >= t.len || Array.unsafe_get t.times k >= finish then k
        else if Array.unsafe_get t.free k >= nodes then check (k + 1)
        else -k - 1
      in
      let r = check (i + 1) in
      if r >= 0 then t.times.(i) else from (-r)
    end
  in
  from 0

(* Carve [nodes] out of segments [i, stop) whose run has already been
   validated (every free count >= nodes), ensuring a boundary at the
   window finish first.  The finish time is read from [scratch.(1)]
   rather than passed as an argument (a float argument would be boxed
   on every call).  [stop] is the first segment index with
   [times.(stop) >= finish] (or [len]).  Returns nothing; merges the
   run's two borders locally — subtracting a constant from a
   contiguous run preserves inequality inside the run and outside it,
   so no other adjacent pair can newly share a free count. *)
let carve t ~i ~stop ~nodes =
  let finish = Array.unsafe_get t.scratch 1 in
  let stop =
    if stop >= t.len then begin
      (* reservation extends past the last boundary: split the final
         infinite segment at [finish] *)
      insert t t.len finish t.free.(t.len - 1);
      t.len - 1
    end
    else if t.times.(stop) > finish then begin
      insert t stop finish t.free.(stop - 1);
      stop
    end
    else stop
  in
  range_subtract t i stop nodes;
  (* merge the right border first so index [i] stays valid *)
  if stop < t.len && t.free.(stop) = t.free.(stop - 1) then delete t stop;
  if i > 0 && t.free.(i) = t.free.(i - 1) then delete t i

let reserve t ~at ~nodes ~duration =
  if duration <= 0.0 then invalid_arg "Profile.reserve: duration <= 0";
  let finish = at +. duration in
  let i = locate t at in
  let i =
    if t.times.(i) < at then begin
      insert t (i + 1) at t.free.(i);
      i + 1
    end
    else i
  in
  (* Validate the whole window before mutating the free counts, so an
     oversubscription attempt raises without corrupting the profile. *)
  let rec validate k =
    if k < t.len && t.times.(k) < finish then begin
      if t.free.(k) < nodes then
        invalid_arg "Profile.reserve: insufficient free nodes";
      validate (k + 1)
    end
    else k
  in
  if t.free.(i) < nodes then
    invalid_arg "Profile.reserve: insufficient free nodes";
  let stop = validate (i + 1) in
  Array.unsafe_set t.scratch 1 finish;
  carve t ~i ~stop ~nodes

(* Window scan for [place_earliest], lifted to top level so each call
   passes only ints and [t] (no closures, no boxed floats).  The
   window end lives in [t.scratch.(1)]; [scan_check] yields the stop
   segment (>= 0) or [-k - 1] for a block at [k]; [scan_from] returns
   the start segment and leaves its stop in [t.scan_stop].  The
   unchecked reads are safe because the final segment always has
   [capacity] free nodes, so a scan with [nodes <= capacity]
   terminates at or before it. *)
let rec scan_check t nodes k =
  if
    k >= t.len
    || Array.unsafe_get t.times k >= Array.unsafe_get t.scratch 1
  then k
  else if Array.unsafe_get t.free k >= nodes then scan_check t nodes (k + 1)
  else -k - 1

let rec scan_from t nodes i =
  if Array.unsafe_get t.free i < nodes then scan_from t nodes (i + 1)
  else begin
    Array.unsafe_set t.scratch 1
      (Array.unsafe_get t.times i +. Array.unsafe_get t.scratch 0);
    let r = scan_check t nodes (i + 1) in
    if r >= 0 then begin
      t.scan_stop <- r;
      i
    end
    else scan_from t nodes (-r)
  end

(* The staged accessors are one expression each so the compiler
   inlines them at cross-module call sites, letting the duration in
   and the start out without boxing. *)
let stage_duration t duration = Array.unsafe_set t.scratch 0 duration
let staged_start t = Array.unsafe_get t.scratch 2

let place_earliest_staged t ~nodes =
  if nodes > t.capacity then
    invalid_arg "Profile.place_earliest: job wider than machine";
  if Array.unsafe_get t.scratch 0 <= 0.0 then
    invalid_arg "Profile.place_earliest: duration must be positive";
  (* Fused [earliest_start] + [reserve]: the feasibility scan already
     knows the start segment [i] and the extent [stop] of the window,
     so the reservation skips the binary search and — because every
     candidate start is a segment boundary — never splits at the start
     time.  One pass over the profile per job placement. *)
  let i = scan_from t nodes 0 in
  let s = t.times.(i) in
  (* [scan_from] left [scratch.(1)] holding the successful window's
     finish time, exactly what [carve] reads *)
  carve t ~i ~stop:t.scan_stop ~nodes;
  Array.unsafe_set t.scratch 2 s

let place_earliest t ~nodes ~duration =
  stage_duration t duration;
  place_earliest_staged t ~nodes;
  staged_start t

let copy t =
  {
    capacity = t.capacity;
    times = Array.sub t.times 0 t.len;
    free = Array.sub t.free 0 t.len;
    len = t.len;
    trailing = false;
    t_op = [||];
    t_time = [||];
    t_free = [||];
    t_len = 0;
    scratch = Array.make 3 0.0;
    scan_stop = 0;
  }

let copy_into ~src ~dst =
  if src.capacity <> dst.capacity then
    invalid_arg "Profile.copy_into: capacity mismatch";
  ensure_capacity dst src.len;
  Array.blit src.times 0 dst.times 0 src.len;
  Array.blit src.free 0 dst.free 0 src.len;
  dst.len <- src.len;
  (* A wholesale overwrite cannot be undone segment-wise: invalidate
     any trail the destination carried. *)
  dst.trailing <- false;
  dst.t_len <- 0

let pp fmt t =
  Format.fprintf fmt "[";
  for i = 0 to t.len - 1 do
    if i > 0 then Format.fprintf fmt " ";
    Format.fprintf fmt "%a:%d" Simcore.Units.pp_duration t.times.(i)
      t.free.(i)
  done;
  Format.fprintf fmt "]"

let invariant t =
  let ok = ref (t.len >= 1) in
  for i = 0 to t.len - 1 do
    if t.free.(i) < 0 || t.free.(i) > t.capacity then ok := false;
    if i > 0 && t.times.(i) <= t.times.(i - 1) then ok := false;
    if i > 0 && t.free.(i) = t.free.(i - 1) then ok := false
  done;
  !ok
