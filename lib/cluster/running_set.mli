(** The set of currently executing jobs.

    Tracks, for every running job, its start time, its true completion
    time (known to the simulator) and its *estimated* completion time
    (known to the scheduler: start + R*, where R* is the runtime the
    policy was configured to trust).  Provides the release list from
    which schedulers build an availability {!Profile}. *)

type entry = {
  job : Workload.Job.t;
  start : float;
  finish : float;  (** true end: start + min(T, R) *)
  est_finish : float;  (** scheduler-visible end: start + R* *)
}

type t

val create : machine:Machine.t -> t
val machine : t -> Machine.t

val busy_nodes : t -> int
val free_nodes : t -> int
val count : t -> int
val is_empty : t -> bool

val add : t -> entry -> unit
(** @raise Invalid_argument if the job oversubscribes the machine or is
    already running. *)

val remove : t -> id:int -> entry
(** Remove a job at departure.  @raise Not_found if absent. *)

val entries : t -> entry list
(** All running entries, unspecified order. *)

val releases : t -> now:float -> (float * int) list
(** [(estimated end, nodes)] pairs for profile construction; estimated
    ends already in the past are reported as a 1 ms grace after [now]
    (a job that outlives its estimate still holds its nodes).  The
    grace is strictly wider than every policy's start-now tolerance,
    so no policy can be tricked into starting a job on nodes an
    overdue job still occupies. *)

val next_finish : t -> float option
(** Earliest true completion time among running jobs. *)
