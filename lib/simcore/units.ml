let second = 1.0
let minute = 60.0
let hour = 3600.0
let day = 86_400.0
let week = 604_800.0
let minutes m = m *. minute
let hours h = h *. hour
let days d = d *. day
let weeks w = w *. week
let to_minutes s = s /. minute
let to_hours s = s /. hour
let to_days s = s /. day

let pp_duration fmt s =
  let abs = Float.abs s in
  if abs >= day then Format.fprintf fmt "%.2fd" (to_days s)
  else if abs >= hour then Format.fprintf fmt "%.2fh" (to_hours s)
  else if abs >= minute then Format.fprintf fmt "%.1fm" (to_minutes s)
  else Format.fprintf fmt "%.1fs" s
