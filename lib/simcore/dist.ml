let exponential rng ~mean =
  if mean <= 0.0 then invalid_arg "Dist.exponential: mean must be positive";
  let u = 1.0 -. Rng.unit_float rng in
  -.mean *. log u

let uniform rng ~lo ~hi =
  if hi < lo then invalid_arg "Dist.uniform: hi < lo";
  lo +. Rng.float rng (hi -. lo)

let log_uniform rng ~lo ~hi =
  if lo <= 0.0 || hi < lo then invalid_arg "Dist.log_uniform: need 0 < lo <= hi";
  exp (uniform rng ~lo:(log lo) ~hi:(log hi))

let normal rng ~mean ~stddev =
  let u1 = 1.0 -. Rng.unit_float rng in
  let u2 = Rng.unit_float rng in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (stddev *. z)

let lognormal rng ~mu ~sigma = exp (normal rng ~mean:mu ~stddev:sigma)

let categorical rng ~weights =
  let total = Array.fold_left (fun acc w ->
      if w < 0.0 then invalid_arg "Dist.categorical: negative weight";
      acc +. w)
      0.0 weights
  in
  if total <= 0.0 then invalid_arg "Dist.categorical: all weights zero";
  let target = Rng.float rng total in
  let n = Array.length weights in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.0

let bernoulli rng ~p =
  let p = Float.max 0.0 (Float.min 1.0 p) in
  Rng.unit_float rng < p
