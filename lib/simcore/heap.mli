(** Imperative binary min-heap over arbitrary elements.

    The heap is parameterised by a comparison function supplied at
    creation time.  Used by the event queue, the running-job set and the
    schedulers' internal priority orders.  All operations are the
    classic array-backed binary-heap operations: [push] and [pop] are
    O(log n), [peek] is O(1). *)

type 'a t
(** A mutable min-heap of ['a] values. *)

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp] (smallest first). *)

val length : 'a t -> int
(** Number of elements currently in the heap. *)

val is_empty : 'a t -> bool
(** [is_empty h] is [length h = 0]. *)

val push : 'a t -> 'a -> unit
(** [push h x] inserts [x]. *)

val peek : 'a t -> 'a option
(** [peek h] is the minimum element without removing it. *)

val peek_exn : 'a t -> 'a
(** Like {!peek}.  @raise Invalid_argument on an empty heap. *)

val pop : 'a t -> 'a option
(** [pop h] removes and returns the minimum element. *)

val pop_exn : 'a t -> 'a
(** Like {!pop}.  @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit
(** Remove all elements. *)

val to_list : 'a t -> 'a list
(** Snapshot of the heap contents in unspecified order. *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
(** [of_list ~cmp xs] builds a heap containing [xs] (O(n log n)). *)

val drain : 'a t -> 'a list
(** [drain h] pops every element, returning them in ascending order and
    leaving [h] empty. *)
