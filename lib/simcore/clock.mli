(** Monotonic wall-clock time for interval measurement.

    [Unix.gettimeofday] can jump (NTP adjustment, manual clock set)
    mid-measurement; the monotonic clock cannot.  Use this for every
    elapsed-time measurement in the repo — simulated time is a separate
    axis and never touches a real clock. *)

val monotonic_s : unit -> float
(** Seconds since an arbitrary fixed origin; strictly for differences. *)
