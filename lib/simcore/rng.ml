type t = { mutable state : int64 }

(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014.  Chosen for trivial state, good statistical
   quality at this scale, and cheap splitting. *)

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = mix seed }

let copy t = { state = t.state }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the low 62 bits to avoid modulo bias. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFFL in
  let rec draw () =
    let bits = Int64.to_int (Int64.logand (bits64 t) mask) in
    let value = bits mod n in
    if bits - value + (n - 1) >= 0 then value else draw ()
  in
  draw ()

let unit_float t =
  (* 53 random bits scaled into [0, 1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let float t x = unit_float t *. x
let bool t = Int64.logand (bits64 t) 1L = 1L
