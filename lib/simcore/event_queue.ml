type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = { heap : 'a entry Heap.t; mutable next_seq : int }

let compare_entry a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () = { heap = Heap.create ~cmp:compare_entry; next_seq = 0 }

let schedule q ~time payload =
  Heap.push q.heap { time; seq = q.next_seq; payload };
  q.next_seq <- q.next_seq + 1

let next_time q = Option.map (fun e -> e.time) (Heap.peek q.heap)
let pop q = Option.map (fun e -> (e.time, e.payload)) (Heap.pop q.heap)
let is_empty q = Heap.is_empty q.heap
let length q = Heap.length q.heap
