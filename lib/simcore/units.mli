(** Time units and conversions.

    All simulation times are [float] seconds since the start of the
    simulated period.  These helpers keep unit conversions explicit and
    avoid magic constants scattered through the code base. *)

val second : float
(** One second, the base unit (= 1.0). *)

val minute : float
(** Seconds in one minute. *)

val hour : float
(** Seconds in one hour. *)

val day : float
(** Seconds in one day. *)

val week : float
(** Seconds in one week. *)

val minutes : float -> float
(** [minutes m] is [m] minutes expressed in seconds. *)

val hours : float -> float
(** [hours h] is [h] hours expressed in seconds. *)

val days : float -> float
(** [days d] is [d] days expressed in seconds. *)

val weeks : float -> float
(** [weeks w] is [w] weeks expressed in seconds. *)

val to_minutes : float -> float
(** [to_minutes s] converts [s] seconds to minutes. *)

val to_hours : float -> float
(** [to_hours s] converts [s] seconds to hours. *)

val to_days : float -> float
(** [to_days s] converts [s] seconds to days. *)

val pp_duration : Format.formatter -> float -> unit
(** [pp_duration fmt s] pretty-prints a duration in seconds using the
    most natural unit, e.g. ["2.5h"], ["13m"], ["45s"]. *)
