type 'v state = Pending | Ready of 'v | Failed of exn

(* Each key owns a promise cell with its own lock so waiting for one
   key never blocks computation of another. *)
type 'v cell = { m : Mutex.t; c : Condition.t; mutable state : 'v state }

type ('k, 'v) t = { lock : Mutex.t; table : ('k, 'v cell) Hashtbl.t }

let create ?(size = 64) () =
  { lock = Mutex.create (); table = Hashtbl.create size }

let await cell =
  Mutex.lock cell.m;
  let rec go () =
    match cell.state with
    | Pending ->
        Condition.wait cell.c cell.m;
        go ()
    | Ready v ->
        Mutex.unlock cell.m;
        v
    | Failed e ->
        Mutex.unlock cell.m;
        raise e
  in
  go ()

let get t key thunk =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.table key with
  | Some cell ->
      Mutex.unlock t.lock;
      await cell
  | None ->
      let cell =
        { m = Mutex.create (); c = Condition.create (); state = Pending }
      in
      Hashtbl.add t.table key cell;
      Mutex.unlock t.lock;
      let outcome = try Ready (thunk ()) with e -> Failed e in
      Mutex.lock cell.m;
      cell.state <- outcome;
      Condition.broadcast cell.c;
      Mutex.unlock cell.m;
      (match outcome with
      | Ready v -> v
      | Failed e -> raise e
      | Pending -> assert false)

let find_opt t key =
  Mutex.lock t.lock;
  let cell = Hashtbl.find_opt t.table key in
  Mutex.unlock t.lock;
  match cell with
  | None -> None
  | Some cell -> (
      Mutex.lock cell.m;
      let s = cell.state in
      Mutex.unlock cell.m;
      match s with Ready v -> Some v | Pending | Failed _ -> None)

let bindings t =
  Mutex.lock t.lock;
  let cells = Hashtbl.fold (fun k cell acc -> (k, cell) :: acc) t.table [] in
  Mutex.unlock t.lock;
  List.filter_map
    (fun (k, cell) ->
      Mutex.lock cell.m;
      let s = cell.state in
      Mutex.unlock cell.m;
      match s with Ready v -> Some (k, v) | Pending | Failed _ -> None)
    cells

let length t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.lock;
  n

let clear t =
  Mutex.lock t.lock;
  Hashtbl.reset t.table;
  Mutex.unlock t.lock
