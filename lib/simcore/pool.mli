(** Fixed-size domain work pool.

    A pool spawns [jobs - 1] worker domains once at [create] and reuses
    them across any number of batches; the calling domain participates
    in every batch, so a pool of [jobs = n] runs at most [n] work items
    concurrently.  With [jobs = 1] no domain is ever spawned and
    [map]/[iter] degenerate to plain in-order sequential execution in
    the caller — bit-for-bit the pre-pool behaviour.

    Work items must not depend on execution order (they may run in any
    interleaving), but [map] always returns results in input order.
    Batches are serialized: concurrent [map]/[iter] calls on one pool
    queue up behind each other.

    The pool itself performs no I/O and draws no randomness; combined
    with item-order-independent work (e.g. seed-deterministic
    simulations memoized by key) results are identical for every value
    of [jobs]. *)

type t

module Span : sig
  type t = {
    domain : int;  (** draining slot: 0 = submitting domain, 1.. = workers *)
    batch : int;  (** batch sequence number (per pool) *)
    task : int;  (** task index within the batch *)
    posted_s : float;  (** monotonic time the batch was posted *)
    start_s : float;  (** monotonic time the task started running *)
    stop_s : float;  (** monotonic time the task finished *)
  }

  val wait_s : t -> float
  (** Queue wait: batch post to task start. *)

  val busy_s : t -> float
end

val create : jobs:int -> t
(** [create ~jobs] spawns [max jobs 1 - 1] worker domains.  The pool
    must eventually be released with [shutdown] (idle workers block in
    a condition wait; they cost nothing but stay alive until then). *)

val jobs : t -> int
(** Concurrency width, including the calling domain; >= 1. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1], clamped to >= 1 — one
    core is left for the OS / the caller's other work. *)

val map : t -> f:('a -> 'b) -> 'a list -> 'b list
(** [map t ~f xs] applies [f] to every element of [xs] on the pool and
    returns the results in input order.  If one or more applications
    raise, the remaining items still run to completion, then the
    exception of the lowest-indexed failing item is re-raised (with its
    original backtrace) in the caller. *)

val iter : t -> f:('a -> unit) -> 'a list -> unit
(** [iter t ~f xs] is [map] with unit results. *)

val set_tracing : t -> bool -> unit
(** Turn per-task span recording on or off (initially off).  With
    tracing off the per-task overhead is one boolean test; with it on,
    each task records a {!Span.t} (wall-clock, so spans are
    inspection data — they are {e not} part of the deterministic
    output surface). *)

val spans : t -> Span.t list
(** Recorded spans in (batch, task) order — deterministic listing
    order even though the times inside are wall-clock. *)

val clear_spans : t -> unit

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent.  Subsequent
    [map]/[iter] calls raise [Invalid_argument]. *)

val with_pool : jobs:int -> (t -> 'r) -> 'r
(** [with_pool ~jobs f] runs [f] over a fresh pool and shuts it down
    afterwards, also on exception. *)
