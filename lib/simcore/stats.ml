module Running = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable sum : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { count = 0; mean = 0.0; m2 = 0.0; sum = 0.0;
      min = Float.infinity; max = Float.neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    t.sum <- t.sum +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let sum t = t.sum
  let mean t = if t.count = 0 then 0.0 else t.mean

  let min t =
    if t.count = 0 then invalid_arg "Stats.Running.min: empty" else t.min

  let max t =
    if t.count = 0 then invalid_arg "Stats.Running.max: empty" else t.max

  let stddev t =
    if t.count < 2 then 0.0 else sqrt (t.m2 /. float_of_int t.count)
end

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let max xs =
  if Array.length xs = 0 then invalid_arg "Stats.max: empty array";
  Array.fold_left Float.max Float.neg_infinity xs

module Timeline = struct
  (* All-float record: every mutable store below is an unboxed float
     write, so recording never allocates.  The min/max accumulators use
     infinities as "no positive-span value yet" sentinels instead of a
     bool flag (a non-float field would box the whole record). *)
  type t = {
    mutable last_time : float;
    mutable last_value : float;
    mutable integral : float;
    mutable vmin : float;  (* min over values held for positive time *)
    mutable vmax : float;
    start : float;
  }

  let create ~start =
    {
      last_time = start;
      last_value = 0.0;
      integral = 0.0;
      vmin = Float.infinity;
      vmax = Float.neg_infinity;
      start;
    }

  let record t ~now ~value =
    if now < t.last_time then
      invalid_arg "Stats.Timeline.record: time went backwards";
    if now > t.last_time then begin
      (* the previous value was held for a positive span *)
      if t.last_value < t.vmin then t.vmin <- t.last_value;
      if t.last_value > t.vmax then t.vmax <- t.last_value
    end;
    t.integral <- t.integral +. (t.last_value *. (now -. t.last_time));
    t.last_time <- now;
    t.last_value <- value

  let average t ~upto =
    let span = upto -. t.start in
    if span <= 0.0 then 0.0
    else
      let tail =
        if upto > t.last_time then t.last_value *. (upto -. t.last_time)
        else 0.0
      in
      (t.integral +. tail) /. span

  (* The current value joins the extremes only if it survives past
     [last_time]; the accumulated vmin/vmax already cover everything
     before. *)
  let min_value t ~upto =
    let m = if upto > t.last_time then Float.min t.vmin t.last_value
            else t.vmin
    in
    if m = Float.infinity then 0.0 else m

  let max_value t ~upto =
    let m = if upto > t.last_time then Float.max t.vmax t.last_value
            else t.vmax
    in
    if m = Float.neg_infinity then 0.0 else m
end
