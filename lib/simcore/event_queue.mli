(** Time-ordered event queue for discrete-event simulation.

    Events are delivered in non-decreasing time order; events scheduled
    for the same instant are delivered in insertion order (FIFO), which
    makes simulations deterministic regardless of heap internals. *)

type 'a t
(** A queue of events carrying payloads of type ['a]. *)

val create : unit -> 'a t

val schedule : 'a t -> time:float -> 'a -> unit
(** [schedule q ~time e] enqueues event [e] at [time].  Scheduling in
    the past relative to already-popped events is allowed (the queue
    itself is oblivious); drivers should not do it. *)

val next_time : 'a t -> float option
(** Time of the earliest pending event, if any. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event with its time. *)

val is_empty : 'a t -> bool
val length : 'a t -> int
