(** Summary statistics.

    Two flavours: a constant-space running accumulator ({!Running}) for
    means and extrema, and whole-sample helpers (percentiles, etc.) on
    float arrays.  A {!Timeline} accumulator computes time-weighted
    averages of a step function, used for average queue length. *)

module Running : sig
  type t
  (** Constant-space accumulator for count / mean / min / max / sum.
      Mean uses Welford's update for numerical stability. *)

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val mean : t -> float
  (** [mean t] is 0.0 when empty. *)

  val min : t -> float
  (** @raise Invalid_argument when empty. *)

  val max : t -> float
  (** @raise Invalid_argument when empty. *)

  val stddev : t -> float
  (** Population standard deviation; 0.0 when fewer than 2 samples. *)
end

val mean : float array -> float
(** 0.0 on the empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] is the [p]-th percentile ([0 <= p <= 100]) using
    linear interpolation between closest ranks.  Does not mutate [xs].
    @raise Invalid_argument on an empty array or [p] out of range. *)

val max : float array -> float
(** @raise Invalid_argument on the empty array. *)

module Timeline : sig
  type t
  (** Accumulates the time integral of a piecewise-constant signal,
      e.g. queue length over time. *)

  val create : start:float -> t
  val record : t -> now:float -> value:float -> unit
  (** [record t ~now ~value] states that the signal takes [value] from
      [now] onward.  Calls must have non-decreasing [now]. *)

  val average : t -> upto:float -> float
  (** Time-weighted average of the signal from [start] to [upto].
      0.0 when the window is empty. *)

  val min_value : t -> upto:float -> float
  val max_value : t -> upto:float -> float
  (** Extremes of the step signal over [start, upto], counting only
      values held for a positive span of time — a value overwritten at
      the instant it was recorded never existed on the time axis (so
      same-instant re-records cannot distort the extremes).  0.0 when
      the window is empty, matching [average]. *)
end
