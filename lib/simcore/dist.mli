(** Random distributions used by the workload generator.

    All samplers draw from an explicit {!Rng.t} so that workloads are
    reproducible and independent across generator streams. *)

val exponential : Rng.t -> mean:float -> float
(** [exponential rng ~mean] draws from Exp with the given mean.
    @raise Invalid_argument if [mean <= 0]. *)

val uniform : Rng.t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)].  @raise Invalid_argument if [hi < lo]. *)

val log_uniform : Rng.t -> lo:float -> hi:float -> float
(** Log-uniform in [\[lo, hi)]: uniform in log-space, so each decade is
    equally likely.  Requires [0 < lo <= hi]. *)

val normal : Rng.t -> mean:float -> stddev:float -> float
(** Gaussian via Box–Muller. *)

val lognormal : Rng.t -> mu:float -> sigma:float -> float
(** [exp] of a Gaussian with parameters [mu], [sigma]. *)

val categorical : Rng.t -> weights:float array -> int
(** [categorical rng ~weights] draws index [i] with probability
    proportional to [weights.(i)].  Weights must be non-negative and
    not all zero.  @raise Invalid_argument otherwise. *)

val bernoulli : Rng.t -> p:float -> bool
(** True with probability [p] (clamped to [\[0,1\]]). *)
