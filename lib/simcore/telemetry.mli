(** Decision-level telemetry primitives.

    Preallocated, allocation-free counters and fixed-bucket log2
    histograms behind one process-wide on/off switch.  When the switch
    is off every [incr]/[add]/[observe] is a single load plus a
    predictable branch — cheap enough to leave compiled into hot code
    (the perf-smoke budget is measured with telemetry compiled in).
    When it is on, recording writes into preallocated int storage and
    still never allocates.

    The switch is a plain (non-atomic) boolean: flip it from one domain
    before parallel work starts.  Counters and histograms themselves
    are single-writer — give each domain its own, or record only from
    the domain that owns the instrument (all current users do).

    {!Probe} is a separate, always-on instrument: a caller-owned
    mutable record that a search fills at iteration/leaf boundaries
    (see [Core.Search.run ?probe]).  "Off" for a probe is simply not
    passing one. *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Process-wide switch, initially off. *)

module Counter : sig
  type t

  val create : string -> t
  val name : t -> string

  val incr : t -> unit
  (** No-op while the telemetry switch is off. *)

  val add : t -> int -> unit
  (** No-op while the telemetry switch is off. *)

  val value : t -> int
  val reset : t -> unit
end

module Histogram : sig
  type t
  (** Fixed 63-bucket log2 histogram of non-negative ints.  Bucket 0
      holds values [<= 0]; bucket [b >= 1] holds values in
      [2^(b-1) .. 2^b - 1], with the top bucket extending to
      [max_int].  Observation is O(1) and allocation-free; storage is
      one preallocated int array. *)

  val buckets : int
  (** Number of buckets (63: one per magnitude bit of an OCaml int,
      plus bucket 0 for non-positive values). *)

  val bucket_of : int -> int
  (** [bucket_of v] is the bucket index [v] falls into (total map:
      negatives also land in bucket 0). *)

  val bucket_lo : int -> int
  val bucket_hi : int -> int
  (** Inclusive value range covered by a bucket index. *)

  val create : string -> t
  val name : t -> string

  val observe : t -> int -> unit
  (** No-op while the telemetry switch is off. *)

  val count : t -> int
  (** Observations recorded. *)

  val total : t -> int
  (** Sum of observed values. *)

  val bucket_count : t -> int -> int

  val percentile : t -> float -> float
  (** [percentile h p] ([0 <= p <= 100]) estimates the p-th percentile
      by linear interpolation inside the bucket where the cumulative
      count crosses the rank; 0.0 when empty.  Accurate to within one
      bucket width by construction.
      @raise Invalid_argument if [p] is out of range. *)

  val reset : t -> unit
end

module Probe : sig
  type t = {
    mutable nodes : int;  (** nodes visited by the last search *)
    mutable leaves : int;  (** complete schedules evaluated *)
    mutable iterations : int;  (** completed discrepancy iterations *)
    mutable budget : int;  (** the node budget L the search ran under *)
    mutable exhausted : bool;  (** whole tree explored within budget *)
    mutable improvements : int;
        (** number of incumbent improvements (>= 1: the heuristic path
            always records a first incumbent) *)
    mutable winner_iteration : int;
        (** discrepancy iteration that produced the final incumbent
            (0 = the pure heuristic path) *)
    mutable winner_depth : int;
        (** DDS: choice-depth of the forced discrepancy of the winning
            iteration; -1 for iteration 0 and for non-DDS algorithms *)
  }
  (** Caller-owned per-decision search-effort record.  The search
      overwrites every field on each run, so one preallocated probe can
      be reused across all decisions of a simulation; reading it is
      only meaningful between runs. *)

  val create : unit -> t
  val reset : t -> unit
end
