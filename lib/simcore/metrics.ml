(* Every instrument holds the bool ref it shares with its registry, so
   a record call is one load and a branch whatever the instrument kind.
   Gauges keep their level in a one-element float array: a mutable
   float field in a mixed record would box on every store, a float
   array store stays unboxed. *)

type counter = {
  c_name : string;
  c_help : string;
  c_switch : bool ref;
  mutable c_value : int;
}

type gauge = { g_name : string; g_help : string; g_switch : bool ref;
               g_cell : float array }

type histogram = {
  h_name : string;
  h_help : string;
  h_switch : bool ref;
  h_counts : int array;  (* length [Telemetry.Histogram.buckets] *)
  mutable h_count : int;
  mutable h_total : int;
}

type item = Counter of counter | Gauge of gauge | Histogram of histogram

type t = { switch : bool ref; mutable items : item list (* newest first *) }

let create ?(enabled = false) () = { switch = ref enabled; items = [] }
let enabled t = !(t.switch)
let set_enabled t v = t.switch := v

let item_name = function
  | Counter c -> c.c_name
  | Gauge g -> g.g_name
  | Histogram h -> h.h_name

let valid_name s =
  let ok_first c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
  in
  let ok c = ok_first c || (c >= '0' && c <= '9') in
  s <> ""
  && ok_first s.[0]
  && (let good = ref true in
      String.iter (fun c -> if not (ok c) then good := false) s;
      !good)

let register t name item =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name);
  if List.exists (fun i -> item_name i = name) t.items then
    invalid_arg (Printf.sprintf "Metrics: duplicate metric name %S" name);
  t.items <- item :: t.items

let counter t ?(help = "") name =
  let c = { c_name = name; c_help = help; c_switch = t.switch; c_value = 0 } in
  register t name (Counter c);
  c

let gauge t ?(help = "") name =
  let g =
    { g_name = name; g_help = help; g_switch = t.switch;
      g_cell = Array.make 1 0.0 }
  in
  register t name (Gauge g);
  g

let histogram t ?(help = "") name =
  let h =
    {
      h_name = name;
      h_help = help;
      h_switch = t.switch;
      h_counts = Array.make Telemetry.Histogram.buckets 0;
      h_count = 0;
      h_total = 0;
    }
  in
  register t name (Histogram h);
  h

let incr c = if !(c.c_switch) then c.c_value <- c.c_value + 1
let add c n = if !(c.c_switch) then c.c_value <- c.c_value + n
let counter_value c = c.c_value

let set g v = if !(g.g_switch) then g.g_cell.(0) <- v
let gauge_value g = g.g_cell.(0)

let observe h v =
  if !(h.h_switch) then begin
    let b = Telemetry.Histogram.bucket_of v in
    h.h_counts.(b) <- h.h_counts.(b) + 1;
    h.h_count <- h.h_count + 1;
    h.h_total <- h.h_total + v
  end

let histogram_count h = h.h_count
let histogram_total h = h.h_total

let histogram_percentile h p =
  (* same estimator as Telemetry.Histogram.percentile, over our own
     storage: linear interpolation inside the crossing bucket *)
  if p < 0.0 || p > 100.0 then
    invalid_arg "Metrics.histogram_percentile: p out of [0, 100]";
  if h.h_count = 0 then 0.0
  else begin
    let rank = p /. 100.0 *. float_of_int h.h_count in
    let cum = ref 0 in
    let result = ref 0.0 in
    (try
       for b = 0 to Telemetry.Histogram.buckets - 1 do
         let c = h.h_counts.(b) in
         if c > 0 then begin
           let below = float_of_int !cum in
           cum := !cum + c;
           if float_of_int !cum >= rank then begin
             let inside = Float.max 0.0 (rank -. below) in
             let frac = inside /. float_of_int c in
             let lo =
               if b = 0 then 0.0
               else float_of_int (Telemetry.Histogram.bucket_lo b)
             in
             let hi = float_of_int (Telemetry.Histogram.bucket_hi b) in
             result := lo +. (frac *. (hi -. lo));
             raise Exit
           end
         end
       done
     with Exit -> ());
    !result
  end

(* --- OpenMetrics text exposition --- *)

(* HELP text escaping per the exposition format: backslash and newline. *)
let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Gauge levels are seconds/lengths: print integers without a mantissa
   so expositions stay stable and grep-able. *)
let pp_float fmt v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Format.fprintf fmt "%.0f" v
  else Format.fprintf fmt "%g" v

let pp_header fmt ~name ~kind ~help =
  Format.fprintf fmt "# TYPE %s %s@." name kind;
  if help <> "" then Format.fprintf fmt "# HELP %s %s@." name (escape_help help)

let pp_item fmt = function
  | Counter c ->
      pp_header fmt ~name:c.c_name ~kind:"counter" ~help:c.c_help;
      Format.fprintf fmt "%s_total %d@." c.c_name c.c_value
  | Gauge g ->
      pp_header fmt ~name:g.g_name ~kind:"gauge" ~help:g.g_help;
      Format.fprintf fmt "%s %a@." g.g_name pp_float g.g_cell.(0)
  | Histogram h ->
      pp_header fmt ~name:h.h_name ~kind:"histogram" ~help:h.h_help;
      let cum = ref 0 in
      for b = 0 to Telemetry.Histogram.buckets - 1 do
        if h.h_counts.(b) > 0 then begin
          cum := !cum + h.h_counts.(b);
          Format.fprintf fmt "%s_bucket{le=\"%d\"} %d@." h.h_name
            (Telemetry.Histogram.bucket_hi b)
            !cum
        end
      done;
      Format.fprintf fmt "%s_bucket{le=\"+Inf\"} %d@." h.h_name h.h_count;
      Format.fprintf fmt "%s_count %d@." h.h_name h.h_count;
      Format.fprintf fmt "%s_sum %d@." h.h_name h.h_total

let pp_openmetrics fmt regs =
  List.iter (fun t -> List.iter (pp_item fmt) (List.rev t.items)) regs;
  Format.fprintf fmt "# EOF@."
