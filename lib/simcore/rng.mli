(** Deterministic pseudo-random number generation.

    A self-contained splitmix64 generator so that every experiment is
    exactly reproducible from a seed, independent of the OCaml stdlib
    [Random] state and of program start-up order.  Each consumer should
    [split] its own stream so that adding draws in one subsystem never
    perturbs another. *)

type t
(** A mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] is a fresh generator.  Equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing
    [t] by one draw. *)

val copy : t -> t
(** [copy t] duplicates the current state (both then produce the same
    stream). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  @raise Invalid_argument if
    [n <= 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val unit_float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
(** Fair coin flip. *)
