(** Domain-safe, compute-once memo table.

    [get t key thunk] returns the cached value for [key], forcing
    [thunk] at most once per key across all domains: the first caller
    computes (outside any table-wide lock, so distinct keys compute in
    parallel) while concurrent callers for the same key block until the
    value — or the exception — is ready.  A raising thunk is also
    recorded once; every caller for that key re-raises the same
    exception (the table's thunks are deterministic, so retrying could
    only fail identically). *)

type ('k, 'v) t

val create : ?size:int -> unit -> ('k, 'v) t
(** [size] is the initial hash-table capacity (default 64). *)

val get : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** [None] if the key is absent, still computing, or failed. *)

val bindings : ('k, 'v) t -> ('k * 'v) list
(** All [Ready] bindings, unspecified order (sort by key for a
    deterministic listing).  In-flight and failed keys are skipped. *)

val length : ('k, 'v) t -> int
(** Number of keys present (including in-flight and failed ones). *)

val clear : ('k, 'v) t -> unit
(** Drop every binding.  In-flight computations complete normally for
    callers already attached to them, but later [get]s recompute. *)
