let monotonic_s () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9
