(** Run-health metric registry.

    A named-metric registry for one simulation run: counters, gauges
    and histograms (the histograms reuse {!Telemetry.Histogram}'s
    63-bucket log2 geometry), plus an OpenMetrics/Prometheus text
    exposition writer.  Unlike {!Telemetry}, whose single process-wide
    switch guards globally shared instruments, a registry is a
    per-run instance with its own switch — runs executing in parallel
    on the domain pool each own their registry and never contend.

    The section-7 observability contract applies: with the registry's
    switch off every [incr]/[set]/[observe] is a single load plus a
    predictable branch; with it on, recording writes into preallocated
    storage and never allocates per observation (registration
    allocates, observation does not — tested).

    Instruments are single-writer, like {!Telemetry}'s: record only
    from the domain that owns the run. *)

type t
(** A registry: an ordered collection of named instruments sharing one
    on/off switch. *)

val create : ?enabled:bool -> unit -> t
(** Fresh empty registry (default [enabled = false]). *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

(** {2 Instruments}

    Metric names must match the OpenMetrics charset
    [[a-zA-Z_:][a-zA-Z0-9_:]*] and be unique within their registry;
    registration raises [Invalid_argument] otherwise.  Counter names
    are given without the ["_total"] suffix (the exposition writer
    appends it). *)

type counter
type gauge
type histogram

val counter : t -> ?help:string -> string -> counter
(** Monotone int accumulator. *)

val gauge : t -> ?help:string -> string -> gauge
(** Last-write-wins float level (queue depth, busy nodes, ...). *)

val histogram : t -> ?help:string -> string -> histogram
(** Distribution of non-negative ints over
    {!Telemetry.Histogram.buckets} log2 buckets. *)

val incr : counter -> unit
val add : counter -> int -> unit
(** No-ops while the registry's switch is off. *)

val counter_value : counter -> int

val set : gauge -> float -> unit
(** No-op while the registry's switch is off. *)

val gauge_value : gauge -> float

val observe : histogram -> int -> unit
(** No-op while the registry's switch is off. *)

val histogram_count : histogram -> int
(** Observations recorded. *)

val histogram_total : histogram -> int
(** Sum of observed values. *)

val histogram_percentile : histogram -> float -> float
(** Same estimator as {!Telemetry.Histogram.percentile}.
    @raise Invalid_argument if the percentile is out of [0, 100]. *)

(** {2 Exposition} *)

val pp_openmetrics : Format.formatter -> t list -> unit
(** OpenMetrics text exposition of every instrument of every registry,
    in registration order, terminated by [# EOF].  Counters expose
    [name_total]; histograms expose cumulative [name_bucket{le="..."}]
    series over the occupied buckets plus [le="+Inf"], [name_count]
    and [name_sum].  Registries are emitted in list order; callers
    keep metric names distinct across the registries they expose
    together. *)
