(* The switch is read on every record call, so it is a bare bool ref:
   one load and a branch the predictor learns immediately.  Records are
   writes into preallocated int storage — nothing below allocates after
   [create]. *)

let switch = ref false
let enabled () = !switch
let set_enabled v = switch := v

module Counter = struct
  type t = { name : string; mutable value : int }

  let create name = { name; value = 0 }
  let name t = t.name
  let incr t = if !switch then t.value <- t.value + 1
  let add t n = if !switch then t.value <- t.value + n
  let value t = t.value
  let reset t = t.value <- 0
end

module Histogram = struct
  (* Bucket 0 (v <= 0) plus one bucket per magnitude bit: max_int has
     [Sys.int_size - 1 = 62] significant bits, so 63 buckets cover
     every OCaml int and every index is reachable — a 64th would have
     an unrepresentable lower bound (1 lsl 62 overflows). *)
  let buckets = 63

  type t = {
    name : string;
    counts : int array;  (* length [buckets] *)
    mutable count : int;
    mutable total : int;
  }

  (* floor(log2 v) + 1 for v >= 1; 0 for v <= 0.  The shift walk beats
     a float log and cannot disagree with the bucket bounds below. *)
  let bucket_of v =
    if v <= 0 then 0
    else begin
      let b = ref 0 in
      let v = ref v in
      while !v > 0 do
        incr b;
        v := !v lsr 1
      done;
      if !b > buckets - 1 then buckets - 1 else !b
    end

  let bucket_lo b =
    if b <= 0 then min_int else 1 lsl (b - 1)

  let bucket_hi b =
    if b <= 0 then 0
    else if b >= buckets - 1 then max_int
    else (1 lsl b) - 1

  let create name = { name; counts = Array.make buckets 0; count = 0; total = 0 }
  let name t = t.name

  let observe t v =
    if !switch then begin
      let b = bucket_of v in
      t.counts.(b) <- t.counts.(b) + 1;
      t.count <- t.count + 1;
      t.total <- t.total + v
    end

  let count t = t.count
  let total t = t.total
  let bucket_count t b = t.counts.(b)

  let percentile t p =
    if p < 0.0 || p > 100.0 then
      invalid_arg "Telemetry.Histogram.percentile: p out of [0, 100]";
    if t.count = 0 then 0.0
    else begin
      let rank = p /. 100.0 *. float_of_int t.count in
      let cum = ref 0 in
      let result = ref 0.0 in
      (try
         for b = 0 to buckets - 1 do
           let c = t.counts.(b) in
           if c > 0 then begin
             let below = float_of_int !cum in
             cum := !cum + c;
             if float_of_int !cum >= rank then begin
               let inside = Float.max 0.0 (rank -. below) in
               let frac = inside /. float_of_int c in
               let lo = if b = 0 then 0.0 else float_of_int (bucket_lo b) in
               let hi = float_of_int (bucket_hi b) in
               result := lo +. (frac *. (hi -. lo));
               raise Exit
             end
           end
         done
       with Exit -> ());
      !result
    end

  let reset t =
    Array.fill t.counts 0 buckets 0;
    t.count <- 0;
    t.total <- 0
end

module Probe = struct
  type t = {
    mutable nodes : int;
    mutable leaves : int;
    mutable iterations : int;
    mutable budget : int;
    mutable exhausted : bool;
    mutable improvements : int;
    mutable winner_iteration : int;
    mutable winner_depth : int;
  }

  let reset t =
    t.nodes <- 0;
    t.leaves <- 0;
    t.iterations <- 0;
    t.budget <- 0;
    t.exhausted <- false;
    t.improvements <- 0;
    t.winner_iteration <- 0;
    t.winner_depth <- -1

  let create () =
    {
      nodes = 0;
      leaves = 0;
      iterations = 0;
      budget = 0;
      exhausted = false;
      improvements = 0;
      winner_iteration = 0;
      winner_depth = -1;
    }
end
