module Span = struct
  type t = {
    domain : int;
    batch : int;
    task : int;
    posted_s : float;
    start_s : float;
    stop_s : float;
  }

  let wait_s s = s.start_s -. s.posted_s
  let busy_s s = s.stop_s -. s.start_s
end

(* One batch of work.  Tasks are claimed by a fetch-and-add on [next];
   [completed] is guarded by the pool mutex so the submitter can wait
   for the last task under the same lock the workers signal on. *)
type batch = {
  seq : int;
  posted_s : float;  (* 0.0 when tracing is off *)
  tasks : (unit -> unit) array;
  next : int Atomic.t;
  mutable completed : int;
}

type t = {
  width : int;
  m : Mutex.t;
  work_available : Condition.t; (* new batch posted, or shutdown *)
  batch_done : Condition.t; (* a batch completed / was cleared *)
  mutable current : batch option;
  mutable stop : bool;
  mutable joined : bool;
  mutable workers : unit Domain.t array;
  mutable batch_seq : int;
  mutable trace : bool;
  mutable spans : Span.t list; (* newest first; guarded by [m] *)
}

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

(* Run every still-unclaimed task of [b].  Tasks never raise (they are
   wrapped by [map]); each completion is recorded under the lock so the
   final one can wake the submitter.  [who] is the draining domain's
   slot (0 = the submitting domain) for span attribution; with tracing
   off the only overhead is one boolean test per task. *)
let drain t ~who b =
  let n = Array.length b.tasks in
  let rec go () =
    let i = Atomic.fetch_and_add b.next 1 in
    if i < n then begin
      let traced = t.trace in
      let t0 = if traced then Clock.monotonic_s () else 0.0 in
      b.tasks.(i) ();
      let t1 = if traced then Clock.monotonic_s () else 0.0 in
      Mutex.lock t.m;
      if traced then
        t.spans <-
          {
            Span.domain = who;
            batch = b.seq;
            task = i;
            posted_s = b.posted_s;
            start_s = t0;
            stop_s = t1;
          }
          :: t.spans;
      b.completed <- b.completed + 1;
      if b.completed = n then Condition.broadcast t.batch_done;
      Mutex.unlock t.m;
      go ()
    end
  in
  go ()

let worker t ~who =
  let rec loop () =
    Mutex.lock t.m;
    let rec await () =
      if t.stop then None
      else
        match t.current with
        | Some b when Atomic.get b.next < Array.length b.tasks -> Some b
        | _ ->
            Condition.wait t.work_available t.m;
            await ()
    in
    let claimed = await () in
    Mutex.unlock t.m;
    match claimed with
    | None -> ()
    | Some b ->
        drain t ~who b;
        loop ()
  in
  loop ()

let create ~jobs =
  let width = max jobs 1 in
  let t =
    {
      width;
      m = Mutex.create ();
      work_available = Condition.create ();
      batch_done = Condition.create ();
      current = None;
      stop = false;
      joined = false;
      workers = [||];
      batch_seq = 0;
      trace = false;
      spans = [];
    }
  in
  t.workers <-
    Array.init (width - 1) (fun i ->
        Domain.spawn (fun () -> worker t ~who:(i + 1)));
  t

let jobs t = t.width

let set_tracing t v =
  Mutex.lock t.m;
  t.trace <- v;
  Mutex.unlock t.m

let spans t =
  Mutex.lock t.m;
  let spans = t.spans in
  Mutex.unlock t.m;
  List.sort
    (fun (a : Span.t) (b : Span.t) ->
      compare (a.batch, a.task) (b.batch, b.task))
    spans

let clear_spans t =
  Mutex.lock t.m;
  t.spans <- [];
  Mutex.unlock t.m

(* Post [tasks], take part in running them, and wait for stragglers.
   Batches are serialized on [current]. *)
let run_batch t tasks =
  let n = Array.length tasks in
  if n > 0 then begin
    Mutex.lock t.m;
    if t.stop then begin
      Mutex.unlock t.m;
      invalid_arg "Simcore.Pool: pool is shut down"
    end;
    while t.current <> None do
      Condition.wait t.batch_done t.m
    done;
    let b =
      {
        seq = t.batch_seq;
        posted_s = (if t.trace then Clock.monotonic_s () else 0.0);
        tasks;
        next = Atomic.make 0;
        completed = 0;
      }
    in
    t.batch_seq <- t.batch_seq + 1;
    t.current <- Some b;
    Condition.broadcast t.work_available;
    Mutex.unlock t.m;
    drain t ~who:0 b;
    Mutex.lock t.m;
    while b.completed < n do
      Condition.wait t.batch_done t.m
    done;
    t.current <- None;
    (* wake any submitter queued behind this batch *)
    Condition.broadcast t.batch_done;
    Mutex.unlock t.m
  end

let map t ~f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let results = Array.make n None in
  let errors = Array.make n None in
  let tasks =
    Array.init n (fun i () ->
        match f items.(i) with
        | v -> results.(i) <- Some v
        | exception e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()))
  in
  run_batch t tasks;
  Array.iter
    (function
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
    errors;
  List.init n (fun i ->
      match results.(i) with
      | Some v -> v
      | None -> assert false (* no error above => every slot filled *))

let iter t ~f xs = ignore (map t ~f xs : unit list)

let shutdown t =
  Mutex.lock t.m;
  let first = not t.joined in
  t.joined <- true;
  t.stop <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.m;
  if first then Array.iter Domain.join t.workers

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
