(** Relaxed backfill (Ward, Mahood & West, JSSPP 2002).

    Like EASY backfill, but a backfill candidate is allowed to push the
    head job's scheduled start back by up to a relaxation allowance — a
    configurable fraction of the head's estimated runtime.  A small
    relaxation recovers utilization lost to the hard reservation at a
    bounded cost in head-job delay; a large one degenerates toward
    no-reservation greedy scheduling. *)

val policy : ?relaxation:float -> unit -> Policy.t
(** [relaxation] is the allowed delay as a fraction of the head job's
    estimated runtime (default 0.5, as in the original paper's favoured
    setting).  @raise Invalid_argument if negative. *)
