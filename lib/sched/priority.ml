type t = {
  name : string;
  compare :
    now:float ->
    r_star:(Workload.Job.t -> float) ->
    Workload.Job.t ->
    Workload.Job.t ->
    int;
}

let tie_break a b = Workload.Job.compare_submit a b

let fcfs =
  { name = "fcfs"; compare = (fun ~now:_ ~r_star:_ a b -> tie_break a b) }

let sjf =
  {
    name = "sjf";
    compare =
      (fun ~now:_ ~r_star a b ->
        let c = Float.compare (r_star a) (r_star b) in
        if c <> 0 then c else tie_break a b);
  }

let expansion_factor ~now ~r_star (j : Workload.Job.t) =
  let wait = Float.max 0.0 (now -. j.submit) in
  let runtime = Float.max (r_star j) Simcore.Units.minute in
  1.0 +. (wait /. runtime)

let lxf =
  {
    name = "lxf";
    compare =
      (fun ~now ~r_star a b ->
        let c =
          Float.compare
            (expansion_factor ~now ~r_star b)
            (expansion_factor ~now ~r_star a)
        in
        if c <> 0 then c else tie_break a b);
  }

let lxf_w ~weight_per_hour =
  let score ~now ~r_star j =
    let wait_hours = Simcore.Units.to_hours (Float.max 0.0 (now -. j.Workload.Job.submit)) in
    expansion_factor ~now ~r_star j +. (weight_per_hour *. wait_hours)
  in
  {
    name = Printf.sprintf "lxf&w(%.3g)" weight_per_hour;
    compare =
      (fun ~now ~r_star a b ->
        let c = Float.compare (score ~now ~r_star b) (score ~now ~r_star a) in
        if c <> 0 then c else tie_break a b);
  }
