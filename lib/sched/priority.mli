(** Job priority functions for priority-backfill policies.

    A priority orders the waiting queue; [compare] sorts
    higher-priority jobs first.  All comparators break ties by
    submission order (and finally job id) so queue orders are total and
    deterministic. *)

type t = {
  name : string;
  compare :
    now:float ->
    r_star:(Workload.Job.t -> float) ->
    Workload.Job.t ->
    Workload.Job.t ->
    int;
}

val fcfs : t
(** First come, first served. *)

val sjf : t
(** Shortest estimated runtime first.  Known to starve long jobs. *)

val lxf : t
(** Largest expansion factor (slowdown) first.  The expansion factor
    of a waiting job is [(wait + R) / max(R, 1min)] with R the
    estimated runtime — the bounded
    slowdown it would have if started now. *)

val lxf_w : weight_per_hour:float -> t
(** LXF plus a small additive weight for each hour of waiting time
    (the paper's LXF&W). *)

val expansion_factor :
  now:float -> r_star:(Workload.Job.t -> float) -> Workload.Job.t -> float
(** The bounded expansion factor used by {!lxf}. *)
