let policy ?(threshold = 3.0) () =
  Policy.make
    ~name:(Printf.sprintf "selective-backfill(xf>=%.1f)" threshold)
    ~decide:(fun ctx ->
      let profile = Policy.profile_of ctx in
      let start_now = ref [] in
      (* FCFS order; starved jobs (large expansion factor) get
         reservations, everything else backfills around them. *)
      List.iter
        (fun (j : Workload.Job.t) ->
          let duration = Float.max (ctx.r_star j) 1.0 in
          let xf = Priority.expansion_factor ~now:ctx.now ~r_star:ctx.r_star j in
          if Cluster.Profile.fits_at profile ~at:ctx.now ~nodes:j.nodes ~duration
          then begin
            Cluster.Profile.reserve profile ~at:ctx.now ~nodes:j.nodes ~duration;
            start_now := j :: !start_now
          end
          else if xf >= threshold then begin
            let s =
              Cluster.Profile.earliest_start profile ~nodes:j.nodes ~duration
            in
            Cluster.Profile.reserve profile ~at:s ~nodes:j.nodes ~duration
          end)
        ctx.waiting;
      List.rev !start_now)
