(** Conservative backfill: every queued job holds a reservation, so a
    backfilled job can never delay *any* earlier-arriving job.  The
    classic low-risk/low-reward end of the backfill spectrum, included
    as an extra baseline for the ablation benches. *)

val policy : ?priority:Priority.t -> unit -> Policy.t
(** Defaults to FCFS priority. *)
