let queue_rank ~boundaries r =
  let rec scan i = function
    | [] -> i
    | b :: rest -> if r <= b then i else scan (i + 1) rest
  in
  scan 0 boundaries

let default_boundaries = [ Simcore.Units.hour; Simcore.Units.hours 5.0 ]

let policy ?(boundaries = default_boundaries) ?(reservations = 1) () =
  let priority =
    {
      Priority.name = "multi-queue";
      compare =
        (fun ~now:_ ~r_star a b ->
          let c =
            Int.compare
              (queue_rank ~boundaries (r_star a))
              (queue_rank ~boundaries (r_star b))
          in
          if c <> 0 then c else Workload.Job.compare_submit a b);
    }
  in
  let inner = Backfill.policy ~reservations priority in
  Policy.make
    ~name:(Printf.sprintf "multi-queue-backfill(%d queues)"
             (List.length boundaries + 1))
    ~decide:inner.Policy.decide
