type plan = {
  start_now : Workload.Job.t list;
  reserved : (Workload.Job.t * float) list;
}

let plan ~reservations ~priority (ctx : Policy.context) =
  let profile = Policy.profile_of ctx in
  let ordered =
    List.stable_sort
      (priority.Priority.compare ~now:ctx.now ~r_star:ctx.r_star)
      ctx.waiting
  in
  let remaining = ref reservations in
  let start_now = ref [] in
  let reserved = ref [] in
  List.iter
    (fun (j : Workload.Job.t) ->
      let duration = Float.max (ctx.r_star j) 1.0 in
      if Cluster.Profile.fits_at profile ~at:ctx.now ~nodes:j.nodes ~duration
      then begin
        Cluster.Profile.reserve profile ~at:ctx.now ~nodes:j.nodes ~duration;
        start_now := j :: !start_now
      end
      else if !remaining > 0 then begin
        let s =
          Cluster.Profile.earliest_start profile ~nodes:j.nodes ~duration
        in
        Cluster.Profile.reserve profile ~at:s ~nodes:j.nodes ~duration;
        reserved := (j, s) :: !reserved;
        decr remaining
      end)
    ordered;
  { start_now = List.rev !start_now; reserved = List.rev !reserved }

let policy ?(reservations = 1) priority =
  let name =
    if reservations = 1 then
      Printf.sprintf "%s-backfill" (String.uppercase_ascii priority.Priority.name)
    else
      Printf.sprintf "%s-backfill/res=%d"
        (String.uppercase_ascii priority.Priority.name)
        reservations
  in
  Policy.make ~name ~decide:(fun ctx ->
      (plan ~reservations ~priority ctx).start_now)

let fcfs = policy Priority.fcfs
let lxf = policy Priority.lxf
let sjf = policy Priority.sjf
