(** Priority backfill (EASY-style), the paper's baseline family.

    Jobs are considered in priority order.  The first [reservations]
    jobs that cannot start immediately receive a *scheduled start time*
    — a reservation carved into the availability profile at the
    earliest instant enough nodes are free for the job's full estimated
    duration.  Remaining jobs may start now only if they fit the
    profile without delaying any reservation (backfilling).

    The paper's FCFS-backfill and LXF-backfill both use a single
    reservation ("we do not find more reservations to improve the
    performance"); [reservations = max_int] gives conservative
    backfill. *)

type plan = {
  start_now : Workload.Job.t list;  (** jobs to start at the decision time *)
  reserved : (Workload.Job.t * float) list;
      (** jobs given a scheduled start time, with that time *)
}

val plan :
  reservations:int ->
  priority:Priority.t ->
  Policy.context ->
  plan
(** Full backfill schedule at one decision point (exposed so tests and
    the Figure-5-style analyses can inspect reservations). *)

val policy : ?reservations:int -> Priority.t -> Policy.t
(** [policy priority] is the backfill scheduling policy (default one
    reservation).  Its name is e.g. ["FCFS-backfill"]. *)

val fcfs : Policy.t
(** FCFS-backfill, one reservation. *)

val lxf : Policy.t
(** LXF-backfill, one reservation. *)

val sjf : Policy.t
(** SJF-backfill, one reservation (starvation-prone; for comparisons). *)
