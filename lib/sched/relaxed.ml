let policy ?(relaxation = 0.5) () =
  if relaxation < 0.0 then invalid_arg "Relaxed.policy: negative relaxation";
  let name = Printf.sprintf "relaxed-backfill(%.2f)" relaxation in
  Policy.make ~name ~decide:(fun ctx ->
      match ctx.Policy.waiting with
      | [] -> []
      | head :: rest ->
          let duration (j : Workload.Job.t) = Float.max (ctx.r_star j) 1.0 in
          (* Profile WITHOUT any reservation: candidates are accepted as
             long as the head's recomputed earliest start stays within
             the allowance of its unobstructed earliest start. *)
          let profile = Policy.profile_of ctx in
          let head_d = duration head in
          let unobstructed =
            Cluster.Profile.earliest_start profile ~nodes:head.nodes
              ~duration:head_d
          in
          if unobstructed <= ctx.now then begin
            (* head runs immediately; behave exactly like EASY *)
            Cluster.Profile.reserve profile ~at:ctx.now ~nodes:head.nodes
              ~duration:head_d;
            head
            :: List.filter
                 (fun (j : Workload.Job.t) ->
                   let d = duration j in
                   if Cluster.Profile.fits_at profile ~at:ctx.now
                        ~nodes:j.nodes ~duration:d
                   then begin
                     Cluster.Profile.reserve profile ~at:ctx.now
                       ~nodes:j.nodes ~duration:d;
                     true
                   end
                   else false)
                 rest
          end
          else begin
            let deadline = unobstructed +. (relaxation *. head_d) in
            let started = ref [] in
            List.iter
              (fun (j : Workload.Job.t) ->
                let d = duration j in
                if Cluster.Profile.fits_at profile ~at:ctx.now ~nodes:j.nodes
                     ~duration:d
                then begin
                  (* tentatively start it and check the head's new
                     earliest start against the relaxed deadline *)
                  let trial = Cluster.Profile.copy profile in
                  Cluster.Profile.reserve trial ~at:ctx.now ~nodes:j.nodes
                    ~duration:d;
                  let delayed =
                    Cluster.Profile.earliest_start trial ~nodes:head.nodes
                      ~duration:head_d
                  in
                  if delayed <= deadline +. 1e-6 then begin
                    Cluster.Profile.reserve profile ~at:ctx.now ~nodes:j.nodes
                      ~duration:d;
                    started := j :: !started
                  end
                end)
              rest;
            List.rev !started
          end)
