(** Selective backfill (Srinivasan et al., JSSPP 2002).

    No job holds a reservation until its expansion factor crosses a
    starvation threshold; past the threshold it is treated as a
    priority job and reserved.  With the threshold at the average
    expansion factor of recently completed jobs the policy behaves very
    much like LXF-backfill on these workloads (which is what the paper
    reports); we expose a fixed threshold for simplicity and let the
    caller tune it. *)

val policy : ?threshold:float -> unit -> Policy.t
(** [threshold] is the expansion factor beyond which a waiting job is
    granted a reservation (default 3.0).  Queue order is FCFS. *)
