(** The on-line scheduling policy interface.

    A policy is consulted at every decision point (job arrival or
    departure).  It sees the current time, the waiting queue in submit
    order, the running set, and the runtime estimator [r_star] the
    simulation was configured with (R* = T for actual runtimes, R* = R
    for user estimates).  It returns the waiting jobs to start *now*;
    the engine validates that they fit the free nodes.

    Policies must be deterministic functions of their arguments (plus
    any internal state they carry); the engine may call [decide] any
    number of times. *)

type context = {
  now : float;
  waiting : Workload.Job.t list;  (** submit order *)
  running : Cluster.Running_set.t;
  r_star : Workload.Job.t -> float;  (** scheduler-visible runtime *)
}

type t = {
  name : string;
  decide : context -> Workload.Job.t list;
  probe : Simcore.Telemetry.Probe.t option;
      (** search-effort record the policy overwrites on every [decide]
          ([None] for policies that do not search).  The engine
          snapshots it into the decision log right after each
          decision. *)
  metrics : Simcore.Metrics.t option;
      (** policy-owned run-health metric registry ([None] for plain
          policies).  Created disabled; a reporting surface enables it
          before the run and exposes it alongside the engine's own
          registry ([Simcore.Metrics.pp_openmetrics] takes a list). *)
}

val make : name:string -> decide:(context -> Workload.Job.t list) -> t
(** A policy without a probe or metrics ([probe = metrics = None]). *)

val with_probe : t -> Simcore.Telemetry.Probe.t -> t
(** Attach the search-effort record the policy's [decide] fills. *)

val with_metrics : t -> Simcore.Metrics.t -> t
(** Attach the metric registry the policy's [decide] records into. *)

val profile_of : context -> Cluster.Profile.t
(** Availability profile implied by the running set at [ctx.now]. *)

val run_now : t
(** Trivial greedy policy: start jobs in FCFS order while they fit,
    no reservations (pure space sharing, starves wide jobs).  Useful
    as a worst-case baseline and in tests. *)
