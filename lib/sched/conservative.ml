let policy ?(priority = Priority.fcfs) () =
  let inner = Backfill.policy ~reservations:max_int priority in
  Policy.make
    ~name:(Printf.sprintf "conservative-%s" priority.Priority.name)
    ~decide:inner.Policy.decide
