type context = {
  now : float;
  waiting : Workload.Job.t list;
  running : Cluster.Running_set.t;
  r_star : Workload.Job.t -> float;
}

type t = {
  name : string;
  decide : context -> Workload.Job.t list;
  probe : Simcore.Telemetry.Probe.t option;
  metrics : Simcore.Metrics.t option;
}

let make ~name ~decide = { name; decide; probe = None; metrics = None }
let with_probe t probe = { t with probe = Some probe }
let with_metrics t metrics = { t with metrics = Some metrics }

let profile_of ctx =
  let machine = Cluster.Running_set.machine ctx.running in
  Cluster.Profile.of_running ~now:ctx.now
    ~capacity:machine.Cluster.Machine.nodes
    (Cluster.Running_set.releases ctx.running ~now:ctx.now)

let run_now =
  make ~name:"run-now" ~decide:(fun ctx ->
      let free = ref (Cluster.Running_set.free_nodes ctx.running) in
      List.filter
        (fun (j : Workload.Job.t) ->
          if j.nodes <= !free then begin
            free := !free - j.nodes;
            true
          end
          else false)
        ctx.waiting)
