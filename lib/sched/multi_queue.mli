(** Queue-based priority scheduling (the production-scheduler style the
    paper's introduction argues against, cf. PBS / LSF).

    Jobs are routed to queues by estimated runtime (e.g. short <= 1h,
    medium <= 5h, long); queues are served in priority order — shorter
    queues first — FCFS within a queue, with EASY backfill across the
    whole waiting set.  Improves responsiveness for short jobs but can
    starve the long queue, which is exactly the failure mode the
    goal-oriented policies are designed to avoid. *)

val queue_rank : boundaries:float list -> float -> int
(** [queue_rank ~boundaries r] is the index of the queue for estimated
    runtime [r]: the first boundary at or above it, or
    [length boundaries] when none is. *)

val policy : ?boundaries:float list -> ?reservations:int -> unit -> Policy.t
(** Default boundaries: 1 hour and 5 hours (three queues); one
    reservation. *)
