(* Select, among [candidates] with node counts <= [capacity], a subset
   maximizing total nodes with sum <= capacity (0/1 knapsack where
   weight = value = nodes).  Ties resolve toward earlier-submitted jobs
   because candidates are scanned in queue order and an item is kept
   only when it reaches a previously unreachable total. *)
let knapsack ~capacity candidates =
  let best : Workload.Job.t list option array = Array.make (capacity + 1) None in
  best.(0) <- Some [];
  List.iter
    (fun (j : Workload.Job.t) ->
      for c = capacity downto j.nodes do
        match (best.(c), best.(c - j.nodes)) with
        | None, Some set -> best.(c) <- Some (j :: set)
        | _ -> ()
      done)
    candidates;
  let rec first_filled c =
    if c <= 0 then []
    else match best.(c) with Some set -> set | None -> first_filled (c - 1)
  in
  List.sort Workload.Job.compare_submit (first_filled capacity)

let policy () =
  Policy.make ~name:"lookahead-backfill" ~decide:(fun ctx ->
      let profile = Policy.profile_of ctx in
      match ctx.Policy.waiting with
      | [] -> []
      | head :: rest ->
          let duration (j : Workload.Job.t) = Float.max (ctx.r_star j) 1.0 in
          (* The head keeps strict EASY semantics: start it if it fits,
             otherwise carve its reservation so the knapsack cannot
             delay it. *)
          let head_d = duration head in
          let head_now =
            Cluster.Profile.fits_at profile ~at:ctx.now ~nodes:head.nodes
              ~duration:head_d
          in
          let start_at =
            if head_now then ctx.now
            else
              Cluster.Profile.earliest_start profile ~nodes:head.nodes
                ~duration:head_d
          in
          Cluster.Profile.reserve profile ~at:start_at ~nodes:head.nodes
            ~duration:head_d;
          let candidates =
            List.filter
              (fun (j : Workload.Job.t) ->
                Cluster.Profile.fits_at profile ~at:ctx.now ~nodes:j.nodes
                  ~duration:(duration j))
              rest
          in
          let free_now = Cluster.Profile.free_at profile ctx.now in
          let selected = knapsack ~capacity:free_now candidates in
          (* Sequential re-validation: durations differ, so a set that
             fits at [now] may still collide later; place greedily and
             drop jobs that no longer fit. *)
          let backfilled =
            List.filter
              (fun (j : Workload.Job.t) ->
                let d = duration j in
                if Cluster.Profile.fits_at profile ~at:ctx.now ~nodes:j.nodes
                     ~duration:d
                then begin
                  Cluster.Profile.reserve profile ~at:ctx.now ~nodes:j.nodes
                    ~duration:d;
                  true
                end
                else false)
              selected
          in
          if head_now then head :: backfilled else backfilled)
