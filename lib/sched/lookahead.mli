(** Lookahead backfilling (Shmueli & Feitelson, JSSPP 2003).

    Instead of backfilling jobs one at a time in queue order, pick the
    *set* of waiting jobs that maximizes the number of nodes put to
    work right now, under the constraint that the head job's
    reservation is not delayed.  The selection is a 0/1 knapsack over
    node counts (dynamic programming), restricted to jobs that
    individually fit the reservation-carved profile; the chosen set is
    then re-validated sequentially against the profile so that duration
    interactions cannot oversubscribe later instants.

    The paper found Lookahead to behave much like FCFS-backfill on the
    NCSA workloads; it is provided as a related-work baseline. *)

val policy : unit -> Policy.t
