(** A job trace: an immutable, submit-ordered collection of jobs plus
    the measurement window used for reporting.

    Simulations include a warm-up and cool-down week around the month
    being measured (as in the paper); only jobs submitted inside
    [measure_start, measure_end) contribute to reported statistics. *)

type t

val v : ?measure_start:float -> ?measure_end:float -> Job.t list -> t
(** [v jobs] builds a trace.  Jobs are sorted by submit time; ids must
    be unique.  The measurement window defaults to the full span of the
    submissions.  @raise Invalid_argument on duplicate ids. *)

val jobs : t -> Job.t array
(** Submit-ordered jobs (do not mutate). *)

val length : t -> int
val measure_start : t -> float
val measure_end : t -> float

val measured : t -> Job.t list
(** Jobs submitted within the measurement window, submit order. *)

val in_window : t -> Job.t -> bool
(** Whether a job is inside the measurement window. *)

val total_demand : t -> float
(** Sum of N x T over all jobs, node-seconds. *)

val offered_load : t -> capacity:int -> float
(** [offered_load t ~capacity] is total demand of *measured* jobs
    divided by capacity x measurement-window length. *)

val scale_load : t -> capacity:int -> target:float -> t
(** [scale_load t ~capacity ~target] compresses inter-arrival times by
    a constant factor so that the offered load of the measured window
    becomes [target] (the paper's rho = 0.9 construction).  Runtimes
    and node counts are unchanged; the measurement window is compressed
    by the same factor.  @raise Invalid_argument if the trace has no
    load or [target <= 0]. *)

val map_jobs : t -> (Job.t -> Job.t) -> t
(** Apply a per-job transformation (e.g. attach requested runtimes),
    keeping the window. *)

val concat_stats : t -> string
(** One-line human-readable summary. *)
