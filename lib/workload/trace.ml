type t = {
  jobs : Job.t array;
  measure_start : float;
  measure_end : float;
}

let v ?measure_start ?measure_end jobs =
  let arr = Array.of_list jobs in
  Array.sort Job.compare_submit arr;
  let module Ids = Set.Make (Int) in
  let _ =
    Array.fold_left
      (fun seen (j : Job.t) ->
        if Ids.mem j.id seen then
          invalid_arg (Printf.sprintf "Trace.v: duplicate job id %d" j.id);
        Ids.add j.id seen)
      Ids.empty arr
  in
  let default_start =
    if Array.length arr = 0 then 0.0 else arr.(0).Job.submit
  in
  let default_end =
    (* strictly beyond the last submission so the final job is inside
       the half-open window (Float.succ, not an absolute epsilon, which
       would be absorbed for large times) *)
    if Array.length arr = 0 then 0.0
    else Float.succ arr.(Array.length arr - 1).Job.submit
  in
  {
    jobs = arr;
    measure_start = Option.value measure_start ~default:default_start;
    measure_end = Option.value measure_end ~default:default_end;
  }

let jobs t = t.jobs
let length t = Array.length t.jobs
let measure_start t = t.measure_start
let measure_end t = t.measure_end

let in_window t (j : Job.t) =
  j.submit >= t.measure_start && j.submit < t.measure_end

let measured t = List.filter (in_window t) (Array.to_list t.jobs)

let total_demand t =
  Array.fold_left (fun acc j -> acc +. Job.area j) 0.0 t.jobs

let measured_demand t =
  Array.fold_left
    (fun acc j -> if in_window t j then acc +. Job.area j else acc)
    0.0 t.jobs

let offered_load t ~capacity =
  let window = t.measure_end -. t.measure_start in
  if window <= 0.0 then 0.0
  else measured_demand t /. (float_of_int capacity *. window)

let scale_load t ~capacity ~target =
  if target <= 0.0 then invalid_arg "Trace.scale_load: target <= 0";
  let current = offered_load t ~capacity in
  if current <= 0.0 then invalid_arg "Trace.scale_load: trace has no load";
  (* Compressing all submit times by [factor < 1] multiplies the load by
     [1/factor]; the window shrinks by the same factor. *)
  let factor = current /. target in
  let origin = if Array.length t.jobs = 0 then 0.0 else t.jobs.(0).Job.submit in
  let squeeze time = origin +. ((time -. origin) *. factor) in
  let jobs =
    Array.to_list t.jobs
    |> List.map (fun (j : Job.t) -> { j with Job.submit = squeeze j.submit })
  in
  v jobs ~measure_start:(squeeze t.measure_start)
    ~measure_end:(squeeze t.measure_end)

let map_jobs t f =
  v
    (List.map f (Array.to_list t.jobs))
    ~measure_start:t.measure_start ~measure_end:t.measure_end

let concat_stats t =
  Printf.sprintf "%d jobs (%d measured), window [%.1fd, %.1fd), demand %.3e node-s"
    (length t)
    (List.length (measured t))
    (Simcore.Units.to_days t.measure_start)
    (Simcore.Units.to_days t.measure_end)
    (total_demand t)
