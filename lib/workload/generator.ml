open Simcore

type config = {
  seed : int;
  scale : float;
  warmup : float;
  cooldown : float;
  estimate : Estimate.params;
  users : int;
}

let default_config =
  { seed = 42; scale = 1.0; warmup = Units.week; cooldown = Units.week;
    estimate = Estimate.default; users = 40 }

(* ------------------------------------------------------------------ *)
(* Arrivals                                                            *)

(* Relative arrival rate at absolute time [t]; t = 0 is Monday 00:00.
   Weekends run at just over half rate; submissions peak mid-afternoon. *)
let rate t =
  let day_of_week = int_of_float (Float.rem (t /. Units.day) 7.0) in
  let weekly = if day_of_week >= 5 then 0.55 else 1.0 in
  let hour_of_day = Float.rem (t /. Units.hour) 24.0 in
  let diurnal =
    1.0 +. (0.45 *. cos (2.0 *. Float.pi *. (hour_of_day -. 14.0) /. 24.0))
  in
  weekly *. diurnal

let arrival_times rng ~origin ~span ~count =
  if count = 0 then [||]
  else begin
    (* Hourly piecewise-constant rate; inverse-CDF sampling gives exactly
       [count] arrivals with the right temporal profile. *)
    let bin = Units.hour in
    let n_bins = max 1 (int_of_float (Float.ceil (span /. bin))) in
    let cumulative = Array.make (n_bins + 1) 0.0 in
    for i = 0 to n_bins - 1 do
      let t = origin +. ((float_of_int i +. 0.5) *. bin) in
      cumulative.(i + 1) <- cumulative.(i) +. rate t
    done;
    let total = cumulative.(n_bins) in
    let invert target =
      (* binary search for the bin with cumulative.(i) <= target *)
      let rec search lo hi =
        if hi - lo <= 1 then lo
        else
          let mid = (lo + hi) / 2 in
          if cumulative.(mid) <= target then search mid hi else search lo mid
      in
      let i = search 0 n_bins in
      let slack = cumulative.(i + 1) -. cumulative.(i) in
      let frac = if slack <= 0.0 then 0.0 else (target -. cumulative.(i)) /. slack in
      Float.min (span -. 1.0) ((float_of_int i +. frac) *. bin)
    in
    let times =
      Array.init count (fun _ -> origin +. invert (Rng.float rng total))
    in
    Array.sort Float.compare times;
    times
  end

(* ------------------------------------------------------------------ *)
(* Node counts                                                         *)

let range_bounds = function
  | 0 -> (1, 1)
  | 1 -> (2, 2)
  | 2 -> (3, 4)
  | 3 -> (5, 8)
  | 4 -> (9, 16)
  | 5 -> (17, 32)
  | 6 -> (33, 64)
  | 7 -> (65, 128)
  | i -> invalid_arg (Printf.sprintf "Generator.range_bounds: %d" i)

let draw_nodes rng ~range =
  let lo, hi = range_bounds range in
  if lo = hi then lo
  else
    let u = Rng.unit_float rng in
    if u < 0.5 then hi (* users favour full powers of two: 4, 8, 16 ... *)
    else if u < 0.7 then lo
    else lo + Rng.int rng (hi - lo + 1)

(* ------------------------------------------------------------------ *)
(* Runtimes                                                            *)

let bucket_bounds ~limit = function
  | 0 -> (30.0, Units.hour)
  | 1 -> (Units.hour, Units.hours 5.0)
  | 2 -> (Units.hours 5.0, limit)
  | i -> invalid_arg (Printf.sprintf "Generator.bucket_bounds: %d" i)

let draw_bucket rng profile node_class =
  let p_short = Month_profile.short_given_class profile node_class in
  let p_long = Month_profile.long_given_class profile node_class in
  let u = Rng.unit_float rng in
  if u < p_short then 0 else if u < p_short +. p_long then 2 else 1

let draw_runtime rng ~limit bucket =
  let lo, hi = bucket_bounds ~limit bucket in
  Dist.log_uniform rng ~lo ~hi

(* ------------------------------------------------------------------ *)
(* Demand calibration                                                  *)

type proto = {
  submit : float;
  nodes : int;
  range : int;
  bucket : int;
  mutable runtime : float;
}

let calibrate ~profile ~total_target protos =
  let limit = profile.Month_profile.runtime_limit in
  let fractions =
    let sum = Array.fold_left ( +. ) 0.0 profile.Month_profile.demand8 in
    Array.map (fun d -> d /. sum) profile.Month_profile.demand8
  in
  let iterations = 5 in
  for _ = 1 to iterations do
    let achieved = Array.make 8 0.0 in
    List.iter
      (fun p ->
        achieved.(p.range) <-
          achieved.(p.range) +. (float_of_int p.nodes *. p.runtime))
      protos;
    List.iter
      (fun p ->
        let target = fractions.(p.range) *. total_target in
        if achieved.(p.range) > 0.0 then begin
          let factor = target /. achieved.(p.range) in
          let lo, hi = bucket_bounds ~limit p.bucket in
          (* Clamp inside the bucket so the Table 4 short/long shares
             survive calibration; use lo+epsilon because buckets are
             half-open on the left. *)
          p.runtime <-
            Float.max (lo +. 1.0) (Float.min hi (p.runtime *. factor))
        end)
      protos
  done

(* ------------------------------------------------------------------ *)
(* Month generation                                                    *)

let month ?(config = default_config) profile =
  if config.scale <= 0.0 then invalid_arg "Generator.month: scale <= 0";
  let limit = profile.Month_profile.runtime_limit in
  (* [scale] compresses the time axis together with the job count, so a
     scaled-down month keeps the offered load and queueing dynamics of
     the full month. *)
  let span = Month_profile.span *. config.scale in
  let warmup = config.warmup *. config.scale in
  let cooldown = config.cooldown *. config.scale in
  let rng = Rng.create ~seed:(config.seed + Hashtbl.hash profile.Month_profile.label) in
  let arrivals_rng = Rng.split rng in
  let shape_rng = Rng.split rng in
  let estimate_rng = Rng.split rng in
  let n_measured =
    max 1 (int_of_float (Float.round
                           (float_of_int profile.Month_profile.n_jobs *. config.scale)))
  in
  let count_for seconds =
    int_of_float (Float.round (float_of_int n_measured *. seconds /. span))
  in
  let segments =
    [ (0.0, warmup, count_for warmup);
      (warmup, span, n_measured);
      (warmup +. span, cooldown, count_for cooldown) ]
  in
  let submits =
    List.concat_map
      (fun (origin, seg_span, count) ->
        if seg_span <= 0.0 || count = 0 then []
        else
          Array.to_list
            (arrival_times arrivals_rng ~origin ~span:seg_span ~count))
      segments
  in
  let jobs_weights = profile.Month_profile.jobs8 in
  let protos =
    List.map
      (fun submit ->
        let range = Dist.categorical shape_rng ~weights:jobs_weights in
        let nodes = draw_nodes shape_rng ~range in
        let bucket = draw_bucket shape_rng profile (Job.node_class5 nodes) in
        let runtime = draw_runtime shape_rng ~limit bucket in
        { submit; nodes; range; bucket; runtime })
      submits
  in
  let whole_span = warmup +. span +. cooldown in
  let total_target =
    profile.Month_profile.load
    *. float_of_int Month_profile.capacity
    *. whole_span
  in
  calibrate ~profile ~total_target protos;
  let user_rng = Rng.split rng in
  let user_weights =
    (* Zipf-like popularity: user k+1 has weight 1/(k+1) *)
    Array.init (max 1 config.users) (fun k -> 1.0 /. float_of_int (k + 1))
  in
  let jobs =
    List.mapi
      (fun id p ->
        let requested =
          Estimate.draw ~params:config.estimate estimate_rng ~limit
            ~runtime:p.runtime
        in
        let user = 1 + Dist.categorical user_rng ~weights:user_weights in
        Job.v ~id ~submit:p.submit ~nodes:p.nodes ~runtime:p.runtime
          ~requested
        |> Job.with_user user)
      protos
  in
  let raw = Trace.v jobs ~measure_start:warmup ~measure_end:(warmup +. span) in
  (* Bucket clamping in [calibrate] can leave the total load a few
     percent off the Table 3 target (e.g. months whose demand sits in
     long wide jobs near the bucket bounds).  A final compression of
     the time axis fixes the offered load exactly without touching the
     job mix or the runtime-class shares. *)
  Trace.scale_load raw ~capacity:Month_profile.capacity
    ~target:profile.Month_profile.load
