type parse_result = {
  trace : Trace.t;
  skipped : int;
  comments : string list;
}

let is_blank line = String.trim line = ""
let is_comment line = String.length line > 0 && line.[0] = ';'

let fields line =
  String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) line)
  |> List.filter (fun s -> s <> "")

let float_field ~line_number name s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "line %d: bad %s field %S" line_number name s)

let ( let* ) = Result.bind

let parse_line ~line_number ~id line =
  if is_blank line || is_comment line then Ok None
  else
    let float_field name s = float_field ~line_number name s in
    match fields line with
    | _job :: submit :: _wait :: runtime :: alloc :: _cpu :: _mem
      :: req_procs :: req_time :: rest ->
        let* submit = float_field "submit" submit in
        let* runtime = float_field "runtime" runtime in
        let* alloc = float_field "allocated-processors" alloc in
        let* req_procs = float_field "requested-processors" req_procs in
        let* req_time = float_field "requested-time" req_time in
        let nodes =
          if req_procs > 0.0 then int_of_float req_procs
          else int_of_float alloc
        in
        let requested = if req_time > 0.0 then req_time else runtime in
        (* field 12 is the user id; tolerate truncated records *)
        let user =
          match rest with
          | _req_mem :: _status :: uid :: _ ->
              Option.value (int_of_string_opt uid) ~default:(-1)
          | _ -> -1
        in
        if runtime <= 0.0 || nodes <= 0 || submit < 0.0 then Ok None
        else
          let job =
            Job.v ~id ~submit ~nodes ~runtime
              ~requested:(Float.max requested runtime)
          in
          Ok (Some (if user > 0 then Job.with_user user job else job))
    | _ ->
        Error
          (Printf.sprintf "line %d: expected >= 9 fields, got %d" line_number
             (List.length (fields line)))

(* Traces exported on Windows (or fetched over HTTP) use CRLF line
   ends; after splitting on '\n' the '\r' would survive into the last
   field of every line and fail [float_of_string_opt]. *)
let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let of_lines lines =
  let lines = List.map strip_cr lines in
  let rec loop line_number id jobs skipped comments = function
    | [] -> Ok { trace = Trace.v (List.rev jobs); skipped; comments = List.rev comments }
    | line :: rest ->
        if is_comment line then
          loop (line_number + 1) id jobs skipped (line :: comments) rest
        else begin
          match parse_line ~line_number ~id line with
          | Error e -> Error e
          | Ok None ->
              let skipped = if is_blank line then skipped else skipped + 1 in
              loop (line_number + 1) id jobs skipped comments rest
          | Ok (Some job) ->
              loop (line_number + 1) (id + 1) (job :: jobs) skipped comments rest
        end
  in
  loop 1 0 [] 0 [] lines

let of_string s = of_lines (String.split_on_char '\n' s)

let of_channel ic =
  let rec read acc =
    match input_line ic with
    | line -> read (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  of_lines (read [])

let of_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> of_channel ic)

let job_line ~wait (j : Job.t) =
  (* 18 fields; unknown ones carry the SWF "-1" convention. *)
  Printf.sprintf "%d %.0f %.0f %.0f %d -1 -1 %d %.0f -1 1 %d -1 -1 -1 -1 -1 -1"
    (j.id + 1) j.submit wait j.runtime j.nodes j.nodes j.requested
    (if j.user > 0 then j.user else -1)

let to_file ?(comments = []) ?(wait = fun (_ : Job.t) -> 0.0) path trace =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      List.iter (fun c -> output_string oc (c ^ "\n")) comments;
      Array.iter
        (fun j -> output_string oc (job_line ~wait:(wait j) j ^ "\n"))
        (Trace.jobs trace))
