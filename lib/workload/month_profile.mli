(** Published per-month workload statistics for the NCSA IA-64 (Titan)
    cluster, transcribed from Tables 2-4 of the paper.

    These are the calibration targets for the synthetic generator: the
    real traces are not publicly archived, so we regenerate workloads
    whose marginals match the published job-mix tables.  Percentages
    are kept exactly as printed (OCR noise of a few tenths of a percent
    is renormalised by consumers). *)

type t = {
  label : string;  (** e.g. "6/03" *)
  n_jobs : int;  (** Table 3 "Total" #jobs row *)
  load : float;  (** Table 3 offered load as a fraction, e.g. 0.82 *)
  runtime_limit : float;  (** Table 2 job runtime limit, seconds *)
  jobs8 : float array;  (** Table 3: % of jobs per 8 node-size ranges *)
  demand8 : float array;  (** Table 3: % of proc demand per range *)
  short5 : float array;
      (** Table 4 (T <= 1h): % of all jobs per 5 node classes *)
  long5 : float array;
      (** Table 4 (T > 5h): % of all jobs per 5 node classes *)
}

val capacity : int
(** Cluster size in nodes (Table 2): 128. *)

val span : float
(** Length of one simulated month, seconds (30 days). *)

val all : t array
(** The ten months, June 2003 .. March 2004, in order. *)

val find : string -> t
(** [find "1/04"] looks a month up by label.
    @raise Not_found on unknown labels. *)

val jobs5 : t -> float array
(** Table 3 job fractions aggregated to the 5 node classes of Table 4
    (percent). *)

val short_given_class : t -> int -> float
(** [short_given_class m c] is P(T <= 1h | node class c), derived from
    Tables 3 and 4, clamped to [0, 1]. *)

val long_given_class : t -> int -> float
(** [long_given_class m c] is P(T > 5h | node class c), clamped so that
    together with {!short_given_class} it never exceeds 1. *)

val pp : Format.formatter -> t -> unit
