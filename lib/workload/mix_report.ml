type t = {
  n_jobs : int;
  load : float;
  jobs8 : float array;
  demand8 : float array;
  short5 : float array;
  long5 : float array;
}

let of_trace ~capacity trace =
  let measured = Trace.measured trace in
  let n = List.length measured in
  let jobs8 = Array.make 8 0.0 in
  let demand8 = Array.make 8 0.0 in
  let short5 = Array.make 5 0.0 in
  let long5 = Array.make 5 0.0 in
  let total_area = ref 0.0 in
  List.iter
    (fun (j : Job.t) ->
      let r = Job.size_range8 j.nodes in
      let c = Job.node_class5 j.nodes in
      jobs8.(r) <- jobs8.(r) +. 1.0;
      demand8.(r) <- demand8.(r) +. Job.area j;
      total_area := !total_area +. Job.area j;
      if j.runtime <= Simcore.Units.hour then short5.(c) <- short5.(c) +. 1.0;
      if j.runtime > Simcore.Units.hours 5.0 then long5.(c) <- long5.(c) +. 1.0)
    measured;
  let to_pct total arr =
    if total <= 0.0 then arr
    else Array.map (fun v -> 100.0 *. v /. total) arr
  in
  let window = Trace.measure_end trace -. Trace.measure_start trace in
  let load =
    if window <= 0.0 then 0.0
    else !total_area /. (float_of_int capacity *. window)
  in
  {
    n_jobs = n;
    load;
    jobs8 = to_pct (float_of_int n) jobs8;
    demand8 = to_pct !total_area demand8;
    short5 = to_pct (float_of_int n) short5;
    long5 = to_pct (float_of_int n) long5;
  }

let max_abs_diff a b =
  if Array.length a <> Array.length b then
    invalid_arg "Mix_report.max_abs_diff: length mismatch";
  let worst = ref 0.0 in
  Array.iteri
    (fun i x -> worst := Float.max !worst (Float.abs (x -. b.(i))))
    a;
  !worst

let pp_pcts fmt arr =
  Array.iter (fun v -> Format.fprintf fmt " %5.1f" v) arr

let pp_table3_row fmt ~label t =
  Format.fprintf fmt "%-6s #jobs %5d  |%a@\n" label t.n_jobs pp_pcts t.jobs8;
  Format.fprintf fmt "%-6s load  %4.0f%%  |%a" label (100.0 *. t.load) pp_pcts
    t.demand8

let pp_table4_row fmt ~label t =
  Format.fprintf fmt "%-6s T<=1h  all %5.1f |%a@\n" label
    (Array.fold_left ( +. ) 0.0 t.short5)
    pp_pcts t.short5;
  Format.fprintf fmt "%-6s T>5h   all %5.1f |%a" label
    (Array.fold_left ( +. ) 0.0 t.long5)
    pp_pcts t.long5
