(** The parallel-job model.

    Each job is submitted with a required number of nodes [nodes] (N in
    the paper's notation) and a user-requested runtime [requested] (R);
    it actually runs for [runtime] (T).  A node is the smallest
    allocation unit (NCSA IA-64: 128 dual-processor nodes).  Jobs are
    rigid and non-preemptible: once started on [nodes] nodes a job holds
    them for exactly [runtime] seconds. *)

type t = {
  id : int;  (** unique within a trace, assigned in submit order *)
  submit : float;  (** submission time, seconds from trace origin *)
  nodes : int;  (** requested number of nodes, N >= 1 *)
  runtime : float;  (** actual runtime T, seconds, > 0 *)
  requested : float;  (** requested runtime R >= T, seconds *)
  user : int;  (** submitting user (0 when unknown); used by the
                   fairshare extension and carried through SWF *)
}

val v :
  id:int -> submit:float -> nodes:int -> runtime:float -> requested:float -> t
(** Smart constructor; validates [nodes >= 1], [runtime > 0],
    [requested >= runtime] and [submit >= 0].  [user] is 0; attach a
    real user with {!with_user}.
    @raise Invalid_argument on violation. *)

val with_user : int -> t -> t
(** [with_user u j] is [j] submitted by user [u].
    @raise Invalid_argument if [u] is negative. *)

val area : t -> float
(** [area j] is N x T, the processor-time demand of the job in
    node-seconds. *)

val compare_submit : t -> t -> int
(** Order by submission time, ties by id — the FCFS order. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Job classes}

    The paper partitions jobs two ways: eight node-size ranges for
    Table 3 and five coarser node classes crossed with runtime ranges
    for Table 4 and Figure 5. *)

val size_range8 : int -> int
(** [size_range8 n] maps a node count to the Table 3 range index:
    0:(1) 1:(2) 2:(3-4) 3:(5-8) 4:(9-16) 5:(17-32) 6:(33-64)
    7:(65-128). *)

val size_range8_label : int -> string

val node_class5 : int -> int
(** [node_class5 n] maps a node count to the Table 4 class index:
    0:(1) 1:(2) 2:(3-8) 3:(9-32) 4:(33-128). *)

val node_class5_label : int -> string

val runtime_class5 : float -> int
(** [runtime_class5 t] maps an actual runtime to the Figure 5 range:
    0:(<=10m) 1:(10m-1h) 2:(1h-4h) 3:(4h-8h) 4:(>8h). *)

val runtime_class5_label : int -> string
