(** Standard Workload Format (SWF) reader / writer.

    SWF is the de-facto archive format for parallel-machine job traces
    (Feitelson's Parallel Workloads Archive).  Each non-comment line
    has 18 whitespace-separated fields; comment lines start with [';'].
    This lets users run the schedulers on real traces (e.g. the actual
    NCSA logs, if they have access) instead of the synthetic ones.

    Field mapping into {!Job.t}:
    - submit time      <- field 2 (seconds)
    - actual runtime   <- field 4 (seconds)
    - nodes            <- field 8 (requested processors), falling back
                          to field 5 (allocated processors) when -1
    - requested runtime <- field 9, falling back to actual runtime
    - user             <- field 12 when present and positive

    Jobs with unusable fields (non-positive runtime or width, negative
    submit) are skipped and counted.  CRLF line endings are accepted
    (the trailing carriage return is stripped before parsing);
    malformed lines — wrong field count, non-numeric numeric fields —
    are reported as [Error] with their line number. *)

type parse_result = {
  trace : Trace.t;
  skipped : int;  (** lines that described unusable jobs *)
  comments : string list;  (** header comment lines, in order *)
}

val parse_line : line_number:int -> id:int -> string -> (Job.t option, string) result
(** Parse one line.  [Ok None] for comments/blank lines and unusable
    jobs; [Error msg] for malformed lines. *)

val of_channel : in_channel -> (parse_result, string) result
val of_string : string -> (parse_result, string) result
val of_file : string -> (parse_result, string) result

val job_line : wait:float -> Job.t -> string
(** Render one job as an 18-field SWF line.  [wait] fills the wait-time
    field (use 0.0 if unknown). *)

val to_file :
  ?comments:string list -> ?wait:(Job.t -> float) -> string -> Trace.t -> unit
(** Write a trace as an SWF file with optional header comments.
    [wait], when given, fills each job's wait-time field (e.g. from
    simulated outcomes, so an exported schedule round-trips its
    measured waits); it defaults to 0 everywhere. *)
