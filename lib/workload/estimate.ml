open Simcore

type params = { p_exact : float; p_small : float }

let default = { p_exact = 0.2; p_small = 0.25 }

let grid ~limit =
  let open Units in
  let base =
    [ minutes 5.0; minutes 10.0; minutes 15.0; minutes 30.0;
      hour; hours 2.0; hours 3.0; hours 4.0; hours 6.0; hours 8.0;
      hours 10.0; hours 12.0; hours 16.0; hours 20.0; hours 24.0;
      hours 36.0; hours 48.0 ]
  in
  let below = List.filter (fun v -> v < limit) base in
  Array.of_list (below @ [ limit ])

let round_up ~limit r =
  let g = grid ~limit in
  let rec scan i =
    if i >= Array.length g then limit
    else if g.(i) >= r then g.(i)
    else scan (i + 1)
  in
  scan 0

let draw ?(params = default) rng ~limit ~runtime =
  let u = Rng.unit_float rng in
  let factor =
    if u < params.p_exact then 1.0
    else if u < params.p_exact +. params.p_small then
      Dist.log_uniform rng ~lo:1.0 ~hi:2.0
    else Dist.log_uniform rng ~lo:2.0 ~hi:20.0
  in
  let raw = runtime *. factor in
  let rounded = round_up ~limit (Float.min raw limit) in
  (* Keep the invariant R >= T even when T itself exceeds the last grid
     point below the limit. *)
  Float.max rounded (Float.min runtime limit) |> Float.max runtime

let attach ?params ~seed ~limit trace =
  let rng = Rng.create ~seed in
  Trace.map_jobs trace (fun j ->
      { j with Job.requested = draw ?params rng ~limit ~runtime:j.Job.runtime })
