type t = {
  label : string;
  n_jobs : int;
  load : float;
  runtime_limit : float;
  jobs8 : float array;
  demand8 : float array;
  short5 : float array;
  long5 : float array;
}

let capacity = 128
let span = 30.0 *. Simcore.Units.day
let h12 = Simcore.Units.hours 12.0
let h24 = Simcore.Units.hours 24.0

(* Table 3 columns: 1, 2, 3-4, 5-8, 9-16, 17-32, 33-64, 65-128.
   Table 4 classes: 1, 2, 3-8, 9-32, 33-128. *)
let all =
  [|
    { label = "6/03"; n_jobs = 2191; load = 0.82; runtime_limit = h12;
      jobs8 = [| 26.7; 11.3; 29.8; 6.3; 8.5; 10.5; 3.7; 2.4 |];
      demand8 = [| 0.3; 0.1; 1.3; 1.1; 23.0; 37.4; 21.7; 14.6 |];
      short5 = [| 24.9; 11.1; 34.7; 6.2; 3.0 |];
      long5 = [| 0.3; 0.0; 0.7; 7.0; 1.7 |] };
    { label = "7/03"; n_jobs = 1399; load = 0.89; runtime_limit = h12;
      jobs8 = [| 26.2; 9.1; 6.9; 18.4; 7.9; 13.2; 8.4; 8.5 |];
      demand8 = [| 0.5; 0.2; 0.4; 3.6; 6.7; 16.9; 21.3; 49.7 |];
      short5 = [| 20.9; 7.7; 18.5; 13.4; 9.4 |];
      long5 = [| 2.4; 0.4; 3.0; 5.0; 4.6 |] };
    { label = "8/03"; n_jobs = 3220; load = 0.79; runtime_limit = h12;
      jobs8 = [| 74.6; 5.4; 1.3; 4.9; 4.9; 4.6; 1.8; 2.1 |];
      demand8 = [| 1.7; 0.7; 0.1; 3.5; 9.6; 30.8; 17.9; 35.5 |];
      short5 = [| 68.8; 4.3; 4.7; 4.6; 1.8 |];
      long5 = [| 2.5; 0.7; 1.0; 3.5; 1.4 |] };
    { label = "9/03"; n_jobs = 3056; load = 0.72; runtime_limit = h12;
      jobs8 = [| 58.0; 10.4; 6.4; 5.8; 6.6; 8.4; 1.1; 2.9 |];
      demand8 = [| 3.1; 0.5; 0.5; 4.3; 8.8; 35.4; 12.4; 34.6 |];
      short5 = [| 42.6; 9.8; 9.9; 10.9; 2.4 |];
      long5 = [| 3.9; 0.4; 1.3; 2.9; 1.2 |] };
    { label = "10/03"; n_jobs = 4149; load = 0.71; runtime_limit = h12;
      jobs8 = [| 53.8; 20.5; 5.8; 8.8; 5.5; 3.6; 1.6; 0.3 |];
      demand8 = [| 4.7; 6.6; 1.6; 10.1; 17.3; 25.3; 24.1; 10.2 |];
      short5 = [| 37.5; 8.3; 10.1; 4.9; 0.7 |];
      long5 = [| 4.1; 3.1; 2.1; 3.3; 0.8 |] };
    { label = "11/03"; n_jobs = 3446; load = 0.73; runtime_limit = h12;
      jobs8 = [| 60.1; 17.4; 4.9; 5.3; 3.6; 4.1; 3.7; 0.8 |];
      demand8 = [| 8.0; 3.7; 0.9; 4.4; 11.6; 11.1; 37.0; 23.3 |];
      short5 = [| 33.7; 12.5; 6.8; 5.1; 2.1 |];
      long5 = [| 8.7; 4.4; 1.4; 1.9; 1.6 |] };
    { label = "12/03"; n_jobs = 3517; load = 0.74; runtime_limit = h24;
      jobs8 = [| 64.1; 12.5; 6.8; 3.5; 3.7; 5.9; 2.7; 0.9 |];
      demand8 = [| 11.0; 5.1; 2.1; 9.5; 18.9; 8.0; 39.7; 6.1 |];
      short5 = [| 36.0; 6.5; 6.2; 7.0; 1.7 |];
      long5 = [| 14.0; 4.4; 2.7; 1.7; 1.0 |] };
    { label = "1/04"; n_jobs = 3154; load = 0.73; runtime_limit = h24;
      jobs8 = [| 39.0; 18.3; 4.6; 9.2; 18.1; 5.3; 1.7; 1.2 |];
      demand8 = [| 12.0; 8.8; 3.7; 17.3; 17.9; 10.0; 17.1; 18.0 |];
      short5 = [| 12.9; 6.0; 7.1; 20.5; 1.9 |];
      long5 = [| 23.1; 5.0; 2.4; 1.5; 0.7 |] };
    { label = "2/04"; n_jobs = 3969; load = 0.74; runtime_limit = h24;
      jobs8 = [| 44.1; 31.8; 4.5; 4.6; 2.5; 11.7; 1.7; 0.8 |];
      demand8 = [| 7.7; 9.9; 7.0; 18.8; 20.3; 10.3; 8.1; 16.4 |];
      short5 = [| 34.1; 20.5; 9.9; 4.6; 1.9 |];
      long5 = [| 6.8; 3.6; 3.3; 1.7; 0.3 |] };
    { label = "3/04"; n_jobs = 3468; load = 0.75; runtime_limit = h24;
      jobs8 = [| 57.5; 13.1; 7.6; 5.8; 2.3; 8.3; 1.6; 1.7 |];
      demand8 = [| 2.8; 4.6; 7.7; 8.3; 37.6; 16.8; 6.3; 15.9 |];
      short5 = [| 53.2; 10.1; 13.9; 4.5; 2.5 |];
      long5 = [| 3.0; 2.6; 3.2; 2.9; 0.3 |] };
  |]

let find label =
  match Array.find_opt (fun m -> String.equal m.label label) all with
  | Some m -> m
  | None -> raise Not_found

(* Map the eight Table 3 ranges onto the five Table 4 classes:
   1 -> 1; 2 -> 2; {3-4, 5-8} -> 3-8; {9-16, 17-32} -> 9-32;
   {33-64, 65-128} -> 33-128. *)
let jobs5 m =
  [|
    m.jobs8.(0);
    m.jobs8.(1);
    m.jobs8.(2) +. m.jobs8.(3);
    m.jobs8.(4) +. m.jobs8.(5);
    m.jobs8.(6) +. m.jobs8.(7);
  |]

let conditional numer denom =
  if denom <= 0.0 then 0.0 else Float.max 0.0 (Float.min 1.0 (numer /. denom))

let short_given_class m c = conditional m.short5.(c) (jobs5 m).(c)

let long_given_class m c =
  let short = short_given_class m c in
  let long = conditional m.long5.(c) (jobs5 m).(c) in
  Float.min long (1.0 -. short)

let pp fmt m =
  Format.fprintf fmt "%s: %d jobs, load %.0f%%, limit %a" m.label m.n_jobs
    (100.0 *. m.load) Simcore.Units.pp_duration m.runtime_limit
