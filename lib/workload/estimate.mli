(** User requested-runtime model.

    Real user estimates are notoriously inaccurate: a sizeable fraction
    of jobs request far more time than they use, and requests cluster
    on round values (1h, 2h, 4h, ...).  This module attaches synthetic
    requested runtimes R to jobs with known actual runtime T, following
    the overestimation mixture reported for these workloads (Chiang,
    Arpaci-Dusseau & Vernon, JSSPP 2002):

    - with probability [p_exact] the user is accurate (R rounds T up to
      the next grid value);
    - with probability [p_small] a mild overestimate, factor
      log-uniform in [1, 2];
    - otherwise a large overestimate, factor log-uniform in [2, 20].

    R is always rounded up to a human "grid" value, clamped to the
    system runtime limit and kept >= T. *)

type params = {
  p_exact : float;
  p_small : float;
}

val default : params
(** [p_exact = 0.2], [p_small = 0.25]. *)

val grid : limit:float -> float array
(** Ascending grid of round request values up to and including
    [limit]. *)

val round_up : limit:float -> float -> float
(** [round_up ~limit r] is the smallest grid value >= [r], capped at
    [limit]. *)

val draw : ?params:params -> Simcore.Rng.t -> limit:float -> runtime:float -> float
(** [draw rng ~limit ~runtime] samples a requested runtime for a job
    with actual runtime [runtime].  Result is in
    [\[runtime, max limit runtime\]]. *)

val attach :
  ?params:params -> seed:int -> limit:float -> Trace.t -> Trace.t
(** Rewrite every job's [requested] field with a fresh draw;
    deterministic in [seed]. *)
