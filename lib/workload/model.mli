(** Parametric rigid-job workload model (robustness substrate).

    A second, independent workload source in the spirit of the
    classical supercomputer-workload models (Lublin & Feitelson, JPDC
    2003; Jann et al.): node counts favour powers of two with a serial
    fraction, runtimes are a lognormal mixture of short and long jobs,
    arrivals follow the diurnal/weekly cycle.  Unlike
    {!Generator}, nothing here is calibrated to the NCSA tables — it
    exists to check that the paper's policy relationships are not an
    artifact of the table-calibrated generator.

    All knobs are explicit; {!default} resembles the literature's
    medium-load academic machines. *)

type params = {
  capacity : int;  (** machine size the jobs must fit *)
  serial_fraction : float;  (** probability of a one-node job *)
  power2_fraction : float;
      (** among parallel jobs, probability of an exact power of two *)
  max_log2_nodes : int;  (** largest job is 2^this *)
  short_fraction : float;  (** probability a job is "short" *)
  short_mu : float;  (** lognormal location of short runtimes (log s) *)
  short_sigma : float;
  long_mu : float;  (** lognormal location of long runtimes (log s) *)
  long_sigma : float;
  runtime_limit : float;  (** hard cap, seconds *)
  jobs_per_day : float;  (** average arrival rate *)
  estimate : Estimate.params;
}

val default : params
(** 128-node machine, ~115 jobs/day, 12 h limit. *)

val generate :
  ?params:params -> seed:int -> days:float -> unit -> Trace.t
(** [generate ~seed ~days ()] produces a trace spanning [days] days
    with a one-day warm-up and cool-down excluded from the measurement
    window.  Deterministic in [seed].
    @raise Invalid_argument if [days <= 0]. *)
