(** Calibrated synthetic workload generator.

    Regenerates a month of NCSA IA-64-like load from the published
    marginals in {!Month_profile}:

    + arrival times follow a non-homogeneous Poisson-like process with
      diurnal and weekly modulation, sampled by inverse-CDF so the job
      count is exact;
    + node counts are drawn from the Table 3 per-range job fractions,
      preferring "round" sizes (powers of two) within a range;
    + runtimes are drawn per node class from a three-bucket mixture
      (T <= 1h / 1h < T <= 5h / T > 5h) whose probabilities come from
      Table 4, log-uniform within a bucket;
    + per-range runtime scaling (clamped to the bucket, iterated)
      calibrates the per-range processor-demand fractions and total
      offered load toward the Table 3 targets;
    + requested runtimes are attached with {!Estimate}.

    Everything is deterministic in the seed.  A one-week warm-up and
    cool-down flank the measured month, as in the paper's methodology. *)

type config = {
  seed : int;
  scale : float;
      (** scales the job count *and* the time axis together, so offered
          load and queueing dynamics are preserved; 1.0 = published
          month *)
  warmup : float;  (** seconds of pre-month load (default one week) *)
  cooldown : float;  (** seconds of post-month load (default one week) *)
  estimate : Estimate.params;
  users : int;
      (** size of the user population; jobs are attributed to users
          1..users with a Zipf-like popularity (a few heavy users
          dominate, as on real machines).  Used by the fairshare
          extension. *)
}

val default_config : config
(** seed 42, scale 1.0, one-week warm-up/cool-down, default estimates. *)

val month : ?config:config -> Month_profile.t -> Trace.t
(** [month profile] generates the trace for one month.  The measurement
    window is [warmup, warmup + Month_profile.span). *)

val draw_nodes : Simcore.Rng.t -> range:int -> int
(** Sample a node count within Table 3 range index [range] (exposed for
    testing). *)

val bucket_bounds : limit:float -> int -> float * float
(** [(lo, hi]] runtime bounds of bucket 0 (short), 1 (middle),
    2 (long) given the month's runtime limit. *)

val arrival_times :
  Simcore.Rng.t -> origin:float -> span:float -> count:int -> float array
(** Diurnally-modulated arrival times, ascending, within
    [\[origin, origin + span)] (exposed for testing). *)
