(** Trace slicing and combination utilities.

    Site logs rarely arrive in exactly the shape a study needs; these
    helpers cut, filter and merge traces while maintaining the
    invariants {!Trace.v} enforces (sorted, unique ids).  All functions
    renumber job ids densely in submit order, so results are always
    valid generator/SWF inputs. *)

val by_time : Trace.t -> from_:float -> upto:float -> Trace.t
(** Jobs submitted within [\[from_, upto)], times shifted so the slice
    starts at 0; the measurement window becomes the whole slice. *)

val filter : Trace.t -> keep:(Job.t -> bool) -> Trace.t
(** Keep matching jobs (ids renumbered); the measurement window is
    preserved. *)

val by_size_class : Trace.t -> node_class:int -> Trace.t
(** Only jobs in the given Table 4 node class (see
    {!Job.node_class5}). *)

val merge : Trace.t -> Trace.t -> Trace.t
(** Interleave two traces on a common clock (ids renumbered; the
    measurement window spans the union of both windows). *)

val head : Trace.t -> n:int -> Trace.t
(** The first [n] jobs by submit order. *)
