(** Job-mix statistics of a trace, in the shape of the paper's
    Tables 3 and 4.

    Used both to verify the generator's calibration against
    {!Month_profile} targets and to characterise arbitrary (e.g. SWF)
    traces.  All statistics are computed over the measured window
    only. *)

type t = {
  n_jobs : int;
  load : float;  (** offered load over the measured window *)
  jobs8 : float array;  (** %% of jobs per Table 3 node-size range *)
  demand8 : float array;  (** %% of demand per range *)
  short5 : float array;  (** %% of all jobs: T <= 1h, per node class *)
  long5 : float array;  (** %% of all jobs: T > 5h, per node class *)
}

val of_trace : capacity:int -> Trace.t -> t

val max_abs_diff : float array -> float array -> float
(** Largest absolute element-wise difference (percentage points). *)

val pp_table3_row : Format.formatter -> label:string -> t -> unit
(** Two lines in the format of a Table 3 month entry. *)

val pp_table4_row : Format.formatter -> label:string -> t -> unit
(** Two lines in the format of a Table 4 month entry. *)
