(** Arrival-pattern statistics of a trace.

    Used to validate the generators' diurnal and weekly modulation and
    to characterise external SWF traces (submission-time histograms are
    the standard first plot in workload studies).  Time zero is taken
    as Monday 00:00, as in {!Generator}. *)

type t = {
  hourly : int array;  (** 24 bins: submissions per hour of day *)
  daily : int array;  (** 7 bins: submissions per day of week, 0 = Monday *)
  total : int;
}

val of_trace : Trace.t -> t
(** Measured-window jobs only. *)

val peak_to_trough : t -> float
(** Busiest hourly bin over quietest (infinity if some hour is empty);
    1.0 means a flat profile. *)

val weekend_weekday_ratio : t -> float
(** Average Saturday/Sunday volume over average Monday-Friday volume. *)

val pp : Format.formatter -> t -> unit
(** Sparkline-style histograms. *)
