type t = { hourly : int array; daily : int array; total : int }

let of_trace trace =
  let hourly = Array.make 24 0 in
  let daily = Array.make 7 0 in
  let total = ref 0 in
  List.iter
    (fun (j : Job.t) ->
      let hour =
        int_of_float (Float.rem (j.submit /. Simcore.Units.hour) 24.0)
      in
      let day =
        int_of_float (Float.rem (j.submit /. Simcore.Units.day) 7.0)
      in
      hourly.(hour) <- hourly.(hour) + 1;
      daily.(day) <- daily.(day) + 1;
      incr total)
    (Trace.measured trace);
  { hourly; daily; total = !total }

let peak_to_trough t =
  let peak = Array.fold_left max 0 t.hourly in
  let trough = Array.fold_left min max_int t.hourly in
  if trough = 0 then Float.infinity
  else float_of_int peak /. float_of_int trough

let weekend_weekday_ratio t =
  let weekday =
    (t.daily.(0) + t.daily.(1) + t.daily.(2) + t.daily.(3) + t.daily.(4))
    |> float_of_int
  in
  let weekend = float_of_int (t.daily.(5) + t.daily.(6)) in
  if weekday <= 0.0 then 0.0 else weekend /. 2.0 /. (weekday /. 5.0)

let bar width value maximum =
  if maximum = 0 then ""
  else String.make (value * width / maximum) '#'

let pp fmt t =
  let hour_max = Array.fold_left max 0 t.hourly in
  Format.fprintf fmt "submissions by hour of day (%d jobs):@." t.total;
  Array.iteri
    (fun h v ->
      Format.fprintf fmt "  %02d:00 %6d %s@." h v (bar 30 v hour_max))
    t.hourly;
  let day_max = Array.fold_left max 0 t.daily in
  let names = [| "Mon"; "Tue"; "Wed"; "Thu"; "Fri"; "Sat"; "Sun" |] in
  Format.fprintf fmt "submissions by day of week:@.";
  Array.iteri
    (fun d v ->
      Format.fprintf fmt "  %s %6d %s@." names.(d) v (bar 30 v day_max))
    t.daily
