open Simcore

type params = {
  capacity : int;
  serial_fraction : float;
  power2_fraction : float;
  max_log2_nodes : int;
  short_fraction : float;
  short_mu : float;
  short_sigma : float;
  long_mu : float;
  long_sigma : float;
  runtime_limit : float;
  jobs_per_day : float;
  estimate : Estimate.params;
}

let default =
  {
    capacity = 128;
    serial_fraction = 0.25;
    power2_fraction = 0.75;
    max_log2_nodes = 7;
    short_fraction = 0.65;
    short_mu = log (Units.minutes 15.0);
    short_sigma = 1.4;
    long_mu = log (Units.hours 4.0);
    long_sigma = 0.9;
    runtime_limit = Units.hours 12.0;
    jobs_per_day = 115.0;
    estimate = Estimate.default;
  }

let draw_nodes params rng =
  if Dist.bernoulli rng ~p:params.serial_fraction then 1
  else begin
    let k = 1 + Rng.int rng params.max_log2_nodes in
    let exact = 1 lsl k in
    let nodes =
      if Dist.bernoulli rng ~p:params.power2_fraction then exact
      else (1 lsl (k - 1)) + 1 + Rng.int rng (exact - (1 lsl (k - 1)))
    in
    min nodes params.capacity
  end

let draw_runtime params rng =
  let mu, sigma =
    if Dist.bernoulli rng ~p:params.short_fraction then
      (params.short_mu, params.short_sigma)
    else (params.long_mu, params.long_sigma)
  in
  let t = Dist.lognormal rng ~mu ~sigma in
  Float.max 10.0 (Float.min params.runtime_limit t)

let generate ?(params = default) ~seed ~days () =
  if days <= 0.0 then invalid_arg "Model.generate: days <= 0";
  let rng = Rng.create ~seed in
  let arrivals_rng = Rng.split rng in
  let shape_rng = Rng.split rng in
  let estimate_rng = Rng.split rng in
  let span = Units.days days in
  let warm = Units.day in
  let whole = warm +. span +. warm in
  let count =
    max 1 (int_of_float (Float.round (params.jobs_per_day *. whole /. Units.day)))
  in
  (* reuse the calibrated generator's diurnal arrival machinery *)
  let submits =
    Generator.arrival_times arrivals_rng ~origin:0.0 ~span:whole ~count
  in
  let jobs =
    Array.to_list submits
    |> List.mapi (fun id submit ->
           let nodes = draw_nodes params shape_rng in
           let runtime = draw_runtime params shape_rng in
           let requested =
             Estimate.draw ~params:params.estimate estimate_rng
               ~limit:params.runtime_limit ~runtime
           in
           Job.v ~id ~submit ~nodes ~runtime ~requested
           |> Job.with_user (1 + (id mod 23)))
  in
  Trace.v jobs ~measure_start:warm ~measure_end:(warm +. span)
