type t = {
  id : int;
  submit : float;
  nodes : int;
  runtime : float;
  requested : float;
  user : int;
}

let v ~id ~submit ~nodes ~runtime ~requested =
  if nodes < 1 then invalid_arg "Job.v: nodes must be >= 1";
  if runtime <= 0.0 then invalid_arg "Job.v: runtime must be positive";
  if requested < runtime then invalid_arg "Job.v: requested < runtime";
  if submit < 0.0 then invalid_arg "Job.v: negative submit time";
  { id; submit; nodes; runtime; requested; user = 0 }

let with_user user j =
  if user < 0 then invalid_arg "Job.with_user: negative user";
  { j with user }

let area j = float_of_int j.nodes *. j.runtime

let compare_submit a b =
  let c = Float.compare a.submit b.submit in
  if c <> 0 then c else Int.compare a.id b.id

let equal a b = a.id = b.id

let pp fmt j =
  Format.fprintf fmt "job#%d[N=%d T=%a R=%a @@%a]" j.id j.nodes
    Simcore.Units.pp_duration j.runtime Simcore.Units.pp_duration j.requested
    Simcore.Units.pp_duration j.submit

let size_range8 n =
  if n <= 1 then 0
  else if n = 2 then 1
  else if n <= 4 then 2
  else if n <= 8 then 3
  else if n <= 16 then 4
  else if n <= 32 then 5
  else if n <= 64 then 6
  else 7

let size_range8_label = function
  | 0 -> "1"
  | 1 -> "2"
  | 2 -> "3-4"
  | 3 -> "5-8"
  | 4 -> "9-16"
  | 5 -> "17-32"
  | 6 -> "33-64"
  | 7 -> "65-128"
  | i -> invalid_arg (Printf.sprintf "Job.size_range8_label: %d" i)

let node_class5 n =
  if n <= 1 then 0
  else if n = 2 then 1
  else if n <= 8 then 2
  else if n <= 32 then 3
  else 4

let node_class5_label = function
  | 0 -> "1"
  | 1 -> "2"
  | 2 -> "3-8"
  | 3 -> "9-32"
  | 4 -> "33-128"
  | i -> invalid_arg (Printf.sprintf "Job.node_class5_label: %d" i)

let runtime_class5 t =
  let open Simcore.Units in
  if t <= minutes 10.0 then 0
  else if t <= hour then 1
  else if t <= hours 4.0 then 2
  else if t <= hours 8.0 then 3
  else 4

let runtime_class5_label = function
  | 0 -> "<=10m"
  | 1 -> "10m-1h"
  | 2 -> "1h-4h"
  | 3 -> "4h-8h"
  | 4 -> ">8h"
  | i -> invalid_arg (Printf.sprintf "Job.runtime_class5_label: %d" i)
