let renumber jobs =
  List.mapi (fun id (j : Job.t) -> { j with Job.id }) jobs

let by_time trace ~from_ ~upto =
  let jobs =
    Array.to_list (Trace.jobs trace)
    |> List.filter (fun (j : Job.t) -> j.submit >= from_ && j.submit < upto)
    |> List.map (fun (j : Job.t) -> { j with Job.submit = j.submit -. from_ })
    |> renumber
  in
  Trace.v jobs ~measure_start:0.0 ~measure_end:(upto -. from_)

let filter trace ~keep =
  let jobs =
    Array.to_list (Trace.jobs trace) |> List.filter keep |> renumber
  in
  Trace.v jobs
    ~measure_start:(Trace.measure_start trace)
    ~measure_end:(Trace.measure_end trace)

let by_size_class trace ~node_class =
  if node_class < 0 || node_class > 4 then
    invalid_arg "Slice.by_size_class: class must be in 0..4";
  filter trace ~keep:(fun j -> Job.node_class5 j.Job.nodes = node_class)

let merge a b =
  let jobs =
    Array.to_list (Trace.jobs a) @ Array.to_list (Trace.jobs b)
    |> List.sort Job.compare_submit
    |> renumber
  in
  Trace.v jobs
    ~measure_start:
      (Float.min (Trace.measure_start a) (Trace.measure_start b))
    ~measure_end:(Float.max (Trace.measure_end a) (Trace.measure_end b))

let head trace ~n =
  if n < 0 then invalid_arg "Slice.head: negative n";
  let jobs =
    Array.to_list (Trace.jobs trace)
    |> List.filteri (fun i _ -> i < n)
    |> renumber
  in
  Trace.v jobs
    ~measure_start:(Trace.measure_start trace)
    ~measure_end:(Trace.measure_end trace)
