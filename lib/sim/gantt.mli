(** ASCII schedule visualisation.

    Two views over a set of {!Metrics.Outcome} records:

    - {!jobs_chart}: one row per job showing queueing time ([.]) and
      execution ([#]) on a common time axis — readable up to a few
      dozen jobs, ideal for examples and debugging policy decisions;
    - {!utilization_chart}: busy-node counts over time rendered as a
      vertical-bar sparkline, usable for traces of any size.

    Both are pure functions of the outcomes; time is bucketed into a
    fixed number of columns. *)

val jobs_chart :
  ?columns:int ->
  ?max_jobs:int ->
  Format.formatter ->
  Metrics.Outcome.t list ->
  unit
(** Render per-job rows in submit order: [.] waiting, [#] running.
    Shows at most [max_jobs] (default 40) jobs; [columns] defaults
    to 72.  Prints a note when jobs are elided. *)

val utilization_chart :
  ?columns:int ->
  capacity:int ->
  Format.formatter ->
  Metrics.Outcome.t list ->
  unit
(** Render machine occupancy over time: each column shows the average
    number of busy nodes in its time bucket, as a 0-9 digit scale plus
    a bar. *)
