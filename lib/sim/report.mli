(** Self-contained HTML run-health reports.

    Renders {!Series.t} samplers as static HTML documents: one
    inline-SVG chart per run-health signal (busy nodes, queue length,
    backlog, running jobs, longest current wait, cumulative excessive
    wait) overlaying every run on a shared simulated-time axis, plus a
    per-run summary table computed from the exact Timeline
    accumulators.  The documents embed their own CSS (with a
    [prefers-color-scheme: dark] variant) and use no JavaScript, no
    external assets and no network access, so a report file can be
    archived or mailed as-is.

    Rendering is a pure function of the input series, so report bytes
    are identical for any [REPRO_JOBS] / pool width (tested). *)

val max_runs : int
(** Charts draw at most this many runs (the fixed categorical palette
    is never cycled); extra runs still appear in the summary table and
    the legend notes how many were not drawn. *)

val page :
  title:string -> ?subtitle:string -> (string * Series.t) list -> string
(** [page ~title runs] is a complete HTML document charting the
    labelled runs together.  Runs are drawn in list order with the
    fixed categorical palette; a legend appears whenever there are at
    least two runs.  Series without observations are skipped in charts
    but listed in the summary table. *)

type section = {
  href : string;  (** relative link to the section's {!page} file *)
  title : string;
  runs : (string * Series.t) list;
}

val index : title:string -> section list -> string
(** Cross-page index: a table of contents plus, per section, the same
    per-run summary table as {!page} — the cross-policy comparison at
    a glance, with the trajectory charts one link away. *)
