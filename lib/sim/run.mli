(** One policy x one trace -> the paper's reported measures.

    Wraps {!Engine.run}, restricts statistics to jobs submitted in the
    trace's measurement window (the month, excluding warm-up and
    cool-down) and packages the aggregate measures, the per-class
    matrix and the raw outcomes for excessive-wait post-processing. *)

type t = {
  policy_name : string;
  r_star : Engine.r_star;
  measured : Metrics.Outcome.t list;  (** outcomes of in-window jobs *)
  aggregate : Metrics.Aggregate.t;  (** over [measured]; queue length
                                        averaged over the window *)
  class_matrix : Metrics.Class_matrix.t;
  decisions : int;
  wall_clock : float;  (** host seconds spent simulating *)
  utilization : float;
      (** fraction of node-time actually used within the measurement
          window (all jobs running there, not only measured ones) *)
  queue_samples : Engine.queue_sample list;
      (** waiting-queue length after each decision (whole simulation),
          for backlog-dynamics analyses *)
  log : Decision_log.t option;
      (** per-decision event log, when the run was traced
          ([simulate ?log]); rides along in the run caches so traced
          experiment output can be exported after the fact *)
  validation : Schedcheck.Report.t option;
      (** schedule-validation report, when the run was validated
          ([simulate ?validate]); rides along in the run caches like
          [log] so the bench harness can aggregate reports *)
  series : Series.t option;
      (** run-health time series, when the run was sampled
          ([simulate ?series]); rides along in the run caches like
          [log] so reports can be rendered after the fact *)
}

val simulate :
  ?machine:Cluster.Machine.t ->
  ?log:Decision_log.t ->
  ?series:Series.t ->
  ?metrics:Simcore.Metrics.t ->
  ?validate:Schedcheck.Validator.expectation ->
  r_star:Engine.r_star ->
  policy:Sched.Policy.t ->
  Workload.Trace.t ->
  t

val excess : t -> threshold:float -> Metrics.Excess.t
(** Excessive wait of the measured jobs w.r.t. a threshold. *)

val fcfs_thresholds : t -> float * float
(** [(max wait, 98th-percentile wait)] of this run — applied to an
    FCFS-backfill run they are the paper's E^max and E^98% thresholds
    for the month. *)
