(** Event-driven simulation engine.

    Replays a trace against a scheduling policy: scheduling decisions
    happen exactly at job arrivals and departures (as in the paper);
    all events at one instant are drained before the policy is
    consulted once.  Jobs run for [min(T, R)] — the system kills a job
    at its requested limit — and hold their nodes for the whole time.

    The engine validates every start the policy requests (the job must
    be waiting and fit the free nodes) and raises [Invalid_argument] on
    a violation, so a buggy policy cannot silently oversubscribe the
    machine. *)

type r_star =
  | Actual  (** the paper's R* = T: perfect information *)
  | Requested  (** the paper's R* = R: raw user estimates *)
  | Predicted
      (** the paper's Section 7 future-work idea: correct the user
          estimate with an on-line prediction.  The engine tracks the
          mean actual/requested ratio of completed jobs and scales each
          estimate by it (clamped to [1 min, R]).  Predictions may
          undershoot; schedulers must tolerate jobs outliving their
          estimated completion (the availability profile does). *)

val r_star_name : r_star -> string

type queue_sample = { time : float; length : int }

type result = {
  outcomes : Metrics.Outcome.t list;  (** one per job, submit order *)
  queue_samples : queue_sample list;
      (** waiting-queue length after each decision, time order *)
  decisions : int;
  horizon : float;  (** time of the last event *)
  validation : Schedcheck.Report.t option;
      (** present iff [?validate] was given to {!run} *)
}

val run :
  ?machine:Cluster.Machine.t ->
  ?log:Decision_log.t ->
  ?series:Series.t ->
  ?metrics:Simcore.Metrics.t ->
  ?validate:Schedcheck.Validator.expectation ->
  r_star:r_star ->
  policy:Sched.Policy.t ->
  Workload.Trace.t ->
  result
(** Simulate the whole trace to completion (default machine:
    {!Cluster.Machine.titan}).  [log], when given, receives one
    decision event per decision point: the simulated time, the queue
    length the policy saw, the number of jobs it started, and the
    policy's search-effort probe snapshot.

    [series], when given, is fed one run-health observation per
    decision point, after the decision's starts took effect (decisions
    happen exactly at arrivals and departures, so completions are
    sampled too), plus one {!Series.note_start} per started job.

    [metrics], when given, must be a fresh registry: the engine
    registers its run-health instruments on it (decision/start/finish
    counters, queue/busy/backlog gauges, wait and queue-depth
    histograms, names prefixed [schedsim_]) and records into them as
    the run progresses — honoring the registry's own switch.  Both
    hooks are entirely off the simulation path when unset.

    [validate], when given, runs {!Schedcheck.Validator.validate} over
    the finished schedule and stores the report in
    [result.validation]; violations are reported as data, never
    raised.  Validation is entirely off the simulation path — with
    [?validate] unset no validator code runs.  Under [Predicted]
    runtimes an [Easy_backfill] expectation is downgraded to [Generic]
    (the stateful estimator cannot be replayed post-hoc).
    @raise Invalid_argument if some job is wider than the machine or if
    the policy requests an invalid start. *)

val windowed_queue_average :
  queue_sample list -> from_:float -> upto:float -> float
(** Time-weighted average queue length within a window. *)
