(* Static HTML rendering of run-health series: inline SVG line charts
   with a min/max envelope band per run, no JavaScript, no external
   assets.  Categorical palette (fixed order, CVD-validated, with a
   dark-mode variant selected separately) lives in the embedded CSS as
   custom properties --s1..--s8. *)

let max_runs = 8

(* --- small HTML/number helpers --- *)

let html_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fnum v =
  if Float.is_integer v && Float.abs v < 1e7 then Printf.sprintf "%.0f" v
  else if Float.abs v >= 100.0 then Printf.sprintf "%.0f" v
  else if Float.abs v >= 10.0 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.2f" v

(* --- signal descriptors --- *)

type signal = {
  key : string;  (* Series.summary label *)
  title : string;
  unit_ : string;
  scale : float;  (* display = raw * scale *)
  value : Series.sample -> float;
  lo : Series.sample -> float;
  hi : Series.sample -> float;
}

let hours = 1.0 /. 3600.0

let signals =
  [
    {
      key = "busy_nodes";
      title = "Busy nodes";
      unit_ = "nodes";
      scale = 1.0;
      value = (fun s -> float_of_int s.Series.busy);
      lo = (fun s -> float_of_int s.Series.busy_min);
      hi = (fun s -> float_of_int s.Series.busy_max);
    };
    {
      key = "queue_jobs";
      title = "Waiting jobs";
      unit_ = "jobs";
      scale = 1.0;
      value = (fun s -> float_of_int s.Series.queue);
      lo = (fun s -> float_of_int s.Series.queue_min);
      hi = (fun s -> float_of_int s.Series.queue_max);
    };
    {
      key = "backlog_nodes";
      title = "Backlog (nodes demanded by waiting jobs)";
      unit_ = "nodes";
      scale = 1.0;
      value = (fun s -> float_of_int s.Series.demand);
      lo = (fun s -> float_of_int s.Series.demand_min);
      hi = (fun s -> float_of_int s.Series.demand_max);
    };
    {
      key = "running_jobs";
      title = "Running jobs";
      unit_ = "jobs";
      scale = 1.0;
      value = (fun s -> float_of_int s.Series.running);
      lo = (fun s -> float_of_int s.Series.running_min);
      hi = (fun s -> float_of_int s.Series.running_max);
    };
    {
      key = "max_wait_s";
      title = "Longest current wait";
      unit_ = "hours";
      scale = hours;
      value = (fun s -> s.Series.max_wait);
      lo = (fun s -> s.Series.max_wait_min);
      hi = (fun s -> s.Series.max_wait_max);
    };
    {
      key = "excess_s";
      title = "Cumulative excessive wait";
      unit_ = "hours";
      scale = hours;
      value = (fun s -> s.Series.excess);
      lo = (fun s -> s.Series.excess);
      hi = (fun s -> s.Series.excess);
    };
  ]

(* --- chart geometry --- *)

let width = 720.0
let height = 150.0
let mleft = 52.0
let mright = 10.0
let mtop = 10.0
let mbottom = 22.0
let plot_w = width -. mleft -. mright
let plot_h = height -. mtop -. mbottom
let max_points = 360

let day = 86400.0

(* Thin a sample list to at most [max_points] groups: the drawn point
   is the group's last sample, the band is the group's envelope. *)
let thin samples =
  let arr = Array.of_list samples in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let k = (n + max_points - 1) / max_points in
    let groups = (n + k - 1) / k in
    List.init groups (fun g ->
        let first = g * k and last = min ((g * k) + k - 1) (n - 1) in
        let acc = ref arr.(first) in
        for i = first + 1 to last do
          acc := Series.{
            !acc with
            t = arr.(i).t;
            busy = arr.(i).busy;
            busy_min = min !acc.busy_min arr.(i).busy_min;
            busy_max = max !acc.busy_max arr.(i).busy_max;
            queue = arr.(i).queue;
            queue_min = min !acc.queue_min arr.(i).queue_min;
            queue_max = max !acc.queue_max arr.(i).queue_max;
            demand = arr.(i).demand;
            demand_min = min !acc.demand_min arr.(i).demand_min;
            demand_max = max !acc.demand_max arr.(i).demand_max;
            running = arr.(i).running;
            running_min = min !acc.running_min arr.(i).running_min;
            running_max = max !acc.running_max arr.(i).running_max;
            max_wait = arr.(i).max_wait;
            max_wait_min = Float.min !acc.max_wait_min arr.(i).max_wait_min;
            max_wait_max = Float.max !acc.max_wait_max arr.(i).max_wait_max;
            excess = arr.(i).excess;
          }
        done;
        !acc)
  end

let coord v = Printf.sprintf "%.1f" v

let chart buf signal runs =
  (* Shared domains across the drawn runs. *)
  let drawn =
    List.filteri (fun i _ -> i < max_runs) runs
    |> List.filter_map (fun (label, series) ->
           match Series.samples series with
           | [] -> None
           | samples -> Some (label, thin samples))
  in
  match drawn with
  | [] ->
      Buffer.add_string buf "<p class=\"muted\">no observations</p>\n"
  | _ :: _ ->
      let tmin = ref infinity and tmax = ref neg_infinity in
      let vmax = ref 0.0 in
      List.iter
        (fun (_, samples) ->
          List.iter
            (fun s ->
              tmin := Float.min !tmin s.Series.t;
              tmax := Float.max !tmax s.Series.t;
              vmax := Float.max !vmax (signal.hi s *. signal.scale))
            samples)
        drawn;
      let tspan = Float.max (!tmax -. !tmin) 1e-9 in
      let vmax = if !vmax <= 0.0 then 1.0 else !vmax in
      let x t = mleft +. ((t -. !tmin) /. tspan *. plot_w) in
      let y v =
        mtop +. plot_h -. (Float.min v vmax /. vmax *. plot_h)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "<svg viewBox=\"0 0 %.0f %.0f\" role=\"img\" aria-label=\"%s\">\n"
           width height
           (html_escape (signal.title ^ " over simulated time")));
      (* recessive grid: baseline, mid, top *)
      List.iter
        (fun frac ->
          let gy = mtop +. (plot_h *. (1.0 -. frac)) in
          Buffer.add_string buf
            (Printf.sprintf
               "<line class=\"grid\" x1=\"%s\" y1=\"%s\" x2=\"%s\" y2=\"%s\"/>\n"
               (coord mleft) (coord gy) (coord (width -. mright)) (coord gy)))
        [ 0.0; 0.5; 1.0 ];
      (* y labels: 0 and max; x labels: first and last day *)
      Buffer.add_string buf
        (Printf.sprintf
           "<text class=\"tick\" x=\"%s\" y=\"%s\" text-anchor=\"end\">%s</text>\n"
           (coord (mleft -. 6.0))
           (coord (mtop +. plot_h +. 4.0))
           "0");
      Buffer.add_string buf
        (Printf.sprintf
           "<text class=\"tick\" x=\"%s\" y=\"%s\" text-anchor=\"end\">%s</text>\n"
           (coord (mleft -. 6.0))
           (coord (mtop +. 8.0))
           (html_escape (fnum vmax)));
      Buffer.add_string buf
        (Printf.sprintf
           "<text class=\"tick\" x=\"%s\" y=\"%s\">day %s</text>\n"
           (coord mleft)
           (coord (height -. 6.0))
           (fnum (!tmin /. day)));
      Buffer.add_string buf
        (Printf.sprintf
           "<text class=\"tick\" x=\"%s\" y=\"%s\" text-anchor=\"end\">day %s</text>\n"
           (coord (width -. mright))
           (coord (height -. 6.0))
           (fnum (!tmax /. day)));
      (* bands first (under every line), then lines *)
      List.iteri
        (fun i (label, samples) ->
          let color = Printf.sprintf "var(--s%d)" (i + 1) in
          let pts f =
            List.map
              (fun s ->
                Printf.sprintf "%s,%s" (coord (x s.Series.t))
                  (coord (y (f s *. signal.scale))))
              samples
          in
          let upper = pts signal.hi and lower = List.rev (pts signal.lo) in
          Buffer.add_string buf
            (Printf.sprintf
               "<polygon class=\"band\" fill=\"%s\" points=\"%s\"><title>%s \
                (min-max)</title></polygon>\n"
               color
               (String.concat " " (upper @ lower))
               (html_escape label)))
        drawn;
      List.iteri
        (fun i (label, samples) ->
          let color = Printf.sprintf "var(--s%d)" (i + 1) in
          let points =
            List.map
              (fun s ->
                Printf.sprintf "%s,%s" (coord (x s.Series.t))
                  (coord (y (signal.value s *. signal.scale))))
              samples
          in
          Buffer.add_string buf
            (Printf.sprintf
               "<polyline class=\"line\" stroke=\"%s\" points=\"%s\"><title>%s</title></polyline>\n"
               color
               (String.concat " " points)
               (html_escape label)))
        drawn;
      Buffer.add_string buf "</svg>\n"

(* --- legend and summary table --- *)

let legend buf runs =
  if List.length runs >= 2 then begin
    Buffer.add_string buf "<div class=\"legend\">";
    List.iteri
      (fun i (label, _) ->
        if i < max_runs then
          Buffer.add_string buf
            (Printf.sprintf
               "<span class=\"key\"><span class=\"swatch\" \
                style=\"background:var(--s%d)\"></span>%s</span>"
               (i + 1) (html_escape label)))
      runs;
    let extra = List.length runs - max_runs in
    if extra > 0 then
      Buffer.add_string buf
        (Printf.sprintf
           "<span class=\"key muted\">+%d more in the table only</span>"
           extra);
    Buffer.add_string buf "</div>\n"
  end

let find_summary rows key =
  List.find_opt (fun r -> r.Series.label = key) rows

let summary_table buf runs =
  Buffer.add_string buf
    "<table>\n<thead><tr><th>run</th><th>observed</th><th>samples</th>\
     <th>avg busy</th><th>avg queue</th><th>avg backlog</th>\
     <th>avg running</th><th>peak wait (h)</th><th>excess (h)</th></tr>\
     </thead>\n<tbody>\n";
  List.iteri
    (fun i (label, series) ->
      let rows = Series.summary series in
      let cell key f =
        match find_summary rows key with
        | None -> "&ndash;"
        | Some r -> html_escape (fnum (f r))
      in
      let swatch =
        if i < max_runs then
          Printf.sprintf
            "<span class=\"swatch\" style=\"background:var(--s%d)\"></span>"
            (i + 1)
        else ""
      in
      Buffer.add_string buf
        (Printf.sprintf
           "<tr><td>%s%s</td><td>%d</td><td>%d&times;%d</td><td>%s</td>\
            <td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n"
           swatch (html_escape label) (Series.observed series)
           (Series.length series) (Series.stride series)
           (cell "busy_nodes" (fun r -> r.Series.avg))
           (cell "queue_jobs" (fun r -> r.Series.avg))
           (cell "backlog_nodes" (fun r -> r.Series.avg))
           (cell "running_jobs" (fun r -> r.Series.avg))
           (cell "max_wait_s" (fun r -> r.Series.hi *. hours))
           (cell "excess_s" (fun r -> r.Series.last *. hours))))
    runs;
  Buffer.add_string buf "</tbody>\n</table>\n"

(* --- document shell --- *)

let css =
  {|:root { color-scheme: light dark;
  --bg: #ffffff; --ink: #1f2328; --muted: #667085; --grid: #e4e7ec;
  --border: #d0d5dd;
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a; --s4: #eda100;
  --s5: #e87ba4; --s6: #008300; --s7: #4a3aa7; --s8: #e34948; }
@media (prefers-color-scheme: dark) { :root {
  --bg: #16181d; --ink: #e6e8eb; --muted: #98a2b3; --grid: #2c313a;
  --border: #3a404c;
  --s1: #3987e5; --s2: #d95926; --s3: #199e70; --s4: #c98500;
  --s5: #d55181; --s6: #008300; --s7: #9085e9; --s8: #e66767; } }
body { background: var(--bg); color: var(--ink);
  font: 15px/1.5 system-ui, sans-serif;
  max-width: 960px; margin: 2rem auto; padding: 0 1rem; }
h1 { font-size: 1.4rem; margin-bottom: 0.2rem; }
h2 { font-size: 1.05rem; margin: 1.6rem 0 0.4rem; }
.muted, .sub { color: var(--muted); }
.sub { margin-top: 0; }
svg { width: 100%; height: auto; display: block; }
svg .grid { stroke: var(--grid); stroke-width: 1; }
svg .tick { fill: var(--muted); font-size: 11px; }
svg .line { fill: none; stroke-width: 2;
  stroke-linejoin: round; stroke-linecap: round; }
svg .band { opacity: 0.14; stroke: none; }
.legend { display: flex; flex-wrap: wrap; gap: 0.3rem 1.1rem;
  margin: 0.6rem 0; }
.key { display: inline-flex; align-items: center; gap: 0.4rem; }
.swatch { display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin-right: 0.35rem; }
table { border-collapse: collapse; width: 100%; font-size: 0.88rem;
  font-variant-numeric: tabular-nums; }
th, td { text-align: right; padding: 0.3rem 0.55rem;
  border-bottom: 1px solid var(--grid); white-space: nowrap; }
th:first-child, td:first-child { text-align: left; }
thead th { color: var(--muted); font-weight: 600;
  border-bottom: 1px solid var(--border); }
footer { color: var(--muted); font-size: 0.8rem; margin: 2rem 0 1rem; }
a { color: var(--s1); }
|}

let document ~title body =
  Printf.sprintf
    "<!doctype html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
     <meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n\
     <title>%s</title>\n<style>\n%s</style>\n</head>\n<body>\n%s\
     <footer>schedsim run-health report &middot; schema %s &middot; \
     simulated-time axis in days</footer>\n</body>\n</html>\n"
    (html_escape title) css body Series.schema

let page ~title ?subtitle runs =
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf
    (Printf.sprintf "<h1>%s</h1>\n" (html_escape title));
  Option.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "<p class=\"sub\">%s</p>\n" (html_escape s)))
    subtitle;
  legend buf runs;
  List.iter
    (fun signal ->
      Buffer.add_string buf
        (Printf.sprintf "<h2>%s <span class=\"muted\">(%s)</span></h2>\n"
           (html_escape signal.title) (html_escape signal.unit_));
      chart buf signal runs)
    signals;
  Buffer.add_string buf "<h2>Summary</h2>\n";
  summary_table buf runs;
  document ~title (Buffer.contents buf)

type section = {
  href : string;
  title : string;
  runs : (string * Series.t) list;
}

let index ~title sections =
  let buf = Buffer.create (1 lsl 14) in
  Buffer.add_string buf
    (Printf.sprintf "<h1>%s</h1>\n" (html_escape title));
  Buffer.add_string buf
    (Printf.sprintf
       "<p class=\"sub\">%d report pages; averages are time-weighted over \
        the whole simulation, excess is cumulative excessive wait.</p>\n"
       (List.length sections));
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "<h2><a href=\"%s\">%s</a></h2>\n"
           (html_escape s.href) (html_escape s.title));
      summary_table buf s.runs)
    sections;
  document ~title (Buffer.contents buf)
