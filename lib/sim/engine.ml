type r_star = Actual | Requested | Predicted

let r_star_name = function
  | Actual -> "R*=T"
  | Requested -> "R*=R"
  | Predicted -> "R*=pred"

type queue_sample = { time : float; length : int }

type result = {
  outcomes : Metrics.Outcome.t list;
  queue_samples : queue_sample list;
  decisions : int;
  horizon : float;
  validation : Schedcheck.Report.t option;
}

type event = Arrival of Workload.Job.t | Finish of int

(* The engine's own run-health instruments, registered on the caller's
   fresh registry when [?metrics] is given. *)
type instruments = {
  m_decisions : Simcore.Metrics.counter;
  m_started : Simcore.Metrics.counter;
  m_completed : Simcore.Metrics.counter;
  m_queue : Simcore.Metrics.gauge;
  m_busy : Simcore.Metrics.gauge;
  m_backlog : Simcore.Metrics.gauge;
  m_wait : Simcore.Metrics.histogram;
  m_queue_depth : Simcore.Metrics.histogram;
}

let instruments_of reg =
  {
    m_decisions =
      Simcore.Metrics.counter reg "schedsim_decisions"
        ~help:"scheduling decision points";
    m_started =
      Simcore.Metrics.counter reg "schedsim_jobs_started"
        ~help:"jobs started";
    m_completed =
      Simcore.Metrics.counter reg "schedsim_jobs_completed"
        ~help:"jobs completed";
    m_queue =
      Simcore.Metrics.gauge reg "schedsim_queue_jobs"
        ~help:"waiting jobs after the last decision";
    m_busy =
      Simcore.Metrics.gauge reg "schedsim_busy_nodes"
        ~help:"busy nodes after the last decision";
    m_backlog =
      Simcore.Metrics.gauge reg "schedsim_backlog_nodes"
        ~help:"nodes demanded by waiting jobs after the last decision";
    m_wait =
      Simcore.Metrics.histogram reg "schedsim_wait_seconds"
        ~help:"per-job wait at start, seconds";
    m_queue_depth =
      Simcore.Metrics.histogram reg "schedsim_queue_depth"
        ~help:"waiting jobs per decision point";
  }

let run ?(machine = Cluster.Machine.titan) ?log ?series ?metrics ?validate
    ~r_star ~policy trace =
  (* On-line predictor state (Predicted mode): running mean of the
     actual/requested ratio of completed jobs, seeded at 1.0 (trust the
     user until evidence accumulates). *)
  let ratio_sum = ref 1.0 in
  let ratio_count = ref 1 in
  let estimator (j : Workload.Job.t) =
    match r_star with
    | Actual -> Float.min j.runtime j.requested
    | Requested -> j.requested
    | Predicted ->
        let ratio = !ratio_sum /. float_of_int !ratio_count in
        Float.max Simcore.Units.minute (Float.min j.requested (j.requested *. ratio))
  in
  let learn (j : Workload.Job.t) =
    if r_star = Predicted then begin
      ratio_sum := !ratio_sum +. (Float.min j.runtime j.requested /. j.requested);
      incr ratio_count
    end
  in
  Array.iter
    (fun j ->
      if not (Cluster.Machine.fits machine j) then
        invalid_arg
          (Printf.sprintf "Engine.run: job %d wider than machine"
             j.Workload.Job.id))
    (Workload.Trace.jobs trace);
  let events = Simcore.Event_queue.create () in
  Array.iter
    (fun (j : Workload.Job.t) ->
      Simcore.Event_queue.schedule events ~time:j.submit (Arrival j))
    (Workload.Trace.jobs trace);
  let running = Cluster.Running_set.create ~machine in
  let inst = Option.map instruments_of metrics in
  (* Waiting queue in submit order: appends at the back. *)
  let waiting : Workload.Job.t list ref = ref [] in
  let outcomes = ref [] in
  let queue_samples = ref [] in
  let decisions = ref 0 in
  let horizon = ref 0.0 in
  let start_job now (j : Workload.Job.t) =
    if not (List.exists (fun w -> Workload.Job.equal w j) !waiting) then
      invalid_arg
        (Printf.sprintf "Engine.run: policy started non-waiting job %d" j.id);
    let duration = Float.min j.runtime j.requested in
    let finish = now +. duration in
    Cluster.Running_set.add running
      { job = j; start = now; finish; est_finish = now +. estimator j };
    Simcore.Event_queue.schedule events ~time:finish (Finish j.id);
    waiting := List.filter (fun w -> not (Workload.Job.equal w j)) !waiting;
    let wait = now -. j.submit in
    (match series with
    | None -> ()
    | Some s -> Series.note_start s ~wait);
    (match inst with
    | None -> ()
    | Some i ->
        Simcore.Metrics.incr i.m_started;
        Simcore.Metrics.observe i.m_wait (int_of_float wait));
    outcomes := Metrics.Outcome.v ~job:j ~start:now ~finish :: !outcomes
  in
  let apply now = function
    | Arrival j -> waiting := !waiting @ [ j ]
    | Finish id ->
        let entry = Cluster.Running_set.remove running ~id in
        learn entry.Cluster.Running_set.job;
        (match inst with
        | None -> ()
        | Some i -> Simcore.Metrics.incr i.m_completed);
        horizon := Float.max !horizon now
  in
  (* One pass over the post-decision queue: length, core demand
     (backlog) and the longest current wait. *)
  let health_sample now =
    let queue = ref 0 and demand = ref 0 and max_wait = ref 0.0 in
    List.iter
      (fun (j : Workload.Job.t) ->
        incr queue;
        demand := !demand + j.nodes;
        let w = now -. j.submit in
        if w > !max_wait then max_wait := w)
      !waiting;
    let busy = Cluster.Running_set.busy_nodes running in
    (match series with
    | None -> ()
    | Some s ->
        Series.observe s ~now ~busy ~queue:!queue ~demand:!demand
          ~running:(Cluster.Running_set.count running) ~max_wait:!max_wait);
    match inst with
    | None -> ()
    | Some i ->
        Simcore.Metrics.incr i.m_decisions;
        Simcore.Metrics.set i.m_queue (float_of_int !queue);
        Simcore.Metrics.set i.m_busy (float_of_int busy);
        Simcore.Metrics.set i.m_backlog (float_of_int !demand);
        Simcore.Metrics.observe i.m_queue_depth !queue
  in
  let rec drain_instant now =
    match Simcore.Event_queue.next_time events with
    | Some t when t <= now +. 1e-9 ->
        let _, e = Option.get (Simcore.Event_queue.pop events) in
        apply now e;
        drain_instant now
    | _ -> ()
  in
  let rec loop () =
    match Simcore.Event_queue.pop events with
    | None -> ()
    | Some (now, e) ->
        apply now e;
        drain_instant now;
        horizon := Float.max !horizon now;
        let ctx =
          {
            Sched.Policy.now;
            waiting = !waiting;
            running;
            r_star = estimator;
          }
        in
        let to_start = policy.Sched.Policy.decide ctx in
        incr decisions;
        (match log with
        | None -> ()
        | Some l ->
            Decision_log.record l ~time:now
              ~queue:(List.length ctx.Sched.Policy.waiting)
              ~started:(List.length to_start)
              ~probe:policy.Sched.Policy.probe);
        List.iter (start_job now) to_start;
        if series <> None || inst <> None then health_sample now;
        queue_samples :=
          { time = now; length = List.length !waiting } :: !queue_samples;
        loop ()
  in
  loop ();
  let outcomes = List.rev !outcomes in
  let validation =
    match validate with
    | None -> None
    | Some expect ->
        (* The Predicted estimator is stateful (it learns as jobs
           complete), so its profiles cannot be rebuilt after the fact:
           keep the machine-level invariants, drop the differential. *)
        let expect =
          if r_star = Predicted then Schedcheck.Validator.Generic
          else expect
        in
        let replay_r_star (j : Workload.Job.t) =
          match r_star with
          | Requested -> j.requested
          | Actual | Predicted -> Float.min j.runtime j.requested
        in
        Some
          (Schedcheck.Validator.validate ~machine ~expect
             ~r_star:replay_r_star ~subject:policy.Sched.Policy.name ~trace
             ~outcomes ())
  in
  {
    outcomes;
    queue_samples = List.rev !queue_samples;
    decisions = !decisions;
    horizon = !horizon;
    validation;
  }

let windowed_queue_average samples ~from_ ~upto =
  if upto <= from_ then 0.0
  else begin
    let integral = ref 0.0 in
    let last_time = ref from_ in
    let last_value = ref 0.0 in
    List.iter
      (fun { time; length } ->
        let t = Float.max from_ (Float.min upto time) in
        if t > !last_time then
          integral := !integral +. (!last_value *. (t -. !last_time));
        if time <= upto then begin
          last_time := Float.max from_ (Float.min upto time);
          last_value := float_of_int length
        end)
      samples;
    if upto > !last_time then
      integral := !integral +. (!last_value *. (upto -. !last_time));
    !integral /. (upto -. from_)
  end
