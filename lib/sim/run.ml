type t = {
  policy_name : string;
  r_star : Engine.r_star;
  measured : Metrics.Outcome.t list;
  aggregate : Metrics.Aggregate.t;
  class_matrix : Metrics.Class_matrix.t;
  decisions : int;
  wall_clock : float;
  utilization : float;
  queue_samples : Engine.queue_sample list;
  log : Decision_log.t option;
  validation : Schedcheck.Report.t option;
  series : Series.t option;
}

(* Busy node-seconds inside [from_, upto), over machine capacity. *)
let utilization_of ~machine ~from_ ~upto outcomes =
  let window = upto -. from_ in
  if window <= 0.0 then 0.0
  else begin
    let busy =
      List.fold_left
        (fun acc (o : Metrics.Outcome.t) ->
          let overlap =
            Float.min upto o.finish -. Float.max from_ o.start
          in
          if overlap > 0.0 then
            acc +. (overlap *. float_of_int o.job.Workload.Job.nodes)
          else acc)
        0.0 outcomes
    in
    busy /. (float_of_int machine.Cluster.Machine.nodes *. window)
  end

let simulate ?(machine = Cluster.Machine.titan) ?log ?series ?metrics ?validate
    ~r_star ~policy trace =
  let t0 = Simcore.Clock.monotonic_s () in
  let result =
    Engine.run ~machine ?log ?series ?metrics ?validate ~r_star ~policy trace
  in
  let wall_clock = Simcore.Clock.monotonic_s () -. t0 in
  let measured =
    List.filter
      (fun (o : Metrics.Outcome.t) -> Workload.Trace.in_window trace o.job)
      result.Engine.outcomes
  in
  let avg_queue_length =
    Engine.windowed_queue_average result.Engine.queue_samples
      ~from_:(Workload.Trace.measure_start trace)
      ~upto:(Workload.Trace.measure_end trace)
  in
  {
    policy_name = policy.Sched.Policy.name;
    r_star;
    measured;
    aggregate = Metrics.Aggregate.compute ~avg_queue_length measured;
    class_matrix = Metrics.Class_matrix.compute measured;
    decisions = result.Engine.decisions;
    wall_clock;
    queue_samples = result.Engine.queue_samples;
    log;
    validation = result.Engine.validation;
    series;
    utilization =
      utilization_of ~machine
        ~from_:(Workload.Trace.measure_start trace)
        ~upto:(Workload.Trace.measure_end trace)
        result.Engine.outcomes;
  }

let excess t ~threshold = Metrics.Excess.compute ~threshold t.measured

let fcfs_thresholds t =
  (t.aggregate.Metrics.Aggregate.max_wait, t.aggregate.Metrics.Aggregate.p98_wait)
