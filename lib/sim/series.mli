(** Bounded simulated-time run-health series.

    A sampler the engine feeds at every decision point (decisions
    happen exactly at job arrivals and departures, so every completion
    instant is sampled too): busy nodes, waiting-queue length and
    core demand (backlog), running-job count, the longest current wait
    in the queue, and the cumulative excessive wait of started jobs.
    This is the system-level health signal behind the paper's
    Figures 2-8 — queue and backlog trajectories, utilization, and
    excess-wait accumulation over the month.

    Memory is fixed: the series holds at most [capacity] samples.
    When full it deterministically halves its resolution — adjacent
    samples merge pairwise (keeping the later sample's instantaneous
    values and the min/max envelope of both) and from then on one
    sample summarizes twice as many observations.  The committed
    samples are therefore a pure function of the observation sequence,
    so exports are byte-identical for any [REPRO_JOBS] / pool width,
    like every other experiment artifact (tested).

    Whole-run summaries ({!summary}) do not go through the bounded
    buffer at all: exact time-weighted averages and extremes come from
    {!Simcore.Stats.Timeline} accumulators fed at every observation. *)

type sample = {
  t : float;  (** time of the last observation merged into this sample *)
  span : int;  (** number of raw observations merged *)
  busy : int;  (** busy nodes at [t] *)
  busy_min : int;
  busy_max : int;
  queue : int;  (** waiting jobs at [t] *)
  queue_min : int;
  queue_max : int;
  demand : int;  (** nodes demanded by waiting jobs (backlog) at [t] *)
  demand_min : int;
  demand_max : int;
  running : int;  (** running jobs at [t] *)
  running_min : int;
  running_max : int;
  max_wait : float;  (** longest current wait in the queue at [t], s *)
  max_wait_min : float;
  max_wait_max : float;
  excess : float;
      (** cumulative excessive wait of jobs started by [t], seconds
          (non-decreasing across samples) *)
}

type t

val create :
  ?capacity:int -> ?threshold:float -> policy:string -> unit -> t
(** Series of at most [capacity] samples (default 4096; rounded down
    to an even number, clamped to >= 2).  [threshold] is the per-job
    wait (seconds) beyond which wait counts as excessive (default 0.0:
    all wait accumulates — policy-independent, unlike the paper's
    FCFS-derived E^max/E^98% thresholds, so trajectories of different
    policies compare directly). *)

val policy : t -> string
val capacity : t -> int
val threshold : t -> float

val observed : t -> int
(** Raw observations fed so far. *)

val stride : t -> int
(** Observations summarized per sample (doubles at each halving). *)

val length : t -> int
(** Committed samples ([<= capacity]).  The at most [stride - 1]
    newest observations still accumulating toward the next sample are
    not yet visible in {!samples}. *)

val samples : t -> sample list
(** Committed samples, oldest first. *)

val cumulative_excess : t -> float

val note_start : t -> wait:float -> unit
(** Account a started job's wait: [max 0 (wait - threshold)] joins the
    cumulative excessive wait. *)

val observe :
  t ->
  now:float ->
  busy:int ->
  queue:int ->
  demand:int ->
  running:int ->
  max_wait:float ->
  unit
(** Record one decision-point observation.  [now] must be
    non-decreasing across calls.
    @raise Invalid_argument if time goes backwards. *)

(** {2 Summaries} *)

type summary = {
  label : string;  (** signal name: busy_nodes, queue_jobs, ... *)
  last : float;  (** value at the last observation *)
  avg : float;  (** time-weighted average over the observed span *)
  lo : float;  (** minimum over positive-duration spans *)
  hi : float;  (** maximum over positive-duration spans *)
}

val summary : t -> summary list
(** One row per signal (busy_nodes, queue_jobs, backlog_nodes,
    running_jobs, max_wait_s, excess_s), computed from the exact
    Timeline accumulators up to the last observation — unaffected by
    downsampling.  Empty list before the first observation. *)

(** {2 Export} *)

val schema : string
(** The JSONL schema identifier, ["run_series/1"]. *)

val pp_jsonl : ?run:string -> Format.formatter -> t -> unit
(** One [{"type":"run", ...}] header carrying the policy, observation
    and sample counts, stride and threshold, then one
    [{"type":"sample", ...}] line per committed sample.  [run] labels
    every line so multiple series can share one file (default [""]). *)
