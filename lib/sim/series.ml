type sample = {
  t : float;
  span : int;
  busy : int;
  busy_min : int;
  busy_max : int;
  queue : int;
  queue_min : int;
  queue_max : int;
  demand : int;
  demand_min : int;
  demand_max : int;
  running : int;
  running_min : int;
  running_max : int;
  max_wait : float;
  max_wait_min : float;
  max_wait_max : float;
  excess : float;
}

(* Exact whole-run accumulators: one Timeline per signal, created at
   the first observation (the series does not know the trace start at
   [create] time). *)
type timelines = {
  tl_busy : Simcore.Stats.Timeline.t;
  tl_queue : Simcore.Stats.Timeline.t;
  tl_demand : Simcore.Stats.Timeline.t;
  tl_running : Simcore.Stats.Timeline.t;
  tl_max_wait : Simcore.Stats.Timeline.t;
  tl_excess : Simcore.Stats.Timeline.t;
}

type t = {
  policy : string;
  threshold : float;
  points : sample array;  (* slots [0, n) committed *)
  mutable n : int;
  mutable stride : int;  (* raw observations per sample *)
  mutable observed : int;
  mutable excess : float;  (* cumulative excessive wait, seconds *)
  mutable pending : sample option;  (* accumulating toward next commit *)
  mutable last : sample option;  (* newest raw observation *)
  mutable last_now : float;
  mutable tls : timelines option;
}

let dummy =
  {
    t = 0.0; span = 0;
    busy = 0; busy_min = 0; busy_max = 0;
    queue = 0; queue_min = 0; queue_max = 0;
    demand = 0; demand_min = 0; demand_max = 0;
    running = 0; running_min = 0; running_max = 0;
    max_wait = 0.0; max_wait_min = 0.0; max_wait_max = 0.0;
    excess = 0.0;
  }

let create ?(capacity = 4096) ?(threshold = 0.0) ~policy () =
  let capacity = max 2 (capacity land lnot 1) in
  {
    policy;
    threshold;
    points = Array.make capacity dummy;
    n = 0;
    stride = 1;
    observed = 0;
    excess = 0.0;
    pending = None;
    last = None;
    last_now = neg_infinity;
    tls = None;
  }

let policy t = t.policy
let capacity t = Array.length t.points
let threshold t = t.threshold
let observed t = t.observed
let stride t = t.stride
let length t = t.n
let samples t = Array.to_list (Array.sub t.points 0 t.n)
let cumulative_excess t = t.excess

let note_start t ~wait = t.excess <- t.excess +. Float.max 0.0 (wait -. t.threshold)

(* [b] is the later sample: instantaneous values come from it, the
   min/max envelope covers both, spans add. *)
let merge a b =
  {
    t = b.t;
    span = a.span + b.span;
    busy = b.busy;
    busy_min = min a.busy_min b.busy_min;
    busy_max = max a.busy_max b.busy_max;
    queue = b.queue;
    queue_min = min a.queue_min b.queue_min;
    queue_max = max a.queue_max b.queue_max;
    demand = b.demand;
    demand_min = min a.demand_min b.demand_min;
    demand_max = max a.demand_max b.demand_max;
    running = b.running;
    running_min = min a.running_min b.running_min;
    running_max = max a.running_max b.running_max;
    max_wait = b.max_wait;
    max_wait_min = Float.min a.max_wait_min b.max_wait_min;
    max_wait_max = Float.max a.max_wait_max b.max_wait_max;
    excess = b.excess;
  }

(* Pairwise in-place halving: sample i absorbs samples 2i and 2i+1.
   [n] is even here because commits only happen at full strides and
   the capacity is even. *)
let halve t =
  let half = t.n / 2 in
  for i = 0 to half - 1 do
    t.points.(i) <- merge t.points.(2 * i) t.points.((2 * i) + 1)
  done;
  t.n <- half;
  t.stride <- t.stride * 2

let observe t ~now ~busy ~queue ~demand ~running ~max_wait =
  if now < t.last_now then
    invalid_arg "Series.observe: time went backwards";
  let tls =
    match t.tls with
    | Some tls -> tls
    | None ->
        let tls =
          {
            tl_busy = Simcore.Stats.Timeline.create ~start:now;
            tl_queue = Simcore.Stats.Timeline.create ~start:now;
            tl_demand = Simcore.Stats.Timeline.create ~start:now;
            tl_running = Simcore.Stats.Timeline.create ~start:now;
            tl_max_wait = Simcore.Stats.Timeline.create ~start:now;
            tl_excess = Simcore.Stats.Timeline.create ~start:now;
          }
        in
        t.tls <- Some tls;
        tls
  in
  Simcore.Stats.Timeline.record tls.tl_busy ~now ~value:(float_of_int busy);
  Simcore.Stats.Timeline.record tls.tl_queue ~now ~value:(float_of_int queue);
  Simcore.Stats.Timeline.record tls.tl_demand ~now
    ~value:(float_of_int demand);
  Simcore.Stats.Timeline.record tls.tl_running ~now
    ~value:(float_of_int running);
  Simcore.Stats.Timeline.record tls.tl_max_wait ~now ~value:max_wait;
  Simcore.Stats.Timeline.record tls.tl_excess ~now ~value:t.excess;
  t.last_now <- now;
  t.observed <- t.observed + 1;
  let s =
    {
      t = now;
      span = 1;
      busy; busy_min = busy; busy_max = busy;
      queue; queue_min = queue; queue_max = queue;
      demand; demand_min = demand; demand_max = demand;
      running; running_min = running; running_max = running;
      max_wait; max_wait_min = max_wait; max_wait_max = max_wait;
      excess = t.excess;
    }
  in
  t.last <- Some s;
  let p = match t.pending with None -> s | Some p -> merge p s in
  if p.span >= t.stride then begin
    t.pending <- None;
    t.points.(t.n) <- p;
    t.n <- t.n + 1;
    if t.n = Array.length t.points then halve t
  end
  else t.pending <- Some p

(* --- summaries --- *)

type summary = {
  label : string;
  last : float;
  avg : float;
  lo : float;
  hi : float;
}

let summary t =
  match (t.tls, t.last) with
  | None, _ | _, None -> []
  | Some tls, Some last ->
      let upto = t.last_now in
      let row label tl last =
        {
          label;
          last;
          avg = Simcore.Stats.Timeline.average tl ~upto;
          lo = Simcore.Stats.Timeline.min_value tl ~upto;
          hi = Simcore.Stats.Timeline.max_value tl ~upto;
        }
      in
      [
        row "busy_nodes" tls.tl_busy (float_of_int last.busy);
        row "queue_jobs" tls.tl_queue (float_of_int last.queue);
        row "backlog_nodes" tls.tl_demand (float_of_int last.demand);
        row "running_jobs" tls.tl_running (float_of_int last.running);
        row "max_wait_s" tls.tl_max_wait last.max_wait;
        row "excess_s" tls.tl_excess last.excess;
      ]

(* --- JSONL export --- *)

let schema = "run_series/1"

(* Minimal JSON string escaping, as in Decision_log: labels are ASCII
   but quotes/backslashes must not break the line format. *)
let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pp_jsonl ?(run = "") fmt t =
  Format.fprintf fmt
    "{\"type\":\"run\",\"schema\":\"%s\",\"run\":\"%s\",\"policy\":\"%s\",\"observed\":%d,\"samples\":%d,\"stride\":%d,\"capacity\":%d,\"threshold\":%.3f,\"excess_total\":%.3f}@."
    schema (escape run) (escape t.policy) t.observed t.n t.stride
    (capacity t) t.threshold t.excess;
  Array.iteri
    (fun i s ->
      if i < t.n then
        Format.fprintf fmt
          "{\"type\":\"sample\",\"run\":\"%s\",\"i\":%d,\"t\":%.3f,\"span\":%d,\"busy\":%d,\"busy_min\":%d,\"busy_max\":%d,\"queue\":%d,\"queue_min\":%d,\"queue_max\":%d,\"demand\":%d,\"demand_min\":%d,\"demand_max\":%d,\"running\":%d,\"running_min\":%d,\"running_max\":%d,\"max_wait\":%.3f,\"max_wait_min\":%.3f,\"max_wait_max\":%.3f,\"excess\":%.3f}@."
          (escape run) i s.t s.span s.busy s.busy_min s.busy_max s.queue
          s.queue_min s.queue_max s.demand s.demand_min s.demand_max
          s.running s.running_min s.running_max s.max_wait s.max_wait_min
          s.max_wait_max s.excess)
    t.points
