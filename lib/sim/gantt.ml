let time_bounds outcomes =
  List.fold_left
    (fun (lo, hi) (o : Metrics.Outcome.t) ->
      (Float.min lo o.job.Workload.Job.submit, Float.max hi o.finish))
    (Float.infinity, Float.neg_infinity)
    outcomes

let jobs_chart ?(columns = 72) ?(max_jobs = 40) fmt outcomes =
  match outcomes with
  | [] -> Format.fprintf fmt "(no jobs)@."
  | _ ->
      let lo, hi = time_bounds outcomes in
      let span = Float.max 1e-9 (hi -. lo) in
      let col time =
        Stdlib.min (columns - 1)
          (Stdlib.max 0
             (int_of_float (float_of_int columns *. (time -. lo) /. span)))
      in
      let sorted =
        List.stable_sort
          (fun (a : Metrics.Outcome.t) (b : Metrics.Outcome.t) ->
            Workload.Job.compare_submit a.job b.job)
          outcomes
      in
      Format.fprintf fmt "time %a .. %a (%d columns; '.'=waiting '#'=running)@."
        Simcore.Units.pp_duration lo Simcore.Units.pp_duration hi columns;
      List.iteri
        (fun i (o : Metrics.Outcome.t) ->
          if i < max_jobs then begin
            let row = Bytes.make columns ' ' in
            let submit_col = col o.job.Workload.Job.submit in
            let start_col = col o.start in
            let finish_col = Stdlib.max (col o.finish) (start_col + 1) in
            for c = submit_col to start_col - 1 do
              Bytes.set row c '.'
            done;
            for c = start_col to Stdlib.min (columns - 1) (finish_col - 1) do
              Bytes.set row c '#'
            done;
            Format.fprintf fmt "%4d %3dn |%s|@." o.job.Workload.Job.id
              o.job.Workload.Job.nodes (Bytes.to_string row)
          end)
        sorted;
      let n = List.length sorted in
      if n > max_jobs then
        Format.fprintf fmt "... (%d more jobs not shown)@." (n - max_jobs)

let utilization_chart ?(columns = 72) ~capacity fmt outcomes =
  match outcomes with
  | [] -> Format.fprintf fmt "(no jobs)@."
  | _ ->
      let lo, hi = time_bounds outcomes in
      let span = Float.max 1e-9 (hi -. lo) in
      let bucket = span /. float_of_int columns in
      let busy = Array.make columns 0.0 in
      List.iter
        (fun (o : Metrics.Outcome.t) ->
          List.iteri
            (fun c () ->
              let b_lo = lo +. (float_of_int c *. bucket) in
              let b_hi = b_lo +. bucket in
              let overlap =
                Float.min b_hi o.finish -. Float.max b_lo o.start
              in
              if overlap > 0.0 then
                busy.(c) <-
                  busy.(c)
                  +. (overlap /. bucket
                     *. float_of_int o.job.Workload.Job.nodes))
            (List.init columns (fun _ -> ())))
        outcomes;
      Format.fprintf fmt
        "utilization over time %a .. %a (0-9 = fraction of %d nodes busy)@."
        Simcore.Units.pp_duration lo Simcore.Units.pp_duration hi capacity;
      Format.fprintf fmt "|";
      Array.iter
        (fun b ->
          let frac = Float.min 1.0 (b /. float_of_int capacity) in
          let digit = Stdlib.min 9 (int_of_float (frac *. 10.0)) in
          Format.fprintf fmt "%d" digit)
        busy;
      Format.fprintf fmt "|@."
