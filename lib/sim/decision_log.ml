type decision = {
  seq : int;
  time : float;
  queue : int;
  started : int;
  searched : bool;
  nodes : int;
  leaves : int;
  iterations : int;
  budget : int;
  exhausted : bool;
  improvements : int;
  winner_iteration : int;
  winner_depth : int;
}

let empty_decision =
  {
    seq = -1;
    time = 0.0;
    queue = 0;
    started = 0;
    searched = false;
    nodes = 0;
    leaves = 0;
    iterations = 0;
    budget = 0;
    exhausted = false;
    improvements = 0;
    winner_iteration = 0;
    winner_depth = -1;
  }

type t = {
  policy : string;
  ring : decision array;
  mutable recorded : int;
}

let create ?(capacity = 1 lsl 16) ~policy () =
  let capacity = max capacity 1 in
  { policy; ring = Array.make capacity empty_decision; recorded = 0 }

let policy t = t.policy
let capacity t = Array.length t.ring
let recorded t = t.recorded
let dropped t = max 0 (t.recorded - Array.length t.ring)

let record t ~time ~queue ~started ~probe =
  let seq = t.recorded in
  let d =
    match probe with
    | None ->
        { empty_decision with seq; time; queue; started }
    | Some (p : Simcore.Telemetry.Probe.t) ->
        {
          seq;
          time;
          queue;
          started;
          searched = true;
          nodes = p.nodes;
          leaves = p.leaves;
          iterations = p.iterations;
          budget = p.budget;
          exhausted = p.exhausted;
          improvements = p.improvements;
          winner_iteration = p.winner_iteration;
          winner_depth = p.winner_depth;
        }
  in
  t.ring.(seq mod Array.length t.ring) <- d;
  t.recorded <- seq + 1

let decisions t =
  let cap = Array.length t.ring in
  let retained = min t.recorded cap in
  List.init retained (fun i ->
      t.ring.((t.recorded - retained + i) mod cap))

(* Minimal JSON string escaping: policy names and run labels are ASCII
   but quotes/backslashes must not break the line format. *)
let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let schema = "decision_trace/1"

let pp_jsonl ?(run = "") fmt t =
  let ds = decisions t in
  Format.fprintf fmt
    "{\"type\":\"run\",\"schema\":\"%s\",\"run\":\"%s\",\"policy\":\"%s\",\"decisions\":%d,\"retained\":%d,\"dropped\":%d}@."
    schema (escape run) (escape t.policy) t.recorded (List.length ds)
    (dropped t);
  List.iter
    (fun d ->
      Format.fprintf fmt
        "{\"type\":\"decision\",\"run\":\"%s\",\"seq\":%d,\"t\":%.3f,\"queue\":%d,\"started\":%d,\"searched\":%b,\"nodes\":%d,\"leaves\":%d,\"iters\":%d,\"budget\":%d,\"exhausted\":%b,\"improvements\":%d,\"winner_iter\":%d,\"winner_depth\":%d}@."
        (escape run) d.seq d.time d.queue d.started d.searched d.nodes
        d.leaves d.iterations d.budget d.exhausted d.improvements
        d.winner_iteration d.winner_depth)
    ds

let chrome_events ?(run = "") ?(pid = 1) t =
  let label = if run = "" then t.policy else run ^ " " ^ t.policy in
  let meta =
    Printf.sprintf
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
      pid (escape label)
  in
  let events =
    List.concat_map
      (fun d ->
        (* 1 trace us = 1 simulated us; span length = search effort in
           nodes so relative decision cost is visible at a glance. *)
        let ts = d.time *. 1e6 in
        let dur = float_of_int (max d.nodes 1) in
        [
          Printf.sprintf
            "{\"name\":\"decision\",\"cat\":\"sched\",\"ph\":\"X\",\"pid\":%d,\"tid\":1,\"ts\":%.0f,\"dur\":%.0f,\"args\":{\"seq\":%d,\"queue\":%d,\"started\":%d,\"nodes\":%d,\"leaves\":%d,\"iters\":%d,\"improvements\":%d,\"winner_iter\":%d,\"winner_depth\":%d,\"exhausted\":%b}}"
            pid ts dur d.seq d.queue d.started d.nodes d.leaves d.iterations
            d.improvements d.winner_iteration d.winner_depth d.exhausted;
          Printf.sprintf
            "{\"name\":\"queue\",\"ph\":\"C\",\"pid\":%d,\"tid\":1,\"ts\":%.0f,\"args\":{\"waiting\":%d}}"
            pid ts d.queue;
        ])
      (decisions t)
  in
  meta :: events
