(** Per-decision event log: structured run tracing.

    A bounded ring buffer of scheduling-decision events — decision
    time, queue length, jobs started, and the search effort snapshot
    from the policy's {!Simcore.Telemetry.Probe} (zeros for policies
    that do not search).  The engine records one event per decision
    point; when the ring is full the oldest events are dropped (the
    drop count is kept, and the exporters report it).

    Everything recorded is a pure function of the simulation inputs —
    no wall-clock time, no randomness — so exported traces are
    byte-identical for any [REPRO_JOBS] / pool width, like every other
    experiment output (tested).

    Export formats:
    - {!pp_jsonl}: one JSON object per line, schema [decision_trace/1]
      (see DESIGN.md section 7 for the field list);
    - {!chrome_events}: Chrome [trace_event] objects (one complete
      "X" span per decision on the *simulated* time axis, 1 trace
      microsecond = 1 simulated microsecond, span duration = nodes
      visited, plus a "queue" counter track), to be wrapped in a
      [{"traceEvents": [...]}] document and opened in
      [chrome://tracing] / [ui.perfetto.dev]. *)

type decision = {
  seq : int;  (** 0-based decision index within the run *)
  time : float;  (** simulated decision time, seconds *)
  queue : int;  (** waiting-queue length the policy saw *)
  started : int;  (** jobs started by this decision *)
  searched : bool;  (** the policy ran a tree search (has a probe) *)
  nodes : int;
  leaves : int;
  iterations : int;
  budget : int;
  exhausted : bool;
  improvements : int;
  winner_iteration : int;
  winner_depth : int;
}

type t

val create : ?capacity:int -> policy:string -> unit -> t
(** Ring of at most [capacity] decisions (default 65536, clamped to
    >= 1). *)

val policy : t -> string
val capacity : t -> int

val schema : string
(** The JSONL schema identifier, ["decision_trace/1"]. *)

val record :
  t ->
  time:float ->
  queue:int ->
  started:int ->
  probe:Simcore.Telemetry.Probe.t option ->
  unit
(** Append one decision event; snapshots the probe fields (zeros when
    [None]). *)

val recorded : t -> int
(** Total events ever recorded, including dropped ones. *)

val dropped : t -> int

val decisions : t -> decision list
(** Retained events, oldest first. *)

val pp_jsonl : ?run:string -> Format.formatter -> t -> unit
(** One [{"type":"run", ...}] header line carrying the policy name,
    schema id, retained/dropped counts, then one
    [{"type":"decision", ...}] line per retained event.  [run] labels
    every line so multiple logs can share one file (default [""]). *)

val chrome_events : ?run:string -> ?pid:int -> t -> string list
(** Chrome [trace_event] JSON objects (no enclosing brackets), in
    event order: thread metadata, one "X" decision span and one
    "queue" counter sample per retained event.  [pid] separates runs
    in the viewer (default 1). *)
