(* Reproduction bench harness.

   Regenerates every table and figure of the paper (Sections 2-6), then
   the ablation studies, then bechamel microbenchmarks of the scheduler
   hot paths.  Knobs (environment variables):

     REPRO_SCALE   workload scale (default 1.0 = full months)
     REPRO_MONTHS  comma-separated subset of month labels
     REPRO_SEED    generator seed (default 42)
     REPRO_MAXL    cap on the Figure 6 budget sweep
     REPRO_ONLY    comma-separated experiment ids to run
     REPRO_SKIP_MICRO=1  skip the bechamel microbenchmarks *)

open Bechamel
open Toolkit

let selected () =
  match Sys.getenv_opt "REPRO_ONLY" with
  | None | Some "" -> Experiments.Registry.all
  | Some csv ->
      String.split_on_char ',' csv
      |> List.map String.trim
      |> List.filter_map Experiments.Registry.find

let run_experiments fmt =
  Format.fprintf fmt
    "Search-based Job Scheduling for Parallel Computer Workloads@.";
  Format.fprintf fmt
    "Reproduction harness (Vasupongayya, Chiang & Massey, Cluster 2005)@.";
  Format.fprintf fmt "scale=%g seed=%d months=%s@." (Experiments.Common.scale ())
    (Experiments.Common.seed ())
    (String.concat ","
       (List.map
          (fun m -> m.Workload.Month_profile.label)
          (Experiments.Common.months ())));
  List.iter
    (fun e ->
      let t0 = Unix.gettimeofday () in
      e.Experiments.Registry.run fmt;
      Format.fprintf fmt "[%s done in %.1fs]@." e.Experiments.Registry.id
        (Unix.gettimeofday () -. t0))
    (selected ())

(* ------------------------------------------------------------------ *)
(* Microbenchmarks of the hot kernels                                  *)

let search_test ~budget =
  Test.make
    ~name:(Printf.sprintf "dds-search/L=%d" budget)
    (Staged.stage (fun () ->
         let state =
           Experiments.Overhead.synthetic_state ~seed:(17 + budget) ()
         in
         ignore (Core.Search.run Core.Search.Dds ~budget state)))

let heuristic_path_test =
  Test.make ~name:"heuristic-path/30jobs"
    (Staged.stage (fun () ->
         (* just the iteration-0 path: one greedy schedule build *)
         let state = Experiments.Overhead.synthetic_state ~seed:17 () in
         ignore (Core.Search.run Core.Search.Dds ~budget:31 state)))

let profile_test =
  let releases =
    List.init 40 (fun i -> (float_of_int (((i * 977) mod 36000) + 60), 3))
  in
  Test.make ~name:"profile/build+place"
    (Staged.stage (fun () ->
         let p = Cluster.Profile.of_running ~now:0.0 ~capacity:128 releases in
         let s = Cluster.Profile.earliest_start p ~nodes:64 ~duration:7200.0 in
         Cluster.Profile.reserve p ~at:s ~nodes:64 ~duration:7200.0))

let microbench fmt =
  Format.fprintf fmt "@.%s@.== microbenchmarks (bechamel)@.%s@."
    (String.make 72 '=') (String.make 72 '=');
  let tests =
    [ profile_test; heuristic_path_test ]
    @ List.map (fun budget -> search_test ~budget) [ 1000; 4000; 8000 ]
  in
  let cfg =
    Benchmark.cfg ~limit:200 ~stabilize:true ~quota:(Time.second 1.0) ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (time_per_run :: _) ->
              Format.fprintf fmt "%-28s %12.3f ms/run@." name
                (time_per_run /. 1e6)
          | _ -> Format.fprintf fmt "%-28s (no estimate)@." name)
        results)
    tests

let () =
  let fmt = Format.std_formatter in
  let t0 = Unix.gettimeofday () in
  run_experiments fmt;
  if Sys.getenv_opt "REPRO_SKIP_MICRO" = None then microbench fmt;
  Format.fprintf fmt "@.total bench time: %.1fs@." (Unix.gettimeofday () -. t0)
