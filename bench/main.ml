(* Reproduction bench harness.

   Regenerates every table and figure of the paper (Sections 2-6), then
   the ablation studies, then bechamel microbenchmarks of the scheduler
   hot paths.  Knobs (environment variables):

     REPRO_SCALE   workload scale (default 1.0 = full months)
     REPRO_MONTHS  comma-separated subset of month labels
     REPRO_SEED    generator seed (default 42)
     REPRO_MAXL    cap on the Figure 6 budget sweep
     REPRO_ONLY    comma-separated experiment ids to run
     REPRO_JOBS    domain-pool width for experiment execution
                   (default: recommended_domain_count - 1; also -j N)
     REPRO_SKIP_MICRO=1  skip the bechamel microbenchmarks

   Validation (rides along with the tables):

     --validate           validate every schedule the experiments
                          simulate (Schedcheck: machine-level
                          invariants, differential EASY backfill
                          replay); print an aggregate summary and
                          exit 1 on any violation

   Tracing (rides along with the tables):

     --trace[=path]       record a per-decision event log for every
                          simulation the experiments run and write it
                          as JSONL (default bench.trace.jsonl), plus a
                          Chrome trace_event view (<base>.chrome.json,
                          simulated-time axis, deterministic) and the
                          domain-pool worker spans
                          (<base>.pool.json, wall-clock, NOT
                          deterministic)

   Run-health reports (rides along with the tables):

     --report[=dir]       sample a run-health series for every
                          simulation the experiments run and write
                          self-contained HTML report pages (one per
                          month/load/estimator cell, overlaying its
                          policies) plus a cross-policy index.html and
                          the raw series JSONL (run_series/1) into dir
                          (default bench-report); deterministic for
                          any REPRO_JOBS

   Progress (stderr only, outside the byte-identical stdout):

     --progress           print a [k/n] experiment heartbeat with
                          per-experiment wall time and an ETA; also on
                          by default when stderr is a TTY

   Perf regression modes (instead of the tables):

     --perf-json [path]   measure search throughput (nodes/ms, trail
                          and snapshot backtracking) over a grid of
                          node budgets and queue depths, bechamel
                          micro-op costs, and the sequential vs
                          parallel harness wall-clock at the
                          REPRO_SCALE=0.1 quick config, and write
                          them as JSON (default
                          BENCH_search_hotpath.json)
     --perf-smoke [path]  re-measure the L=8000 / 30-job point and
                          fail (exit 1) if it regressed more than 30%
                          below the committed baseline JSON, or if the
                          parallel rendering of the smoke figure
                          differs byte-for-byte from the sequential
                          one *)

open Bechamel
open Toolkit

let selected () =
  match Sys.getenv_opt "REPRO_ONLY" with
  | None | Some "" -> Experiments.Registry.all
  | Some csv ->
      String.split_on_char ',' csv
      |> List.map String.trim
      |> List.filter_map Experiments.Registry.find

(* One failing experiment must not kill the whole regeneration.  The
   exception text is deterministic, so guarded output stays
   byte-identical between sequential and parallel renders. *)
let run_guarded e fmt =
  try e.Experiments.Registry.run fmt
  with exn ->
    Format.fprintf fmt "@.[%s FAILED: %s]@." e.Experiments.Registry.id
      (Printexc.to_string exn)

(* Wall-clock heartbeat on stderr: on with --progress or when stderr
   is a TTY; never touches the byte-identical stdout stream. *)
let progress_flag = ref false

let progress_enabled () =
  !progress_flag || (try Unix.isatty Unix.stderr with Unix.Unix_error _ -> false)

let run_experiments fmt =
  Format.fprintf fmt
    "Search-based Job Scheduling for Parallel Computer Workloads@.";
  Format.fprintf fmt
    "Reproduction harness (Vasupongayya, Chiang & Massey, Cluster 2005)@.";
  Format.fprintf fmt "scale=%g seed=%d jobs=%d months=%s@."
    (Experiments.Common.scale ())
    (Experiments.Common.seed ())
    (Experiments.Common.jobs ())
    (String.concat ","
       (List.map
          (fun m -> m.Workload.Month_profile.label)
          (Experiments.Common.months ())));
  let exps = selected () in
  let n = List.length exps in
  let t_start = Simcore.Clock.monotonic_s () in
  List.iteri
    (fun i e ->
      if progress_enabled () then
        Printf.eprintf "[%d/%d] %s ...\n%!" (i + 1) n e.Experiments.Registry.id;
      let t0 = Simcore.Clock.monotonic_s () in
      run_guarded e fmt;
      let now = Simcore.Clock.monotonic_s () in
      Format.fprintf fmt "[%s done in %.1fs]@." e.Experiments.Registry.id
        (now -. t0);
      if progress_enabled () then
        Printf.eprintf "[%d/%d] %s done in %.1fs, ETA %.0fs\n%!" (i + 1) n
          e.Experiments.Registry.id (now -. t0)
          ((now -. t_start) /. float_of_int (i + 1) *. float_of_int (n - i - 1)))
    exps

(* ------------------------------------------------------------------ *)
(* Microbenchmarks of the hot kernels                                  *)

let search_test ~budget =
  Test.make
    ~name:(Printf.sprintf "dds-search/L=%d" budget)
    (Staged.stage (fun () ->
         let state =
           Experiments.Overhead.synthetic_state ~seed:(17 + budget) ()
         in
         ignore (Core.Search.run Core.Search.Dds ~budget state)))

let heuristic_path_test =
  Test.make ~name:"heuristic-path/30jobs"
    (Staged.stage (fun () ->
         (* just the iteration-0 path: one greedy schedule build *)
         let state = Experiments.Overhead.synthetic_state ~seed:17 () in
         ignore (Core.Search.run Core.Search.Dds ~budget:31 state)))

let profile_test =
  let releases =
    List.init 40 (fun i -> (float_of_int (((i * 977) mod 36000) + 60), 3))
  in
  Test.make ~name:"profile/build+place"
    (Staged.stage (fun () ->
         let p = Cluster.Profile.of_running ~now:0.0 ~capacity:128 releases in
         let s = Cluster.Profile.earliest_start p ~nodes:64 ~duration:7200.0 in
         Cluster.Profile.reserve p ~at:s ~nodes:64 ~duration:7200.0))

let microbench fmt =
  Format.fprintf fmt "@.%s@.== microbenchmarks (bechamel)@.%s@."
    (String.make 72 '=') (String.make 72 '=');
  let tests =
    [ profile_test; heuristic_path_test ]
    @ List.map (fun budget -> search_test ~budget) [ 1000; 4000; 8000 ]
  in
  let cfg =
    Benchmark.cfg ~limit:200 ~stabilize:true ~quota:(Time.second 1.0) ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (time_per_run :: _) ->
              Format.fprintf fmt "%-28s %12.3f ms/run@." name
                (time_per_run /. 1e6)
          | _ -> Format.fprintf fmt "%-28s (no estimate)@." name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Perf regression layer: BENCH_search_hotpath.json                    *)

let ols =
  Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]

(* Nanoseconds per run of [test], by OLS over bechamel samples. *)
let ols_ns test =
  let cfg =
    Benchmark.cfg ~limit:300 ~stabilize:true ~quota:(Time.second 0.5) ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let v = ref nan in
  Hashtbl.iter
    (fun _ r ->
      match Analyze.OLS.estimates r with Some (t :: _) -> v := t | _ -> ())
    results;
  !v

(* A ~90-segment profile, the shape the search sees mid-descent. *)
let micro_profile () =
  let p = Cluster.Profile.create ~now:0.0 ~capacity:128 in
  for i = 0 to 43 do
    let at = float_of_int (i * 600) in
    Cluster.Profile.reserve p ~at ~nodes:((i mod 3) + 1) ~duration:300.0
  done;
  p

let micro_place_undo =
  let p = micro_profile () in
  Test.make ~name:"place_earliest+undo"
    (Staged.stage (fun () ->
         let m = Cluster.Profile.mark p in
         ignore (Cluster.Profile.place_earliest p ~nodes:5 ~duration:7200.0);
         Cluster.Profile.undo_to p m))

let micro_reserve_undo =
  let p = micro_profile () in
  Test.make ~name:"reserve+undo"
    (Staged.stage (fun () ->
         let m = Cluster.Profile.mark p in
         Cluster.Profile.reserve p ~at:13000.0 ~nodes:5 ~duration:7200.0;
         Cluster.Profile.undo_to p m))

let micro_copy_into =
  let p = micro_profile () in
  let q = Cluster.Profile.copy p in
  Test.make ~name:"copy_into"
    (Staged.stage (fun () -> Cluster.Profile.copy_into ~src:p ~dst:q))

(* One run-health observation, steady state (the buffer stays at its
   capacity and halving amortizes away). *)
let micro_series_observe =
  let s = Sim.Series.create ~policy:"micro" () in
  let clock = ref 0.0 in
  Test.make ~name:"series_observe"
    (Staged.stage (fun () ->
         clock := !clock +. 30.0;
         Sim.Series.observe s ~now:!clock ~busy:64 ~queue:12 ~demand:200
           ~running:9 ~max_wait:3600.0))

let perf_budgets = [ 1000; 8000; 100000 ]
let perf_queue_depths = [ 10; 30; 60 ]

let grid_key ~prefix ~budget ~n = Printf.sprintf "%s_l%d_n%d" prefix budget n

let smoke_key = grid_key ~prefix:"trail" ~budget:8000 ~n:30

let measure_grid ~backtrack ~prefix ~repeats out =
  List.iter
    (fun budget ->
      List.iter
        (fun n ->
          let v =
            Experiments.Overhead.nodes_per_ms ~n_waiting:n ~backtrack ~repeats
              ~budget ()
          in
          out (grid_key ~prefix ~budget ~n) v)
        perf_queue_depths)
    perf_budgets

(* ------------------------------------------------------------------ *)
(* Sequential vs parallel harness wall-clock                           *)

(* Pin the quick-loop config (CLAUDE.md) unless the caller chose one:
   the wallclock numbers in the JSON are comparable only at a fixed
   workload. *)
let quick_config () =
  Unix.putenv "REPRO_SCALE" "0.1";
  if Sys.getenv_opt "REPRO_MONTHS" = None then
    Unix.putenv "REPRO_MONTHS" "7/03,1/04";
  if Sys.getenv_opt "REPRO_MAXL" = None then Unix.putenv "REPRO_MAXL" "10000"

(* Render [ids] to a buffer with a cold cache at pool width [jobs],
   returning (rendered bytes, per-experiment seconds, total seconds). *)
let timed_render ~jobs ids =
  Experiments.Common.set_jobs jobs;
  Experiments.Common.reset_caches ();
  let buf = Buffer.create (1 lsl 16) in
  let fmt = Format.formatter_of_buffer buf in
  let t_all = Simcore.Clock.monotonic_s () in
  let per =
    List.map
      (fun e ->
        let t0 = Simcore.Clock.monotonic_s () in
        run_guarded e fmt;
        (e.Experiments.Registry.id, Simcore.Clock.monotonic_s () -. t0))
      ids
  in
  let total = Simcore.Clock.monotonic_s () -. t_all in
  Format.pp_print_flush fmt ();
  (Buffer.contents buf, per, total)

let wallclock_entries () =
  quick_config ();
  let ids = selected () in
  let par_jobs = max 2 (Experiments.Common.jobs ()) in
  let _, per_seq, seq_s = timed_render ~jobs:1 ids in
  let _, per_par, par_s = timed_render ~jobs:par_jobs ids in
  Printf.printf
    "harness wallclock at REPRO_SCALE=0.1: seq %.1fs, par %.1fs (-j %d), speedup %.2fx\n%!"
    seq_s par_s par_jobs (seq_s /. Float.max par_s 1e-9);
  [ ("bench_wallclock_seq_s", seq_s);
    ("bench_wallclock_par_s", par_s);
    ("par_jobs", float_of_int par_jobs);
    ("par_speedup", seq_s /. Float.max par_s 1e-9) ]
  @ List.map (fun (id, s) -> (Printf.sprintf "wall_%s_seq_s" id, s)) per_seq
  @ List.map (fun (id, s) -> (Printf.sprintf "wall_%s_par_s" id, s)) per_par

(* Decision-level telemetry aggregates: one traced + series-sampled run
   of the headline policy on the first quick-config month.  Guards the
   probe and sampler plumbing itself — a silent regression in either
   would zero these fields. *)
let telemetry_entries () =
  Experiments.Common.set_tracing true;
  Experiments.Common.set_series true;
  Experiments.Common.reset_caches ();
  let month = List.hd (Experiments.Common.months ()) in
  let run =
    Experiments.Common.simulate ~policy_key:"DDS/lxf/dynB(L=1K)"
      ~policy:(Experiments.Common.dds_lxf_dynb ~budget:1000)
      ~r_star:Sim.Engine.Actual month Experiments.Common.Original
  in
  Experiments.Common.set_tracing false;
  Experiments.Common.set_series false;
  let series_entries =
    match run.Sim.Run.series with
    | None -> []
    | Some s ->
        [ ("series_observed", float_of_int (Sim.Series.observed s));
          ("series_samples", float_of_int (Sim.Series.length s));
          ("series_stride", float_of_int (Sim.Series.stride s));
          ("series_excess_total_s", Sim.Series.cumulative_excess s) ]
  in
  series_entries
  @
  match run.Sim.Run.log with
  | None -> []
  | Some log ->
      let searched =
        List.filter
          (fun d -> d.Sim.Decision_log.budget > 0)
          (Sim.Decision_log.decisions log)
      in
      let field f = Array.of_list (List.map f searched) in
      let nodes = field (fun d -> float_of_int d.Sim.Decision_log.nodes) in
      let improvements =
        field (fun d -> float_of_int d.Sim.Decision_log.improvements)
      in
      let mean a =
        if Array.length a = 0 then 0.0
        else Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)
      in
      let pct a p =
        if Array.length a = 0 then 0.0 else Simcore.Stats.percentile a p
      in
      [ ("telemetry_decisions", float_of_int (List.length searched));
        ("telemetry_nodes_p50", pct nodes 50.0);
        ("telemetry_nodes_p99", pct nodes 99.0);
        ("telemetry_improvements_per_decision", mean improvements) ]

let perf_json path =
  (* warm up code paths and the branch predictor before measuring *)
  ignore (Experiments.Overhead.nodes_per_ms ~repeats:5 ~budget:8000 ());
  let entries = ref [] in
  let out key v = entries := (key, v) :: !entries in
  measure_grid ~backtrack:Core.Search_state.Trail ~prefix:"trail" ~repeats:20
    out;
  (* the snapshot oracle only at the headline point: it exists for
     equivalence testing, not speed *)
  out
    (grid_key ~prefix:"snapshot" ~budget:8000 ~n:30)
    (Experiments.Overhead.nodes_per_ms ~backtrack:Core.Search_state.Snapshot
       ~repeats:20 ~budget:8000 ());
  let micro =
    [ ("micro_place_earliest_undo_ns", ols_ns micro_place_undo);
      ("micro_reserve_undo_ns", ols_ns micro_reserve_undo);
      ("micro_copy_into_ns", ols_ns micro_copy_into);
      ("micro_series_observe_ns", ols_ns micro_series_observe) ]
  in
  let wall = wallclock_entries () in
  let telemetry = telemetry_entries () in
  let fields =
    List.map (fun (k, v) -> (k, Printf.sprintf "%.1f" v)) (List.rev !entries)
    @ List.map (fun (k, v) -> (k, Printf.sprintf "%.1f" v)) micro
    @ List.map (fun (k, v) -> (k, Printf.sprintf "%.3f" v)) wall
    @ List.map (fun (k, v) -> (k, Printf.sprintf "%.2f" v)) telemetry
  in
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"schema\": \"search_hotpath/4\",\n";
  Printf.fprintf oc
    "  \"unit\": \"nodes_per_ms (grid), ns (micro), s (wall), counts \
     (telemetry, series)\",\n";
  Printf.fprintf oc "  \"bench\": \"DDS/lxf on the synthetic 128-node decision point\",\n";
  let rec emit = function
    | [] -> ()
    | [ (k, v) ] -> Printf.fprintf oc "  \"%s\": %s\n" k v
    | (k, v) :: rest ->
        Printf.fprintf oc "  \"%s\": %s,\n" k v;
        emit rest
  in
  emit fields;
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "wrote %s (%s = %.0f nodes/ms)\n" path smoke_key
    (List.assoc smoke_key !entries)

(* Minimal scan for ["key": <number>] in the baseline file — the
   harness has no JSON dependency and the file is ours. *)
let baseline_value path key =
  let ic =
    try open_in path
    with Sys_error msg ->
      Printf.eprintf "perf-smoke: cannot read baseline: %s\n" msg;
      exit 2
  in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let pat = Printf.sprintf "\"%s\":" key in
  let n = String.length s and m = String.length pat in
  let rec find i =
    if i + m > n then None
    else if String.sub s i m = pat then Some (i + m)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
      let is_num c =
        (c >= '0' && c <= '9')
        || c = '.' || c = '-' || c = '+' || c = 'e' || c = 'E'
      in
      let start = ref i in
      while !start < n && s.[!start] = ' ' do incr start done;
      let stop = ref !start in
      while !stop < n && is_num s.[!stop] do incr stop done;
      if !stop = !start then None
      else float_of_string_opt (String.sub s !start (!stop - !start))

(* Render fig3 (the smoke figure) sequentially and through a >= 2-wide
   pool; any byte difference means the parallel execution layer leaked
   into the results. *)
let parallel_determinism_smoke () =
  if Sys.getenv_opt "REPRO_MONTHS" = None then Unix.putenv "REPRO_MONTHS" "7/03";
  let fig3 =
    match Experiments.Registry.find "fig3" with
    | Some e -> e
    | None -> assert false
  in
  let seq, _, _ = timed_render ~jobs:1 [ fig3 ] in
  let par, _, _ =
    timed_render ~jobs:(max 2 (Simcore.Pool.default_jobs ())) [ fig3 ]
  in
  if String.equal seq par then
    Printf.printf "perf-smoke: parallel rendering of fig3 is byte-identical\n"
  else begin
    Printf.eprintf
      "perf-smoke: FAIL — parallel fig3 rendering differs from sequential\n";
    exit 1
  end

let perf_smoke path =
  match baseline_value path smoke_key with
  | None ->
      Printf.eprintf "perf-smoke: no %s in %s\n" smoke_key path;
      exit 2
  | Some baseline ->
      ignore (Experiments.Overhead.nodes_per_ms ~repeats:5 ~budget:8000 ());
      let current =
        Experiments.Overhead.nodes_per_ms ~repeats:10 ~budget:8000 ()
      in
      let floor = 0.7 *. baseline in
      Printf.printf "perf-smoke: %s = %.0f nodes/ms (baseline %.0f, floor %.0f)\n"
        smoke_key current baseline floor;
      if current < floor then begin
        Printf.eprintf
          "perf-smoke: FAIL — search hot path regressed more than 30%%\n";
        exit 1
      end;
      parallel_determinism_smoke ();
      Printf.printf "perf-smoke: OK\n"

(* Consume "-j N" / "--jobs N" / "--trace[=path]" / "--report[=dir]" /
   "--validate" / "--progress" anywhere on the command line; the rest
   is matched positionally below. *)
let trace_path = ref None
let report_dir = ref None
let validate_flag = ref false

let prescan_jobs argv =
  let rec go acc = function
    | [] -> List.rev acc
    | ("-j" | "--jobs") :: v :: rest -> (
        match int_of_string_opt v with
        | Some j when j >= 1 ->
            Experiments.Common.set_jobs j;
            go acc rest
        | _ ->
            Printf.eprintf "invalid -j value %S (want an int >= 1)\n" v;
            exit 2)
    | ("-j" | "--jobs") :: [] ->
        prerr_endline "-j needs a value";
        exit 2
    | "--trace" :: rest ->
        trace_path := Some "bench.trace.jsonl";
        go acc rest
    | a :: rest when String.length a > 8 && String.sub a 0 8 = "--trace=" ->
        trace_path := Some (String.sub a 8 (String.length a - 8));
        go acc rest
    | "--report" :: rest ->
        report_dir := Some "bench-report";
        go acc rest
    | a :: rest when String.length a > 9 && String.sub a 0 9 = "--report=" ->
        report_dir := Some (String.sub a 9 (String.length a - 9));
        go acc rest
    | "--validate" :: rest ->
        validate_flag := true;
        go acc rest
    | "--progress" :: rest ->
        progress_flag := true;
        go acc rest
    | a :: rest -> go (a :: acc) rest
  in
  Array.of_list (go [] (Array.to_list argv))

(* Write the three trace artifacts next to [path]: the decision JSONL
   and its Chrome view (simulated time, byte-identical for any
   REPRO_JOBS) plus the pool worker spans (wall-clock, for eyeballing
   parallel efficiency only). *)
let write_traces path =
  let base =
    match Filename.chop_suffix_opt ~suffix:".jsonl" path with
    | Some b -> b
    | None -> path
  in
  let oc = open_out path in
  let ofmt = Format.formatter_of_out_channel oc in
  Experiments.Common.pp_traces ofmt;
  Format.pp_print_flush ofmt ();
  close_out oc;
  let chrome_path = base ^ ".chrome.json" in
  let oc = open_out chrome_path in
  output_string oc (Experiments.Common.chrome_trace_document ());
  close_out oc;
  let pool_path = base ^ ".pool.json" in
  let oc = open_out pool_path in
  let spans = Simcore.Pool.spans (Experiments.Common.pool ()) in
  let t0 =
    List.fold_left
      (fun acc s -> Float.min acc s.Simcore.Pool.Span.posted_s)
      infinity spans
  in
  output_string oc "{\"traceEvents\":[\n";
  output_string oc
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
     \"args\":{\"name\":\"domain pool (wall clock)\"}}";
  List.iter
    (fun s ->
      Printf.fprintf oc
        ",\n\
         {\"name\":\"task\",\"cat\":\"pool\",\"ph\":\"X\",\"pid\":0,\
         \"tid\":%d,\"ts\":%.0f,\"dur\":%.0f,\"args\":{\"batch\":%d,\
         \"task\":%d,\"wait_ms\":%.3f}}"
        s.Simcore.Pool.Span.domain
        ((s.Simcore.Pool.Span.start_s -. t0) *. 1e6)
        (Simcore.Pool.Span.busy_s s *. 1e6)
        s.Simcore.Pool.Span.batch s.Simcore.Pool.Span.task
        (Simcore.Pool.Span.wait_s s *. 1e3))
    spans;
  output_string oc "\n]}\n";
  close_out oc;
  let traced = List.length (Experiments.Common.traced_runs ()) in
  Printf.printf "wrote %s (%d traced runs), %s, %s (%d pool spans)\n" path
    traced chrome_path pool_path (List.length spans)

(* Run-health report pages: one per month/load/estimator cell, its
   policies overlaid, plus a cross-policy index and the raw series
   JSONL.  Everything here renders from the warm run cache, so the
   files are byte-identical for any REPRO_JOBS. *)
let write_reports dir =
  let runs = Experiments.Common.series_runs () in
  (* Cache keys are month/load/estimator/policy with the month label
     itself containing one '/' (e.g. 7/03): the cell is the first four
     segments, the policy spec the rest. *)
  let split key =
    match String.split_on_char '/' key with
    | m1 :: m2 :: load :: rstar :: (_ :: _ as policy) ->
        (String.concat "/" [ m1; m2; load; rstar ], String.concat "/" policy)
    | _ -> (key, key)
  in
  let sanitize s =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.' -> c
        | _ -> '_')
      s
  in
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (key, s) ->
      let cell, label = split key in
      match Hashtbl.find_opt tbl cell with
      | None ->
          order := cell :: !order;
          Hashtbl.replace tbl cell [ (label, s) ]
      | Some rs -> Hashtbl.replace tbl cell ((label, s) :: rs))
    runs;
  let sections =
    List.rev_map
      (fun cell ->
        {
          Sim.Report.href = sanitize cell ^ ".html";
          title = cell;
          runs = List.rev (Hashtbl.find tbl cell);
        })
      !order
  in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let write path content =
    let oc = open_out path in
    output_string oc content;
    close_out oc
  in
  List.iter
    (fun s ->
      write
        (Filename.concat dir s.Sim.Report.href)
        (Sim.Report.page
           ~title:("Run health: " ^ s.Sim.Report.title)
           ~subtitle:"month / load / estimator cell, one run per policy"
           s.Sim.Report.runs))
    sections;
  write
    (Filename.concat dir "index.html")
    (Sim.Report.index ~title:"Run-health reports" sections);
  let oc = open_out (Filename.concat dir "series.jsonl") in
  let ofmt = Format.formatter_of_out_channel oc in
  Experiments.Common.pp_series ofmt;
  Format.pp_print_flush ofmt ();
  close_out oc;
  Printf.printf
    "wrote %d report pages, index.html and series.jsonl (%d runs) to %s\n"
    (List.length sections) (List.length runs) dir

(* Aggregate the validation reports of every cached run; non-zero exit
   on any violation so @check-smoke can gate on it. *)
let report_validation fmt =
  let reports = Experiments.Common.validation_reports () in
  let bad =
    List.filter
      (fun (_, r) -> not (Schedcheck.Report.ok r))
      reports
  in
  Format.fprintf fmt "@.validation: %d runs checked, %d with violations@."
    (List.length reports) (List.length bad);
  List.iter
    (fun (key, r) -> Format.fprintf fmt "%s -> %a@." key Schedcheck.Report.pp r)
    bad;
  if bad <> [] then begin
    Format.pp_print_flush fmt ();
    exit 1
  end

let () =
  let fmt = Format.std_formatter in
  let argv = prescan_jobs Sys.argv in
  (match !trace_path with
  | None -> ()
  | Some _ ->
      Experiments.Common.set_tracing true;
      Simcore.Pool.set_tracing (Experiments.Common.pool ()) true);
  if !report_dir <> None then Experiments.Common.set_series true;
  if !validate_flag then Experiments.Common.set_validation true;
  (match argv with
  | [| _ |] ->
      let t0 = Simcore.Clock.monotonic_s () in
      run_experiments fmt;
      if Sys.getenv_opt "REPRO_SKIP_MICRO" = None then microbench fmt;
      Format.fprintf fmt "@.total bench time: %.1fs@."
        (Simcore.Clock.monotonic_s () -. t0);
      Option.iter write_traces !trace_path;
      Option.iter write_reports !report_dir;
      (* Summary on stderr so @check-smoke can silence the tables and
         still show it. *)
      if !validate_flag then report_validation Format.err_formatter
  | [| _; "--perf-json" |] -> perf_json "BENCH_search_hotpath.json"
  | [| _; "--perf-json"; path |] -> perf_json path
  | [| _; "--perf-smoke" |] -> perf_smoke "BENCH_search_hotpath.json"
  | [| _; "--perf-smoke"; path |] -> perf_smoke path
  | _ ->
      prerr_endline
        "usage: main.exe [-j N] [--trace[=path]] [--report[=dir]] \
         [--validate] [--progress] [--perf-json [path] | --perf-smoke \
         [path]]";
      exit 2);
  Experiments.Common.shutdown_pool ()
